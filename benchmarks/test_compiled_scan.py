"""Microbenchmark: compiled-scan hot path acceptance.

Runs the scenario x mode sweep of
:mod:`repro.experiments.bench_compiled_scan` at a reduced size and asserts
the PR's acceptance bar: the full hot path (dictionary codes + fused
kernels) is at least 2x faster than the pre-PR baseline on string-equality
scans and on the 3-predicate low-selectivity conjunction — with identical
row counts, which the experiment itself cross-checks cell by cell.
"""

from repro.experiments import bench_compiled_scan


def test_full_hot_path_speedup_floors(scale):
    # REPRO_BENCH_SCALE scales the sweep up, but the size is floored: below
    # ~200k rows the per-scan fixed overhead (executor plumbing, the
    # aggregate root) masks the kernel win and the 2x bar becomes noise.
    num_rows = max(int(400_000 * scale), 200_000)
    result = bench_compiled_scan.run(num_rows=num_rows, repeats=5,
                                     verbose=False)
    speedups = result.data["speedups"]

    for scenario in ("string_eq", "multi3"):
        full = speedups[(scenario, "full")]
        assert full >= 2.0, (
            f"expected >= 2x full-hot-path speedup on {scenario}, "
            f"got {full:.2f}x")

    # The semijoin scenario must actually push a filter and prune rows.
    semijoin = result.data["semijoin"]
    assert semijoin["on"]["semijoin_filters"] > 0
    assert semijoin["on"]["semijoin_pruned_rows"] > 0
    assert semijoin["on"]["rows"] == semijoin["off"]["rows"]

    print("\n" + result.render())
