"""Benchmark: reproduce Table 6 + Figures 16-19 (categories and timelines)."""

from repro.experiments import table6_categories


def test_table6_categories_and_timelines(benchmark, scale, families):
    outcome = benchmark.pedantic(
        lambda: table6_categories.run(scale=scale, families=families, verbose=True).data,
        rounds=1, iterations=1)
    freq = outcome.frequency()
    total = sum(freq.values())
    assert total > 0
    # Paper shape: the two favourable categories (avoided / delayed large
    # joins) plus "no difference" dominate; "Worse" stays a minority.
    assert freq["Worse"] <= total * 0.5
    # Timelines (Figures 16-19) exist for every query and every algorithm.
    for timelines in outcome.timelines.values():
        assert set(timelines) >= {"QuerySplit", "Pop", "IEF", "Perron19"}
