"""Benchmark: reproduce Figure 15 (collect statistics or not)."""

from repro.experiments import figure15_statistics
from benchmarks.conftest import full_mode


def test_figure15_statistics(benchmark, scale, families):
    algorithms = (("QuerySplit", "Reopt", "Pop", "IEF", "Perron19") if full_mode()
                  else ("QuerySplit", "Pop", "Perron19"))
    results = benchmark.pedantic(
        lambda: figure15_statistics.run(scale=scale, families=families,
                                        algorithms=algorithms, verbose=True).data,
        rounds=1, iterations=1)
    # Paper shape: for QuerySplit, skipping statistics collection does not
    # hurt (its subqueries are mostly PK-FK joins).
    with_stats = results[("QuerySplit", True)].total_time
    without = results[("QuerySplit", False)].total_time
    assert without <= with_stats * 1.3
