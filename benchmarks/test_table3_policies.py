"""Benchmark: reproduce Table 3 (QSA x SSA policy grid on JOB)."""

from repro.core.qsa import QSAStrategy
from repro.core.ssa import CostFunction
from repro.experiments import table3_policies
from benchmarks.conftest import full_mode


def test_table3_policy_grid(benchmark, scale, families):
    if full_mode():
        qsa = table3_policies.QSA_ORDER
        ssa = table3_policies.SSA_ORDER
    else:
        qsa = (QSAStrategy.FK_CENTER, QSAStrategy.PK_CENTER, QSAStrategy.MIN_SUBQUERY)
        ssa = (CostFunction.PHI1, CostFunction.PHI4, CostFunction.PHI5)

    results = benchmark.pedantic(
        lambda: table3_policies.run(scale=scale, families=families,
                                    qsa_strategies=qsa, cost_functions=ssa,
                                    verbose=True).data,
        rounds=1, iterations=1)
    # Paper shape: FK-Center is never the worst strategy for Phi4.
    phi4 = {qsa_name: res.total_time for (ssa_name, qsa_name), res in results.items()
            if ssa_name == "phi4"}
    assert phi4["fk_center"] <= max(phi4.values())
