"""Benchmark: reproduce Figure 13 (DSB SPJ queries)."""

from repro.experiments import figure13_dsb_spj
from benchmarks.conftest import full_mode


def test_figure13_dsb_spj(benchmark, scale):
    algorithms = (figure13_dsb_spj.DEFAULT_ALGORITHMS if full_mode()
                  else ("QuerySplit", "Default", "Reopt", "Pop", "Perron19"))
    results = benchmark.pedantic(
        lambda: figure13_dsb_spj.run(scale=scale, algorithms=algorithms,
                                     verbose=True).data,
        rounds=1, iterations=1)
    for per_algorithm in results.values():
        assert per_algorithm["QuerySplit"].timeouts == 0
