"""Benchmark: reproduce Figure 14 (DSB non-SPJ queries)."""

from repro.experiments import figure14_dsb_nonspj
from benchmarks.conftest import full_mode


def test_figure14_dsb_nonspj(benchmark, scale):
    algorithms = (figure14_dsb_nonspj.DEFAULT_ALGORITHMS if full_mode()
                  else ("QuerySplit", "Default", "Pop", "Perron19"))
    results = benchmark.pedantic(
        lambda: figure14_dsb_nonspj.run(scale=scale, algorithms=algorithms,
                                        verbose=True).data,
        rounds=1, iterations=1)
    for per_algorithm in results.values():
        assert per_algorithm["QuerySplit"].timeouts == 0
