"""Benchmark: re-optimization and re-ANALYZE policies under drift."""

from repro.experiments import bench_stale_stats
from benchmarks.conftest import full_mode


def test_stale_stats(benchmark, scale):
    # The q-error orderings asserted below are seed-determined but
    # configuration-sensitive: with too few queries or too-small tables
    # the mean is dominated by a handful of correlated-predicate
    # estimates and the never/triggered ordering can flip.  The sweep is
    # therefore pinned to the verified configuration (the same slice
    # tools/microbench_trend.py records) rather than derived from
    # REPRO_BENCH_SCALE; full mode widens the drift-rate axis only.
    drift_rates = (0.1, 0.5) if full_mode() else (0.5,)
    data = benchmark.pedantic(
        lambda: bench_stale_stats.run(
            scale=0.6, drift_rates=drift_rates,
            steps=4, queries_per_step=6, verbose=True).data,
        rounds=1, iterations=1)
    cells, headline = data["cells"], data["headline"]
    top = max(drift_rates)

    # Deterministic orderings (q-error is seed-determined, not timed):
    # never-refreshed statistics must estimate worse than both refresh
    # policies at the top drift rate, and re-ANALYZE work must actually
    # have happened under them.
    static = "Default"
    never = cells[(top, "never", static)]
    periodic = cells[(top, "periodic", static)]
    triggered = cells[(top, "triggered", static)]
    assert never["reanalyzes"] == 0
    assert periodic["reanalyzes"] > 0 and triggered["reanalyzes"] > 0
    assert triggered["mean_q_error"] < never["mean_q_error"]
    assert periodic["mean_q_error"] < never["mean_q_error"]
    assert headline["triggered_qerror_improvement"] > 1.0

    # The timing headline exists and is well-formed; strict > 1.0 is only
    # asserted by the committed trend entry (tools/microbench_trend.py),
    # where the hardware context is recorded alongside the ratio -- in a
    # shared CI runner the timing ratio is not deterministic.
    assert headline["reopt_advantage_under_drift"] > 0.0
    assert headline["best_reopt"] in ("QuerySplit", "Reopt")
