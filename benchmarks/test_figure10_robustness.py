"""Benchmark: reproduce Figure 10 (robustness to CE noise)."""

from repro.core.qsa import QSAStrategy
from repro.core.ssa import CostFunction
from repro.experiments import figure10_robustness
from benchmarks.conftest import full_mode


def test_figure10_noise_sweep(benchmark, scale, families):
    sigmas = (0.5, 1.0, 2.0, 4.0) if full_mode() else (0.5, 2.0, 4.0)
    policies = (figure10_robustness.DEFAULT_POLICIES if full_mode() else (
        (QSAStrategy.FK_CENTER, CostFunction.PHI4),
        (QSAStrategy.PK_CENTER, CostFunction.PHI4),
    ))
    results = benchmark.pedantic(
        lambda: figure10_robustness.run(scale=scale, families=families,
                                        sigmas=sigmas, policies=policies,
                                        verbose=True).data,
        rounds=1, iterations=1)
    assert len(results) == len(sigmas) * len(policies)
