"""Benchmark: reproduce Figure 12 (TPC-H end-to-end)."""

from repro.experiments import figure12_tpch
from benchmarks.conftest import full_mode


def test_figure12_tpch(benchmark, scale):
    query_numbers = None if full_mode() else [1, 3, 4, 5, 6, 10, 12, 14, 18, 19]
    results = benchmark.pedantic(
        lambda: figure12_tpch.run(scale=scale, families=query_numbers,
                                  verbose=True).data,
        rounds=1, iterations=1)
    for per_algorithm in results.values():
        times = {name: result.total_time for name, result in per_algorithm.items()}
        # Paper shape: on the star schema all approaches land close together;
        # QuerySplit must not be slower than the slowest re-opt baseline.
        assert times["QuerySplit"] <= max(times[n] for n in ("Reopt", "Pop",
                                                             "IEF", "Perron19"))
