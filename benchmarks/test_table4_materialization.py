"""Benchmark: reproduce Table 4 (materialization frequency and memory)."""

from repro.experiments import table4_materialization


def test_table4_materialization(benchmark, scale, families):
    metrics = benchmark.pedantic(
        lambda: table4_materialization.run(scale=scale, families=families,
                                           verbose=True).data,
        rounds=1, iterations=1)
    # Paper shape: QuerySplit has the smallest per-subquery memory footprint
    # among the algorithms that do materialize, and Reopt materializes least.
    mats = {name: m["avg_materializations_per_query"] for name, m in metrics.items()}
    assert mats["Reopt"] <= mats["QuerySplit"] + 1e-9 or mats["Reopt"] <= min(mats.values()) + 0.5
    per_subquery = {name: m["avg_mem_per_subquery_mb"] for name, m in metrics.items()
                    if m["avg_materializations_per_query"] > 0}
    assert metrics["QuerySplit"]["avg_mem_per_subquery_mb"] <= max(per_subquery.values())
