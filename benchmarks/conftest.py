"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at a reduced
scale so the whole suite finishes in minutes.  Two environment variables
control fidelity:

* ``REPRO_BENCH_SCALE``    -- data scale factor (default 0.5);
* ``REPRO_BENCH_FULL=1``   -- run the full query sets and algorithm lists
  (otherwise a representative subset is used).

The printed output of each benchmark is the reproduced table, so running
``pytest benchmarks/ --benchmark-only -s`` shows the paper artifacts inline.
"""

import os

import pytest


def bench_scale() -> float:
    """Data scale factor used by the benchmarks."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def full_mode() -> bool:
    """True when the full (paper-sized) configuration was requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_families() -> list[int] | None:
    """JOB families to run (None = all 31 families / 91 queries)."""
    if full_mode():
        return None
    return [1, 2, 5, 6, 9, 11, 14, 15, 17, 20, 23, 28]


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def families() -> list[int] | None:
    return bench_families()
