"""Benchmark acceptance-test package (see tests/__init__.py for why
these directories are real packages)."""
