"""Microbenchmark: late vs. eager materialization, and cross-policy reuse.

Two acceptance checks for the late-materialization engine:

* on a JOB-style query with at least five joins, the chunked (late) executor
  must materialize strictly fewer bytes than the old eager copy-per-join
  path (kept available as ``Executor(..., materialization="eager")``);
* a Table 3 policy-grid run sharing one :class:`SubplanCache` must actually
  reuse executed subtrees across policies (hit rate > 0) without changing
  any query result.
"""

from benchmarks.conftest import full_mode
from repro.core.qsa import QSAStrategy
from repro.core.ssa import CostFunction
from repro.executor.executor import Executor
from repro.executor.subplan_cache import SubplanCache
from repro.experiments import table3_policies
from repro.optimizer.optimizer import Optimizer
from repro.storage.database import IndexConfig
from repro.workloads.imdb import build_imdb_database
from repro.workloads.job_queries import job_queries


def _job_spj_with_joins(min_joins: int):
    for query in job_queries():
        if query.is_spj and len(query.spj.join_predicates) >= min_joins:
            return query.spj
    raise AssertionError(f"no JOB query with >= {min_joins} joins found")


def test_late_materializes_fewer_bytes(scale):
    scale = scale if full_mode() else min(scale, 0.5)
    database = build_imdb_database(scale=scale, index_config=IndexConfig.PK_FK)
    spj = _job_spj_with_joins(5)

    late = Executor(database)
    eager = Executor(database, materialization="eager")
    late_result = late.execute(Optimizer(database).plan(spj))
    eager_result = eager.execute(Optimizer(database).plan(spj))

    assert late_result.table.to_rows() == eager_result.table.to_rows()
    assert late_result.join_rows == eager_result.join_rows
    assert late_result.materialized_bytes < eager_result.materialized_bytes
    ratio = eager_result.materialized_bytes / max(late_result.materialized_bytes, 1)
    print(f"\n  {spj.name} ({len(spj.join_predicates)} joins): "
          f"late={late_result.materialized_bytes:,} B, "
          f"eager={eager_result.materialized_bytes:,} B "
          f"({ratio:.1f}x reduction)")


def test_subplan_cache_hit_rate_on_table3_run(scale):
    cache = SubplanCache()
    results = table3_policies.run(
        scale=0.25 if not full_mode() else scale,
        families=[1, 2],
        qsa_strategies=(QSAStrategy.FK_CENTER, QSAStrategy.PK_CENTER),
        cost_functions=(CostFunction.PHI4,),
        subplan_cache=cache,
        verbose=False,
    ).data
    assert cache.hits > 0
    assert cache.hit_rate > 0.0
    # Sharing subtrees across policies must not change any result.
    per_combo = [[report.final_rows for report in result.reports]
                 for result in results.values()]
    assert all(rows == per_combo[0] for rows in per_combo[1:])
    print(f"\n  shared cache across {len(results)} policy runs: "
          f"{cache.hits} hits / {cache.misses} misses "
          f"(hit rate {cache.hit_rate:.1%}, {len(cache)} entries)")
