"""Microbenchmark: morsel-parallel execution acceptance.

Runs the scenario x worker-count sweep of
:mod:`repro.experiments.bench_morsels` at a reduced size and asserts the
PR's acceptance bars:

* correctness everywhere -- every cell returns the same cardinality as
  ``workers=1`` (the experiment cross-checks this itself), the morsel
  counters are consistent, and a ``workers=1`` executor is bit-identical
  to the plain sequential executor on the raw (non-aggregated) scan;
* scaling where the hardware allows it -- the low-selectivity scan must
  be at least 2x faster at 4 workers than at 1.  Thread parallelism
  cannot beat the core count, so the floor is enforced only on machines
  with >= 4 CPUs (CI runners qualify; the correctness half of this
  module runs everywhere).
"""

import os

import numpy as np
import pytest

from repro.executor.executor import Executor, MorselScheduler
from repro.experiments import bench_morsels
from repro.experiments.bench_compiled_scan import build_events_database
from repro.plan.logical import RelationRef
from repro.plan.physical import PhysicalPlan, ScanNode

CPUS = os.cpu_count() or 1


def _sweep(scale: float):
    # The floor needs the fixed per-morsel dispatch overhead to be noise
    # against the kernel time, so the sweep is floored at 400k rows.
    num_rows = max(int(800_000 * scale), 400_000)
    return bench_morsels.run(num_rows=num_rows, repeats=3,
                             workers_sweep=(1, 2, 4), verbose=False)


def test_morsel_correctness_and_counters(scale):
    result = _sweep(scale)
    grid = result.data["grid"]
    for scenario, cells in grid.items():
        baseline_rows = cells[1]["rows"]
        for width, cell in cells.items():
            assert cell["rows"] == baseline_rows, (scenario, width)
            assert cell["morsel_workers"] == width
            if width == 1:
                # Sequential cells never dispatch and never count rows
                # through the parallel path.
                assert cell["morsels_total"] == 0
                assert cell["parallel_scan_rows"] == 0
            else:
                assert cell["morsels_total"] > 0
    # The parallel scan counter covers every candidate row of the scan
    # scenario (no zone pruning fires on the unclustered predicates).
    scan4 = grid["scan_low_sel"][4]
    assert scan4["parallel_scan_rows"] >= result.summary["num_rows"]
    print("\n" + result.render())


def test_workers_1_bit_identical_to_sequential_executor(scale):
    num_rows = max(int(200_000 * scale), 100_000)
    database = build_events_database(num_rows, dict_encode=True,
                                     block_size=4096)
    plan = PhysicalPlan(
        query_name="morsels-bitident",
        root=ScanNode(relation=RelationRef.base("events", "events"),
                      filters=bench_morsels._scan_plan().root.filters),
        output_columns=(bench_morsels._ref("e_id"),
                        bench_morsels._ref("e_a")),
    )
    sequential = Executor(database).execute(plan).table
    with MorselScheduler(1) as scheduler:
        one_worker = Executor(database,
                              morsel_scheduler=scheduler).execute(plan).table
    assert sequential.num_rows == one_worker.num_rows
    for name in sequential.columns:
        np.testing.assert_array_equal(sequential.columns[name],
                                      one_worker.columns[name])


@pytest.mark.skipif(
    CPUS < 4,
    reason=f"thread scaling floor needs >= 4 CPUs (have {CPUS}); "
           f"the correctness sweep above still ran")
def test_scan_speedup_floor_at_4_workers(scale):
    result = _sweep(scale)
    speedup = result.data["speedups"]["scan_low_sel"][4]
    assert speedup >= 2.0, (
        f"expected >= 2x morsel speedup on scan_low_sel at 4 workers "
        f"({CPUS} cpus), got {speedup:.2f}x")
