"""Benchmark: reproduce Figure 11 (JOB end-to-end, all algorithms, both index setups)."""

from repro.experiments import figure11_job
from benchmarks.conftest import full_mode


def test_figure11_job_comparison(benchmark, scale, families):
    algorithms = (figure11_job.DEFAULT_ALGORITHMS if full_mode()
                  else ("QuerySplit", "Default", "Reopt", "Pop", "IEF",
                        "Perron19", "USE", "Pessi.", "FS"))
    results = benchmark.pedantic(
        lambda: figure11_job.run(scale=scale, families=families,
                                 algorithms=algorithms, verbose=True).data,
        rounds=1, iterations=1)
    for per_algorithm in results.values():
        times = {name: result.total_time for name, result in per_algorithm.items()}
        reopt_baselines = [times[n] for n in ("Reopt", "Pop", "IEF", "Perron19")
                           if n in times]
        # Paper headline: QuerySplit beats every re-optimization baseline.
        assert times["QuerySplit"] <= min(reopt_baselines)
        # ... and the default optimizer is the one re-optimization improves on.
        assert times["QuerySplit"] < times["Default"]
