"""Microbenchmark: zone-map scan pruning acceptance.

Runs the block-size x selectivity sweep of
:mod:`repro.experiments.bench_scan_pruning` at a reduced size and asserts
the PR's acceptance bar: on a clustered column, pruned scans at <= 1%
selectivity are at least 2x faster than the same scan with pruning disabled
(``block_size = 0``), with a pruning ratio to match — and identical row
counts, which the experiment itself cross-checks cell by cell.
"""

from repro.experiments import bench_scan_pruning


def test_pruned_scan_speedup_at_low_selectivity(scale):
    # REPRO_BENCH_SCALE scales the sweep up, but the size is floored: below
    # ~200k rows the per-scan fixed overhead (executor plumbing, the
    # aggregate root) masks the pruning win and the 2x bar becomes noise.
    num_rows = max(int(400_000 * scale), 200_000)
    result = bench_scan_pruning.run(
        num_rows=num_rows, repeats=5, verbose=False)
    grid = result.data["grid"]
    speedups = result.data["speedups"]

    selective = {key: value for key, value in speedups.items()
                 if key[1] <= 0.01}
    assert selective, "sweep must include a <= 1% selectivity cell"
    best = max(selective.values())
    assert best >= 2.0, (
        f"expected >= 2x pruned-scan speedup at <= 1% selectivity, "
        f"best was {best:.2f}x")

    # The speedup must come from actual block pruning, not noise.
    for (block_size, selectivity), value in selective.items():
        if value == best:
            assert grid[(block_size, selectivity)]["pruning_ratio"] > 0.5

    print("\n" + result.render())
