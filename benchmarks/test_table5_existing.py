"""Benchmark: reproduce Table 5 (existing re-optimizers with Phi cost functions)."""

from repro.core.ssa import CostFunction
from repro.experiments import table5_existing_costfn
from benchmarks.conftest import full_mode


def test_table5_existing_with_phi(benchmark, scale, families):
    algorithms = tuple(table5_existing_costfn._BASELINES) if full_mode() else ("Pop", "Perron19")
    cost_functions = (table5_existing_costfn.COST_FUNCTIONS if full_mode()
                      else (CostFunction.PHI1, CostFunction.PHI4))
    results = benchmark.pedantic(
        lambda: table5_existing_costfn.run(scale=scale, families=families,
                                           algorithms=algorithms,
                                           cost_functions=cost_functions,
                                           verbose=True).data,
        rounds=1, iterations=1)
    # Every variant completes and the original policy is present for reference.
    for algorithm in algorithms:
        assert (algorithm, "original") in results
