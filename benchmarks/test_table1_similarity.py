"""Benchmark: reproduce Table 1 (initial vs. optimal plan similarity)."""

from repro.experiments import table1_similarity


def test_table1_similarity(benchmark, scale, families):
    ratios = benchmark.pedantic(
        lambda: table1_similarity.run(scale=scale, families=families, verbose=True).data,
        rounds=1, iterations=1)
    assert abs(sum(ratios.values()) - 1.0) < 1e-9
    # Paper shape: a majority of queries lose optimality within the first two
    # joins (similarity <= 2).
    assert ratios["0"] + ratios["1"] + ratios["2"] >= 0.3
