"""Use the library on your own schema and data.

Builds a small order-management schema from scratch, loads generated data,
declares the PK/FK relationships QuerySplit's FK-Center strategy relies on,
and runs an ad-hoc analytical query under QuerySplit and the default
optimizer.

Usage::

    python examples/custom_workload.py
"""

import numpy as np

from repro.catalog import Column, DataType, ForeignKey, Schema, TableSchema
from repro.plan.logical import Query
from repro.reopt import make_algorithm
from repro.storage import Database, DataTable, IndexConfig
from repro.workloads.spec import build_spj, eq, gt


def build_schema() -> Schema:
    _int = lambda name: Column(name, DataType.INT)  # noqa: E731
    _str = lambda name: Column(name, DataType.STRING)  # noqa: E731
    return Schema([
        TableSchema("customers", [_int("id"), _str("segment"), _str("country")],
                    primary_key="id"),
        TableSchema("products", [_int("id"), _str("category"), _int("price")],
                    primary_key="id"),
        TableSchema("orders", [_int("id"), _int("customer_id"), _int("year")],
                    primary_key="id",
                    foreign_keys=[ForeignKey("customer_id", "customers", "id")]),
        TableSchema("order_items",
                    [_int("id"), _int("order_id"), _int("product_id"), _int("quantity")],
                    primary_key="id",
                    foreign_keys=[ForeignKey("order_id", "orders", "id"),
                                  ForeignKey("product_id", "products", "id")]),
    ])


def load_data(schema: Schema, seed: int = 3) -> Database:
    rng = np.random.default_rng(seed)
    n_cust, n_prod, n_orders, n_items = 2_000, 500, 10_000, 40_000
    db = Database(schema, index_config=IndexConfig.PK_FK)
    db.load_table(DataTable("customers", {
        "id": np.arange(1, n_cust + 1),
        "segment": rng.choice(np.array(["consumer", "corporate", "home office"],
                                       dtype=object), n_cust, p=[0.6, 0.3, 0.1]),
        "country": rng.choice(np.array(["US", "DE", "JP", "BR"], dtype=object),
                              n_cust, p=[0.5, 0.2, 0.2, 0.1]),
    }))
    db.load_table(DataTable("products", {
        "id": np.arange(1, n_prod + 1),
        "category": rng.choice(np.array(["furniture", "technology", "supplies"],
                                        dtype=object), n_prod),
        "price": rng.integers(5, 2000, n_prod),
    }))
    db.load_table(DataTable("orders", {
        "id": np.arange(1, n_orders + 1),
        "customer_id": rng.integers(1, n_cust + 1, n_orders),
        "year": rng.integers(2015, 2024, n_orders),
    }))
    db.load_table(DataTable("order_items", {
        "id": np.arange(1, n_items + 1),
        "order_id": rng.integers(1, n_orders + 1, n_items),
        "product_id": 1 + (rng.zipf(1.4, n_items) - 1) % n_prod,
        "quantity": rng.integers(1, 10, n_items),
    }))
    return db


def main() -> None:
    schema = build_schema()
    database = load_data(schema)

    # "How many technology items did corporate customers order since 2020?"
    spj = build_spj(
        name="corporate-tech",
        relations={"c": "customers", "o": "orders", "oi": "order_items",
                   "p": "products"},
        joins=[("o.customer_id", "c.id"), ("oi.order_id", "o.id"),
               ("oi.product_id", "p.id")],
        filters=[eq("c.segment", "corporate"), eq("p.category", "technology"),
                 gt("o.year", 2019)],
        min_outputs=["p.price"],
    )
    query = Query.from_spj(spj)

    for algorithm in ("QuerySplit", "Default"):
        report = make_algorithm(algorithm, database).run(query)
        print(f"{algorithm:<11s}: {report.total_time * 1000:6.1f} ms, "
              f"{report.num_iterations} iteration(s), answer={report.final_table.to_rows()}")


if __name__ == "__main__":
    main()
