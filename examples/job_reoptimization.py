"""Compare QuerySplit against every re-optimization baseline on a JOB slice.

Reproduces a miniature of Figure 11: the same queries are executed by
QuerySplit, the four re-optimization baselines, and the default optimizer,
and the per-algorithm totals plus per-query timelines are printed.

Usage::

    python examples/job_reoptimization.py [scale] [family ...]
"""

import sys

from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.workloads import build_imdb_database, job_queries

ALGORITHMS = ("QuerySplit", "Default", "Reopt", "Pop", "IEF", "Perron19")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    families = [int(f) for f in sys.argv[2:]] or [2, 6, 9, 11, 17]

    database = build_imdb_database(scale=scale)
    queries = job_queries(families=families)
    print(f"Running {len(queries)} JOB-style queries at scale {scale} "
          f"with {len(ALGORITHMS)} algorithms...\n")

    config = HarnessConfig(timeout_seconds=60.0)
    results = {name: run_workload(database, queries, name, config)
               for name in ALGORITHMS}

    rows = []
    for name, result in results.items():
        total_mats = sum(r.materializations for r in result.reports)
        rows.append([name, format_seconds(result.total_time), total_mats,
                     result.timeouts or ""])
    print(format_table(["Algorithm", "Total time", "Materializations", "Timeouts"],
                       rows, title="JOB slice, end-to-end"))

    # Show the re-optimization timeline of the slowest query for QuerySplit
    # and for the best baseline (the data behind Figures 16-19).
    slowest = max(results["Default"].reports, key=lambda r: r.total_time)
    print(f"\nRe-optimization timeline for query {slowest.query_name}:")
    for name in ("QuerySplit", "Perron19"):
        report = results[name].report_for(slowest.query_name)
        steps = ", ".join(f"{rows_}r/{time_ * 1000:.1f}ms"
                          for _, rows_, time_ in report.timeline())
        print(f"  {name:<11s}: {steps}")


if __name__ == "__main__":
    main()
