"""Quickstart: run one JOB-style query with QuerySplit and inspect the result.

Usage::

    python examples/quickstart.py
"""

from repro.reopt import make_algorithm
from repro.workloads import build_imdb_database, job_queries


def main() -> None:
    # 1. Generate the synthetic IMDB database (deterministic, ~50k rows at
    #    scale 0.25) with primary- and foreign-key indexes.
    database = build_imdb_database(scale=0.25)
    print(f"Loaded {database!r}")

    # 2. Pick the paper's running example: family 6 joins title, movie_keyword,
    #    keyword, cast_info and name (Figure 8 of the paper).
    query = job_queries(families=[6])[0]
    print(f"Running query {query.name} over relations "
          f"{[r.alias for r in query.spj.relations]}")

    # 3. Execute it with QuerySplit and with the default (non-adaptive) plan.
    for algorithm in ("QuerySplit", "Default"):
        report = make_algorithm(algorithm, database).run(query)
        print(f"\n=== {algorithm} ===")
        print(f"  execution time : {report.total_time * 1000:.1f} ms")
        print(f"  iterations     : {report.num_iterations}")
        print(f"  materialized   : {report.materializations} intermediate result(s)")
        print(f"  answer         : {report.final_table.to_rows()}")
        for iteration in report.iterations:
            print(f"    step {iteration.index}: {iteration.description:<12s} "
                  f"rows={iteration.result_rows:<8d} "
                  f"time={iteration.wall_time * 1000:.2f} ms "
                  f"{'(materialized)' if iteration.materialized else ''}")


if __name__ == "__main__":
    main()
