"""Generated-stream harness: stress policies on queries no suite contains.

Builds the TPC-H seed database, derives a seeded random query stream from
its schema and statistics, and compares re-optimization policies on the
identical stream -- including the cross-policy subplan-cache hit rate.

Usage::

    python examples/generated_stream.py
"""

from repro.bench import HarnessConfig, run_generated
from repro.executor.subplan_cache import SubplanCache
from repro.workloads import (
    AggregateSamplerConfig,
    JoinSamplerConfig,
    PredicateSamplerConfig,
    RandomQueryGenerator,
    build_tpch_database,
)


def main() -> None:
    # 1. Any loaded Database works; the generator only needs its schema's
    #    FK graph and the ANALYZE statistics collected at load time.
    database = build_tpch_database(scale=0.15)
    print(f"Loaded {database!r}")

    # 2. A seeded generator: same seed => identical stream, every time.
    #    fk_only=False also samples expanding fk-fk joins, so some generated
    #    queries are deliberately adversarial -- a short timeout keeps the
    #    example snappy while still counting which policies survive them.
    generator = RandomQueryGenerator(
        database,
        seed=1,
        join_config=JoinSamplerConfig(max_joins=4, min_joins=1, fk_only=False),
        predicate_config=PredicateSamplerConfig(max_predicates=3,
                                                selectivity=(0.05, 0.4)),
        aggregate_config=AggregateSamplerConfig(group_by_probability=0.25),
    )
    for query in generator.generate(5):
        spj = query.root.spj_leaves()[0]
        print(f"  {query.name}: {len(spj.relations)} relations, "
              f"{spj.num_joins} joins, {len(spj.filters)} filters, "
              f"{'GROUP BY' if not query.is_spj else 'SPJ'}")

    # 3. Run the identical 25-query stream under three policies, sharing one
    #    subplan cache so common subtrees are executed only once.
    cache = SubplanCache()
    config = HarnessConfig(timeout_seconds=2.0, subplan_cache=cache)
    for algorithm in ("QuerySplit", "Default", "Pop"):
        result = run_generated(generator, 25, algorithm, config)
        print(f"\n=== {algorithm} ===")
        print(f"  total time : {result.total_time * 1000:.1f} ms")
        print(f"  timeouts   : {result.timeouts}")
    print(f"\nShared subplan cache: {cache.hits} hits / {cache.misses} misses "
          f"(hit rate {cache.hit_rate:.1%})")


if __name__ == "__main__":
    main()
