"""Study QuerySplit's robustness to cardinality-estimation errors.

Reproduces a miniature of Figure 10: controlled multiplicative noise
(``err_card = 2**N(mu, sigma) * card``) is injected into the optimizer that
drives QuerySplit, and the JOB execution time is reported for the FK-Center
and PK-Center strategies as the noise grows.

Usage::

    python examples/robustness_study.py [scale]
"""

import sys

from repro.core.qsa import QSAStrategy
from repro.core.ssa import CostFunction
from repro.experiments import figure10_robustness


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    figure10_robustness.run(
        scale=scale,
        families=[2, 6, 9, 15, 17],
        sigmas=(0.5, 1.0, 2.0, 4.0),
        policies=(
            (QSAStrategy.FK_CENTER, CostFunction.PHI4),
            (QSAStrategy.PK_CENTER, CostFunction.PHI4),
            (QSAStrategy.MIN_SUBQUERY, CostFunction.PHI4),
        ),
        verbose=True,
    )
    print("\nExpected shape (paper, Figure 10): FK-Center and MinSubquery stay "
          "robust up to sigma = 2; PK-Center degrades earlier; at sigma = 4 "
          "every policy suffers.")


if __name__ == "__main__":
    main()
