"""Legacy setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists only so
that ``pip install -e .`` works in offline environments that lack the
``wheel`` package (pip then falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
