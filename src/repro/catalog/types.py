"""Column data types supported by the engine.

The engine is columnar and numpy-backed, so each logical data type maps to a
numpy storage dtype.  Only the types actually needed by the JOB / TPC-H / DSB
workloads are supported: 64-bit integers, double-precision floats, and
variable-length strings (stored as numpy object arrays).
"""

from __future__ import annotations

import enum

import numpy as np


class DataType(enum.Enum):
    """Logical column data type."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype:
        """Return the numpy dtype used to store columns of this type."""
        if self is DataType.INT:
            return np.dtype(np.int64)
        if self is DataType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(object)

    @property
    def is_numeric(self) -> bool:
        """True for INT and FLOAT columns (histogram-friendly types)."""
        return self in (DataType.INT, DataType.FLOAT)

    @classmethod
    def from_numpy(cls, dtype: np.dtype) -> "DataType":
        """Infer the logical type of an existing numpy array dtype."""
        if np.issubdtype(dtype, np.integer):
            return cls.INT
        if np.issubdtype(dtype, np.floating):
            return cls.FLOAT
        return cls.STRING


def coerce_array(values, dtype: DataType) -> np.ndarray:
    """Coerce a Python sequence or numpy array to the storage dtype.

    Parameters
    ----------
    values:
        Any sequence of values (list, tuple, numpy array).
    dtype:
        Target logical type.

    Returns
    -------
    numpy.ndarray with the storage dtype for ``dtype``.
    """
    arr = np.asarray(values)
    if dtype is DataType.STRING:
        if arr.dtype == object:
            return arr
        return arr.astype(object)
    return arr.astype(dtype.numpy_dtype)


def type_of_value(value) -> DataType:
    """Infer the logical type of a single Python literal."""
    if isinstance(value, bool):
        raise TypeError("boolean literals are not supported")
    if isinstance(value, (int, np.integer)):
        return DataType.INT
    if isinstance(value, (float, np.floating)):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STRING
    raise TypeError(f"unsupported literal type: {type(value)!r}")
