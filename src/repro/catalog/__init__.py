"""Catalog subsystem: schema definitions, data types, and table statistics.

The catalog plays the role of PostgreSQL's system catalog in the paper's
setup: it records every table, its columns and data types, primary-key /
foreign-key relationships (which drive the FK-Center subquery generation
strategy of QuerySplit), and the per-column statistics that the cardinality
estimator consumes (row counts, number of distinct values, most common
values, and equi-depth histograms).
"""

from repro.catalog.types import DataType
from repro.catalog.schema import Column, ForeignKey, TableSchema, Schema
from repro.catalog.statistics import ColumnStats, TableStats, Histogram
from repro.catalog.analyze import analyze_table, analyze_columns

__all__ = [
    "DataType",
    "Column",
    "ForeignKey",
    "TableSchema",
    "Schema",
    "ColumnStats",
    "TableStats",
    "Histogram",
    "analyze_table",
    "analyze_columns",
]
