"""Table and column statistics used by the cardinality estimator.

These mirror the statistics PostgreSQL's ANALYZE collects and the paper's
Statistics Collector consumes (Section 5 and Section 6.4): row counts, the
number of distinct values (NDV), the most common values (MCVs) with their
frequencies, equi-depth histograms for numeric columns, and null fractions.

Two flavours exist because of the paper's "Collecting Statistics Or Not?"
study (Figure 15):

* **full statistics** -- produced by :func:`repro.catalog.analyze.analyze_table`;
* **row-count only** -- produced by :meth:`TableStats.row_count_only`, where
  every column falls back to default NDV / selectivity guesses, exactly like
  a freshly created temporary table that has never been analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.types import DataType

#: Default number-of-distinct-values guess used by the estimator when a column
#: has never been analyzed (PostgreSQL uses a similar magic constant of 200).
DEFAULT_NDV = 200

#: Default selectivity for equality predicates on unanalyzed columns.
DEFAULT_EQ_SELECTIVITY = 0.005

#: Default selectivity for range predicates on unanalyzed columns.
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass
class Histogram:
    """An equi-depth histogram over a numeric column.

    ``bounds`` holds ``num_buckets + 1`` bucket boundaries; each bucket is
    assumed to contain the same number of rows (equal depth).
    """

    bounds: np.ndarray

    @property
    def num_buckets(self) -> int:
        """Number of buckets in the histogram."""
        return max(len(self.bounds) - 1, 0)

    @classmethod
    def from_values(cls, values: np.ndarray, num_buckets: int = 32) -> "Histogram | None":
        """Build an equi-depth histogram from a numeric column sample.

        Returns ``None`` when the column is empty or has a single value (a
        histogram adds no information in that case).
        """
        if len(values) == 0:
            return None
        clean = values[~np.isnan(values)] if values.dtype.kind == "f" else values
        if len(clean) == 0:
            return None
        quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
        bounds = np.quantile(clean, quantiles)
        if bounds[0] == bounds[-1]:
            return None
        return cls(bounds=np.asarray(bounds, dtype=float))

    def selectivity_le(self, value: float) -> float:
        """Estimated fraction of rows with column value <= ``value``."""
        bounds = self.bounds
        if value < bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        # Find the bucket containing the value and interpolate inside it.
        idx = int(np.searchsorted(bounds, value, side="right")) - 1
        idx = min(max(idx, 0), self.num_buckets - 1)
        lo, hi = bounds[idx], bounds[idx + 1]
        frac_in_bucket = 0.5 if hi == lo else (value - lo) / (hi - lo)
        return (idx + frac_in_bucket) / self.num_buckets

    def selectivity_range(self, low: float | None, high: float | None,
                          low_inclusive: bool = True,
                          high_inclusive: bool = True) -> float:
        """Estimated fraction of rows in the (possibly half-open) range."""
        lo_sel = 0.0 if low is None else self.selectivity_le(low)
        hi_sel = 1.0 if high is None else self.selectivity_le(high)
        sel = hi_sel - lo_sel
        return float(min(max(sel, 0.0), 1.0))

    def value_at_fraction(self, fraction: float) -> float:
        """Inverse CDF: the column value below which ``fraction`` of rows fall.

        This is the sampling counterpart of :meth:`selectivity_le`; the
        workload generator uses it to turn a target selectivity into concrete
        range bounds drawn from the observed value distribution.
        """
        fraction = min(max(fraction, 0.0), 1.0)
        position = fraction * self.num_buckets
        idx = min(int(position), self.num_buckets - 1)
        lo, hi = self.bounds[idx], self.bounds[idx + 1]
        return float(lo + (position - idx) * (hi - lo))


@dataclass
class ColumnStats:
    """Statistics for a single column."""

    dtype: DataType
    num_rows: int
    null_fraction: float = 0.0
    ndv: int | None = None
    min_value: float | None = None
    max_value: float | None = None
    mcv_values: list = field(default_factory=list)
    mcv_fractions: list[float] = field(default_factory=list)
    histogram: Histogram | None = None

    @property
    def analyzed(self) -> bool:
        """True if real statistics (beyond the row count) are available."""
        return self.ndv is not None

    def effective_ndv(self) -> int:
        """NDV to use in estimation formulas, falling back to the default guess."""
        if self.ndv is not None and self.ndv > 0:
            return self.ndv
        return max(1, min(DEFAULT_NDV, self.num_rows))

    def mcv_fraction_for(self, value) -> float | None:
        """Frequency of ``value`` if it is one of the most common values."""
        for mcv, frac in zip(self.mcv_values, self.mcv_fractions):
            if mcv == value:
                return frac
        return None

    def total_mcv_fraction(self) -> float:
        """Total fraction of rows covered by the MCV list."""
        return float(sum(self.mcv_fractions))

    def equality_selectivity(self, value) -> float:
        """Estimated selectivity of ``column = value``."""
        if self.num_rows == 0:
            return 0.0
        if not self.analyzed:
            return DEFAULT_EQ_SELECTIVITY
        mcv = self.mcv_fraction_for(value)
        if mcv is not None:
            return mcv
        # Value is not an MCV: spread the remaining mass over the remaining
        # distinct values (the PostgreSQL formula).
        remaining_fraction = max(1.0 - self.total_mcv_fraction() - self.null_fraction, 0.0)
        remaining_ndv = max(self.effective_ndv() - len(self.mcv_values), 1)
        return remaining_fraction / remaining_ndv

    # ------------------------------------------------------------------
    # Distribution-driven sampling (used by the random workload generator)
    # ------------------------------------------------------------------
    def sample_value(self, rng: "np.random.Generator"):
        """Draw one plausible column value from the observed distribution.

        Prefers the MCV list (weighted by frequency, which is how a real
        point query is most likely to probe the column) and falls back to the
        histogram / min-max range for numeric columns.  Returns ``None`` when
        no value can be derived from the available statistics.
        """
        if self.mcv_values and (
                not self.dtype.is_numeric
                or rng.random() < max(self.total_mcv_fraction(), 0.1)):
            weights = np.asarray(self.mcv_fractions, dtype=float)
            idx = int(rng.choice(len(self.mcv_values), p=weights / weights.sum()))
            return _python_scalar(self.mcv_values[idx])
        if self.dtype.is_numeric:
            if self.histogram is not None:
                value = self.histogram.value_at_fraction(float(rng.random()))
            elif self.min_value is not None and self.max_value is not None:
                value = float(rng.uniform(self.min_value, self.max_value))
            else:
                return None
            return int(round(value)) if self.dtype is not DataType.FLOAT else value
        return None

    def sample_range(self, rng: "np.random.Generator",
                     target_selectivity: float) -> tuple | None:
        """Draw ``(low, high)`` bounds covering ~``target_selectivity`` rows.

        The bounds come from the histogram's inverse CDF (or the min/max span
        for histogram-less columns), so a target of 0.1 yields a range that
        actually selects about 10% of the rows regardless of skew.  Returns
        ``None`` for non-numeric or unanalyzed columns.
        """
        if not self.dtype.is_numeric:
            return None
        target_selectivity = min(max(target_selectivity, 0.0), 1.0)
        start = float(rng.uniform(0.0, 1.0 - target_selectivity))
        if self.histogram is not None:
            low = self.histogram.value_at_fraction(start)
            high = self.histogram.value_at_fraction(start + target_selectivity)
        elif self.min_value is not None and self.max_value is not None:
            span = self.max_value - self.min_value
            low = self.min_value + start * span
            high = low + target_selectivity * span
        else:
            return None
        if self.dtype is not DataType.FLOAT:
            return int(np.floor(low)), int(np.ceil(high))
        return float(low), float(high)

    def sample_in_values(self, rng: "np.random.Generator",
                         max_values: int = 4) -> tuple | None:
        """Draw a distinct IN-list from the MCV values (``None`` if too few)."""
        available = len(self.mcv_values)
        if available < 2 or max_values < 2:
            return None
        count = int(rng.integers(2, min(max_values, available) + 1))
        indices = rng.choice(available, size=count, replace=False)
        return tuple(_python_scalar(self.mcv_values[i]) for i in sorted(indices))

    def range_selectivity(self, low=None, high=None) -> float:
        """Estimated selectivity of ``low <= column <= high`` (either bound optional)."""
        if self.num_rows == 0:
            return 0.0
        if not self.analyzed or self.histogram is None:
            if not self.dtype.is_numeric or self.min_value is None or self.max_value is None:
                return DEFAULT_RANGE_SELECTIVITY
            span = self.max_value - self.min_value
            if span <= 0:
                return DEFAULT_RANGE_SELECTIVITY
            lo = self.min_value if low is None else max(low, self.min_value)
            hi = self.max_value if high is None else min(high, self.max_value)
            return float(min(max((hi - lo) / span, 0.0), 1.0))
        return self.histogram.selectivity_range(low, high)


def _python_scalar(value):
    """Convert numpy scalars to plain Python values (predicate literals)."""
    return value.item() if isinstance(value, np.generic) else value


@dataclass
class TableStats:
    """Statistics for a whole table (base table or materialized temporary)."""

    num_rows: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    #: The table's ``data_epoch`` when these statistics were collected.  The
    #: dynamic-data subsystem compares it against the table's *current*
    #: epoch to measure staleness (mutation batches since the last ANALYZE);
    #: see ``Database.stats_staleness`` and :mod:`repro.dynamic`.
    analyzed_epoch: int = 0

    def column(self, name: str) -> ColumnStats | None:
        """Statistics for ``name`` or ``None`` if the column was never analyzed."""
        return self.columns.get(name)

    def column_or_default(self, name: str, dtype: DataType = DataType.INT) -> ColumnStats:
        """Statistics for ``name``, falling back to an unanalyzed placeholder."""
        stats = self.columns.get(name)
        if stats is not None:
            return stats
        return ColumnStats(dtype=dtype, num_rows=self.num_rows)

    @classmethod
    def row_count_only(cls, num_rows: int) -> "TableStats":
        """Statistics carrying only the row count (unanalyzed temporary table)."""
        return cls(num_rows=num_rows, columns={})

    @property
    def analyzed(self) -> bool:
        """True if per-column statistics are available."""
        return bool(self.columns)
