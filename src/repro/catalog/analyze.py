"""ANALYZE: compute table / column statistics from actual column data.

This is the reproduction of PostgreSQL's statistics collector used by the
paper (Section 5): after a subquery's result is materialized into a temporary
table, QuerySplit (and the baseline re-optimizers) optionally run these
routines so the optimizer can estimate cardinalities over the new relation.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.statistics import ColumnStats, Histogram, TableStats
from repro.catalog.types import DataType
from repro.storage.dictionary import null_mask

#: Number of most-common values retained per column.
DEFAULT_MCV_SIZE = 10

#: Number of histogram buckets per numeric column.
DEFAULT_HISTOGRAM_BUCKETS = 16

#: Maximum sample size used for statistics collection (rows).
DEFAULT_SAMPLE_ROWS = 10_000


def analyze_columns(columns: dict[str, np.ndarray],
                    num_rows: int | None = None,
                    mcv_size: int = DEFAULT_MCV_SIZE,
                    histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
                    sample_rows: int = DEFAULT_SAMPLE_ROWS,
                    rng: np.random.Generator | None = None) -> TableStats:
    """Compute full statistics for a mapping of column name -> numpy array.

    Parameters
    ----------
    columns:
        Column arrays (all the same length).
    num_rows:
        Total row count; defaults to the length of the first column.
    mcv_size, histogram_buckets, sample_rows:
        Statistics resolution knobs (PostgreSQL's ``default_statistics_target``
        analogue).
    rng:
        Random generator used for sampling large tables; deterministic by
        default.
    """
    if num_rows is None:
        num_rows = len(next(iter(columns.values()))) if columns else 0
    stats = TableStats(num_rows=num_rows)
    if num_rows == 0:
        for name, values in columns.items():
            dtype = DataType.from_numpy(np.asarray(values).dtype)
            stats.columns[name] = ColumnStats(dtype=dtype, num_rows=0, ndv=0)
        return stats

    rng = rng or np.random.default_rng(0)
    for name, values in columns.items():
        values = np.asarray(values)
        if len(values) > sample_rows:
            idx = rng.choice(len(values), size=sample_rows, replace=False)
            sample = values[idx]
        else:
            sample = values
        stats.columns[name] = _analyze_column(
            sample, total_rows=num_rows, mcv_size=mcv_size,
            histogram_buckets=histogram_buckets)
    return stats


def analyze_table(table, **kwargs) -> TableStats:
    """Compute full statistics for a :class:`repro.storage.table.DataTable`.

    Dictionary-encoded columns are analyzed over their decoded values
    (uncached -- ANALYZE is a one-shot whole-column read), so statistics
    such as MCVs hold real strings regardless of the storage encoding.
    Mutated tables are analyzed over their **live** rows only (the
    valid-row mask excludes deleted rows), so a re-ANALYZE after deletes
    reports the row count and value distribution a rebuilt table would.
    """
    columns = {name: table.column_values(name, cache=False)
               for name in table.columns}
    num_rows = table.num_rows
    if getattr(table, "valid_mask", None) is not None:
        valid = table.valid_row_ids()
        columns = {name: values[valid] for name, values in columns.items()}
        num_rows = len(valid)
    return analyze_columns(columns, num_rows=num_rows, **kwargs)


def _analyze_column(sample: np.ndarray, total_rows: int,
                    mcv_size: int, histogram_buckets: int) -> ColumnStats:
    """Analyze one column sample, scaling counts up to ``total_rows``."""
    dtype = DataType.from_numpy(sample.dtype)
    sample_size = len(sample)
    if sample_size == 0:
        return ColumnStats(dtype=dtype, num_rows=total_rows, ndv=0)

    # Dtype-aware null handling shared with the dictionary encoder: object
    # columns may hold None (or stray NaN) regardless of the inferred
    # DataType, and float columns use NaN.  The previous
    # ``np.isnan(sample.astype(float))`` crashed on string data reaching
    # the FLOAT branch via object arrays of mixed numerics.
    nulls = null_mask(sample)
    non_null = sample[~nulls]
    null_fraction = float(nulls.mean()) if sample_size else 0.0

    if len(non_null) == 0:
        return ColumnStats(dtype=dtype, num_rows=total_rows, ndv=0,
                           null_fraction=null_fraction)

    uniques, counts = np.unique(non_null, return_counts=True)
    sample_ndv = len(uniques)
    ndv = _scale_ndv(sample_ndv, len(non_null), int(total_rows * (1 - null_fraction)))

    order = np.argsort(counts)[::-1]
    top = order[:mcv_size]
    mcv_values = [uniques[i] for i in top if counts[i] > 1]
    mcv_fractions = [float(counts[i]) / len(non_null) for i in top if counts[i] > 1]

    min_value = max_value = None
    histogram = None
    if dtype.is_numeric:
        numeric = non_null.astype(float)
        min_value = float(numeric.min())
        max_value = float(numeric.max())
        histogram = Histogram.from_values(numeric, num_buckets=histogram_buckets)

    return ColumnStats(
        dtype=dtype,
        num_rows=total_rows,
        null_fraction=null_fraction,
        ndv=ndv,
        min_value=min_value,
        max_value=max_value,
        mcv_values=mcv_values,
        mcv_fractions=mcv_fractions,
        histogram=histogram,
    )


def _scale_ndv(sample_ndv: int, sample_rows: int, total_rows: int) -> int:
    """Scale a sample NDV to the full table (Haas & Stokes style estimator).

    When every sampled value is distinct we assume the column is (nearly)
    unique; when there are repeats we scale the distinct count by the ratio
    of unseen rows, capped at the total row count.
    """
    if sample_rows == 0 or total_rows == 0:
        return 0
    if sample_rows >= total_rows:
        return sample_ndv
    if sample_ndv == sample_rows:
        return total_rows
    # Duj1 estimator: n*d / (n - f1 + f1*n/N) simplified with f1 approximated
    # by the number of values seen exactly once.
    ratio = total_rows / sample_rows
    estimate = int(min(total_rows, round(sample_ndv * min(ratio, 1 + (ratio - 1) * 0.5))))
    return max(estimate, sample_ndv)
