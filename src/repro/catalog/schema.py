"""Schema objects: tables, columns, and primary/foreign-key relationships.

The primary-key / foreign-key metadata recorded here is the backbone of the
FK-Center (called "RCenter" in parts of the paper) subquery generation
strategy: QuerySplit classifies every relation referenced by a query as an
R-relation (holds a foreign key, i.e. a "relationship"/fact table) or an
E-relation (its primary key is referenced, i.e. an "entity"/dimension table)
and orients the join-graph edges from R-relations to E-relations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.types import DataType


@dataclass(frozen=True)
class Column:
    """A column definition inside a :class:`TableSchema`."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("column name must be non-empty")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key constraint: ``column`` references ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class TableSchema:
    """Schema of a single table.

    Parameters
    ----------
    name:
        Table name (unique within a :class:`Schema`).
    columns:
        Ordered column definitions.
    primary_key:
        Name of the primary-key column, or ``None`` for tables without one.
    foreign_keys:
        Foreign-key constraints declared on this table.
    """

    name: str
    columns: list[Column]
    primary_key: str | None = None
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate column names in table {self.name!r}")
        if self.primary_key is not None and self.primary_key not in names:
            raise ValueError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise ValueError(
                    f"foreign key column {fk.column!r} is not a column of {self.name!r}"
                )

    @property
    def column_names(self) -> list[str]:
        """Names of all columns, in declaration order."""
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column definition by name."""
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """True if this table declares a column called ``name``."""
        return any(c.name == name for c in self.columns)

    def foreign_key_columns(self) -> set[str]:
        """Names of all columns that participate in a foreign-key constraint."""
        return {fk.column for fk in self.foreign_keys}

    def foreign_key_for(self, column: str) -> ForeignKey | None:
        """Return the foreign key declared on ``column``, if any."""
        for fk in self.foreign_keys:
            if fk.column == column:
                return fk
        return None


class Schema:
    """A collection of :class:`TableSchema` objects with PK/FK introspection."""

    def __init__(self, tables: list[TableSchema] | None = None):
        self._tables: dict[str, TableSchema] = {}
        for table in tables or []:
            self.add_table(table)

    def add_table(self, table: TableSchema) -> None:
        """Register a table schema (names must be unique)."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists in schema")
        self._tables[table.name] = table

    def table(self, name: str) -> TableSchema:
        """Look up a table schema by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"schema has no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """True if a table called ``name`` is registered."""
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._tables)

    def tables(self) -> list[TableSchema]:
        """All registered table schemas."""
        return list(self._tables.values())

    # ------------------------------------------------------------------
    # PK / FK introspection used by the join-graph construction
    # ------------------------------------------------------------------
    def referenced_tables(self) -> set[str]:
        """Tables whose primary key is referenced by at least one foreign key."""
        referenced = set()
        for table in self._tables.values():
            for fk in table.foreign_keys:
                referenced.add(fk.ref_table)
        return referenced

    def referencing_tables(self) -> set[str]:
        """Tables that declare at least one foreign key."""
        return {t.name for t in self._tables.values() if t.foreign_keys}

    def is_fk_reference(self, from_table: str, from_col: str,
                        to_table: str, to_col: str) -> bool:
        """True if ``from_table.from_col`` is a foreign key to ``to_table.to_col``."""
        if not self.has_table(from_table):
            return False
        fk = self.table(from_table).foreign_key_for(from_col)
        return fk is not None and fk.ref_table == to_table and fk.ref_column == to_col

    def join_kind(self, left_table: str, left_col: str,
                  right_table: str, right_col: str) -> str:
        """Classify an equi-join predicate between two base tables.

        Returns one of:

        * ``"pk-fk"``   -- exactly one side is a foreign key referencing the
          other side's primary key (the non-expanding case QuerySplit favours);
        * ``"fk-fk"``   -- both sides are foreign keys referencing the same
          primary key (an implied join through a shared dimension);
        * ``"other"``   -- any other equi-join (e.g. fact-fact join on
          non-key columns).
        """
        left_to_right = self.is_fk_reference(left_table, left_col, right_table, right_col)
        right_to_left = self.is_fk_reference(right_table, right_col, left_table, left_col)
        if left_to_right or right_to_left:
            return "pk-fk"
        if self.has_table(left_table) and self.has_table(right_table):
            left_fk = self.table(left_table).foreign_key_for(left_col)
            right_fk = self.table(right_table).foreign_key_for(right_col)
            if (left_fk is not None and right_fk is not None
                    and left_fk.ref_table == right_fk.ref_table
                    and left_fk.ref_column == right_fk.ref_column):
                return "fk-fk"
        return "other"

    def __repr__(self) -> str:
        return f"Schema({', '.join(self._tables)})"
