"""Execution reports (re-exported from :mod:`repro.report`).

The report dataclasses live at the package top level so that both the
QuerySplit core and the baseline algorithms can import them without creating
a circular import through this package's ``__init__``.
"""

from repro.report import ExecutionReport, IterationRecord, WorkloadResult

__all__ = ["ExecutionReport", "IterationRecord", "WorkloadResult"]
