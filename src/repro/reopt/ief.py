"""``IEF``: the Incremental Execution Framework (Neumann & Galindo-Legaria).

IEF halts query execution at pre-determined places in the global plan chosen
to remove the most *uncertainty* in cardinality estimation: the sub-plan
whose estimate is least trustworthy is executed first, its result is
materialized, and the rest of the query is re-planned with the now-exact
cardinality.

Uncertainty of a plan node is modelled from the sources PostgreSQL's
assumptions are known to get wrong (Section 2.1):

* every join predicate that is *not* a primary/foreign-key join contributes
  heavily (correlated fact-fact joins are where errors explode);
* every filter predicate contributes moderately (independence assumption);
* every additional join level contributes a little (error propagation);
* sub-plans over already-materialized temporaries contribute nothing (their
  cardinality is exact).
"""

from __future__ import annotations

from repro.plan.physical import JoinNode, PhysicalPlan, PlanNode, ScanNode
from repro.reopt.base import ReoptimizerBase

#: Uncertainty contributed by a non-PK-FK join predicate.
NON_FK_JOIN_WEIGHT = 3.0
#: Uncertainty contributed by a PK-FK join predicate.
FK_JOIN_WEIGHT = 0.5
#: Uncertainty contributed by a filter predicate.
FILTER_WEIGHT = 1.0


class IEFBaseline(ReoptimizerBase):
    """Materialize the most uncertain sub-plan, re-plan, repeat."""

    name = "IEF"
    always_materialize = True
    #: IEF re-plans after every materialization (its checkpoints exist to
    #: remove uncertainty, not to validate a threshold).
    trigger_threshold = 1.0

    def materialization_points(self, plan: PhysicalPlan) -> list[JoinNode]:
        joins = [node for node in plan.join_nodes() if node is not plan.root]
        if not joins:
            return []
        scored = [(self._uncertainty(node), i, node) for i, node in enumerate(joins)]
        best = max(scored, key=lambda item: (item[0], -item[1]))
        if best[0] <= 0.0:
            return []
        return [best[2]]

    def _uncertainty(self, node: PlanNode) -> float:
        score = 0.0
        if isinstance(node, ScanNode):
            if node.relation.is_temp:
                return 0.0
            return FILTER_WEIGHT * len(node.filters)
        if isinstance(node, JoinNode):
            for pred in node.predicates:
                if self._is_fk_join(node, pred):
                    score += FK_JOIN_WEIGHT
                else:
                    score += NON_FK_JOIN_WEIGHT
            for child in node.children():
                score += self._uncertainty(child)
        return score

    def _is_fk_join(self, node: JoinNode, pred) -> bool:
        tables = {}
        for leaf in node.leaf_relations():
            for alias in leaf.covered_aliases:
                tables[alias] = leaf.table_name if not leaf.is_temp else None
        left_table = tables.get(pred.left.alias)
        right_table = tables.get(pred.right.alias)
        if left_table is None or right_table is None:
            return True  # a temp side: its cardinality is exact, low uncertainty
        kind = self.database.schema.join_kind(left_table, pred.left.column,
                                              right_table, pred.right.column)
        return kind == "pk-fk"
