"""Robust query processing and learned-CE baselines (Section 6.3).

* **USE** -- upper-bound sketch estimation, nested-loop joins disabled,
  non-adaptive execution;
* **Pessi.** -- pessimistic (upper bound) cardinality estimation with the
  standard plan search;
* **FS** -- robust plan selection: plans are ranked by a mix of their
  estimated cost and the cost they would have under inflated cardinalities;
* **OptRange** -- optimality ranges: execution checkpoints at pipeline
  breakers re-plan only when the observed cardinality leaves the plan's
  validity window;
* **NeuroCard / DeepDB / MSCN** -- simulated learned estimators (accurate on
  numeric predicates, default fallback on string predicates).
"""

from __future__ import annotations

from repro.executor.executor import Executor
from repro.optimizer.learned import LearnedCardinalityEstimator
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.optimizer.oracle import TrueCardinalityOracle
from repro.optimizer.pessimistic import PessimisticCardinalityEstimator
from repro.optimizer.robust import fs_config, use_config
from repro.plan.physical import JoinNode, PhysicalPlan
from repro.reopt.base import BaselineConfig, NonAdaptiveBaseline, ReoptimizerBase
from repro.storage.database import Database


class PessimisticBaseline(NonAdaptiveBaseline):
    """Non-adaptive execution with pessimistic (upper-bound) estimation."""

    name = "Pessi."

    def __init__(self, database: Database, optimizer: Optimizer | None = None,
                 executor: Executor | None = None,
                 config: BaselineConfig | None = None):
        base = optimizer or Optimizer(database)
        estimator = PessimisticCardinalityEstimator(database)
        super().__init__(database, base.with_estimator(estimator),
                         executor=executor, config=config)


class USEBaseline(NonAdaptiveBaseline):
    """USE: upper-bound estimation and no nested-loop joins (non-adaptive)."""

    name = "USE"

    def __init__(self, database: Database, optimizer: Optimizer | None = None,
                 executor: Executor | None = None,
                 config: BaselineConfig | None = None):
        estimator = PessimisticCardinalityEstimator(database)
        opt_config = OptimizerConfig(enumerator=use_config())
        use_optimizer = Optimizer(database, estimator=estimator, config=opt_config)
        super().__init__(database, use_optimizer, executor=executor, config=config)


class FSBaseline(NonAdaptiveBaseline):
    """FS: cost/robustness trade-off during plan selection (non-adaptive)."""

    name = "FS"

    def __init__(self, database: Database, optimizer: Optimizer | None = None,
                 executor: Executor | None = None,
                 config: BaselineConfig | None = None):
        opt_config = OptimizerConfig(enumerator=fs_config())
        fs_optimizer = Optimizer(database, config=opt_config)
        super().__init__(database, fs_optimizer, executor=executor, config=config)


class OptRangeBaseline(ReoptimizerBase):
    """OptRange: re-plan only when an observation leaves the optimality range."""

    name = "OptRange"
    always_materialize = False
    #: The optimality window is approximated as [estimate/4, estimate*4].
    trigger_threshold = 4.0

    def materialization_points(self, plan: PhysicalPlan) -> list[JoinNode]:
        return [node for node in plan.join_nodes() if node.is_pipeline_breaker]


class LearnedCEBaseline(NonAdaptiveBaseline):
    """Non-adaptive execution driven by a simulated learned estimator."""

    def __init__(self, database: Database, model: str = "neurocard",
                 optimizer: Optimizer | None = None,
                 executor: Executor | None = None,
                 config: BaselineConfig | None = None,
                 oracle: TrueCardinalityOracle | None = None):
        self.name = {"neurocard": "NeuroCard", "deepdb": "DeepDB",
                     "mscn": "MSCN"}.get(model, model)
        self.oracle = oracle or TrueCardinalityOracle(database)
        estimator = LearnedCardinalityEstimator(database, model=model,
                                                oracle=self.oracle)
        base = optimizer or Optimizer(database)
        super().__init__(database, base.with_estimator(estimator),
                         executor=executor, config=config)

    def run(self, query):
        report = super().run(query)
        self.oracle.reset()
        return report
