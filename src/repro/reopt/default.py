"""The non-adaptive ``Default`` and ``Optimal`` baselines (Section 6.3).

* **Default** is PostgreSQL with its default optimizer: plan once using the
  statistics-based estimator, execute the plan, never look back.
* **Optimal** is PostgreSQL fed the *true* cardinality of every intermediate
  result: the optimizer is driven by the :class:`TrueCardinalityOracle`, so
  the plan it picks is optimal with respect to perfect estimates.  Its oracle
  cost is not charged to the measured execution time (it is an idealized
  upper bound, exactly as in the paper).
"""

from __future__ import annotations

from repro.executor.executor import Executor
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.oracle import OracleCardinalityEstimator, TrueCardinalityOracle
from repro.reopt.base import BaselineConfig, NonAdaptiveBaseline
from repro.storage.database import Database


class DefaultBaseline(NonAdaptiveBaseline):
    """PostgreSQL's default behaviour: one plan from the default estimator."""

    name = "Default"


class OptimalBaseline(NonAdaptiveBaseline):
    """The idealized optimizer fed true cardinalities."""

    name = "Optimal"

    def __init__(self, database: Database, optimizer: Optimizer | None = None,
                 executor: Executor | None = None,
                 config: BaselineConfig | None = None,
                 oracle: TrueCardinalityOracle | None = None):
        self.oracle = oracle or TrueCardinalityOracle(database)
        estimator = OracleCardinalityEstimator(database, oracle=self.oracle)
        base_optimizer = optimizer or Optimizer(database)
        super().__init__(database, base_optimizer.with_estimator(estimator),
                         executor=executor, config=config)

    def run(self, query):
        report = super().run(query)
        # Bound the oracle's memory between queries.
        self.oracle.reset()
        return report
