"""``Pop``: progressive optimization (Markl et al., 2004).

Pop extends Reopt with checkpoints in many more places, most notably on the
outer side of nested-loop joins, and validates the running plan against
cardinality validity ranges.  The practical effect the paper highlights is an
aggressive materialization schedule -- essentially after every join -- which
buys adaptivity at a large materialization and memory overhead (Table 4).
"""

from __future__ import annotations

from repro.plan.physical import JoinNode, PhysicalPlan
from repro.reopt.base import ReoptimizerBase


class PopBaseline(ReoptimizerBase):
    """Materialize at (nearly) every join; re-plan outside the validity range."""

    name = "Pop"
    always_materialize = True
    trigger_threshold = 2.0

    def materialization_points(self, plan: PhysicalPlan) -> list[JoinNode]:
        return list(plan.join_nodes())
