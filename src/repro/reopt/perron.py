"""``Perron19``: the re-optimization strategy of Perron et al. (ICDE 2019).

Following Appendix B of the paper, the practical (non-simulated) variant
materializes the result of every intermediate join operator into a temporary
table, runs the ANALYZE routines over it, and re-plans the remaining query
whenever the q-error between the materialized cardinality and the estimate
exceeds a fixed threshold of 32.
"""

from __future__ import annotations

from repro.plan.physical import JoinNode, PhysicalPlan
from repro.reopt.base import ReoptimizerBase


class Perron19Baseline(ReoptimizerBase):
    """Materialize every join; re-plan when the q-error exceeds 32."""

    name = "Perron19"
    always_materialize = True
    trigger_threshold = 32.0

    def materialization_points(self, plan: PhysicalPlan) -> list[JoinNode]:
        return list(plan.join_nodes())
