"""``Reopt``: mid-query re-optimization by Kabra & DeWitt (1998).

The original system inserts statistics-collection operators after pipeline
breakers (hash builds, sorts) in the physical plan.  When the observed
cardinality deviates from the estimate by more than a threshold and the
benefit of re-planning outweighs its cost, the rest of the query is
re-optimized against the materialized intermediate result.

Consequences reproduced here (and called out in the paper):

* in a plan consisting purely of (index) nested-loop joins there is no
  pipeline breaker, so re-optimization never triggers;
* materialization is rare (only on triggered checkpoints), giving Reopt the
  lowest materialization frequency of all baselines (Table 4) but also the
  least ability to escape a bad initial plan.
"""

from __future__ import annotations

from repro.plan.physical import JoinNode, PhysicalPlan
from repro.reopt.base import ReoptimizerBase


class ReoptBaseline(ReoptimizerBase):
    """Re-optimize at pipeline breakers on large estimation errors."""

    name = "Reopt"
    always_materialize = False
    trigger_threshold = 2.0

    def materialization_points(self, plan: PhysicalPlan) -> list[JoinNode]:
        return [node for node in plan.join_nodes() if node.is_pipeline_breaker]
