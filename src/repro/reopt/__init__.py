"""Re-optimization algorithms and baselines.

* :mod:`repro.reopt.base` -- shared machinery (non-SPJ segmentation, timeout
  handling, statistics collection, plan-driven execution loop);
* :mod:`repro.reopt.default` -- the non-adaptive ``Default`` and ``Optimal``
  baselines;
* :mod:`repro.reopt.kabra` -- ``Reopt`` (Kabra & DeWitt): re-optimize at
  pipeline breakers when estimates deviate;
* :mod:`repro.reopt.pop` -- ``Pop`` (progressive optimization): aggressive
  materialization, including at nested-loop joins;
* :mod:`repro.reopt.ief` -- ``IEF`` (incremental execution framework):
  materialize at the most uncertain plan node;
* :mod:`repro.reopt.perron` -- ``Perron19``: materialize every join, re-plan
  when the q-error exceeds 32;
* :mod:`repro.reopt.robust_baselines` -- the non-adaptive robust baselines
  (USE, Pessimistic CE, FS) plus OptRange and the learned-CE baselines;
* :mod:`repro.reopt.registry` -- name -> factory registry used by the bench
  harness and experiments.
"""

from repro.report import ExecutionReport, IterationRecord, WorkloadResult
from repro.reopt.base import BaselineConfig, ReoptimizerBase
from repro.reopt.default import DefaultBaseline, OptimalBaseline
from repro.reopt.kabra import ReoptBaseline
from repro.reopt.pop import PopBaseline
from repro.reopt.ief import IEFBaseline
from repro.reopt.perron import Perron19Baseline
from repro.reopt.robust_baselines import (
    FSBaseline,
    LearnedCEBaseline,
    OptRangeBaseline,
    PessimisticBaseline,
    USEBaseline,
)
from repro.reopt.registry import ALGORITHM_NAMES, make_algorithm

__all__ = [
    "ExecutionReport",
    "IterationRecord",
    "WorkloadResult",
    "BaselineConfig",
    "ReoptimizerBase",
    "DefaultBaseline",
    "OptimalBaseline",
    "ReoptBaseline",
    "PopBaseline",
    "IEFBaseline",
    "Perron19Baseline",
    "USEBaseline",
    "PessimisticBaseline",
    "FSBaseline",
    "OptRangeBaseline",
    "LearnedCEBaseline",
    "ALGORITHM_NAMES",
    "make_algorithm",
]
