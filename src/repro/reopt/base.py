"""Shared machinery for the plan-driven re-optimization baselines.

All four baselines of the paper (Reopt, Pop, IEF, Perron19) follow the same
skeleton -- they differ only in *where* they materialize intermediate results
and *when* a deviation between the estimated and the observed cardinality
triggers a re-plan:

1. optimize the remaining query into a global physical plan;
2. execute the plan incrementally up to the next materialization point;
3. compare the observed cardinality against the estimate; if the policy's
   trigger fires, materialize the intermediate result as a temporary table
   (collecting statistics unless disabled), substitute it into the remaining
   query, and go back to step 1;
4. otherwise continue with the *same* plan (this is what makes the baselines
   hostage to a bad initial plan);
5. when no materialization point remains, execute the rest of the plan and
   finish.

Subclasses provide the policy through :meth:`materialization_points`,
:attr:`always_materialize` and :attr:`trigger_threshold`.

Incremental execution relies on two layers of caching in the executor: the
per-plan ``cache`` dict below (``id(node)`` -> executed
:class:`~repro.executor.chunk.Chunk`) keeps already-executed subtrees of the
*current* plan from re-running, and -- when the shared executor was built
with an engine-level
:class:`~repro.executor.subplan_cache.SubplanCache` -- equivalent subtrees
are also reused across re-plans, queries, and whole policies by canonical
signature (a re-planned remaining query usually re-joins the same filtered
base relations, just in a different order).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.catalog.analyze import analyze_columns
from repro.catalog.statistics import TableStats
from repro.core.nonspj import execute_query_tree
from repro.executor.chunk import Chunk
from repro.executor.executor import ExecutionError, Executor
from repro.executor.joins import JoinOverflowError
from repro.executor.morsels import MorselCancelled
from repro.optimizer.optimizer import Optimizer
from repro.plan.expressions import ColumnRef
from repro.plan.logical import Query, RelationRef, SPJQuery
from repro.plan.physical import JoinNode, PhysicalPlan
from repro.report import ExecutionReport, IterationRecord
from repro.storage.database import Database
from repro.storage.table import DataTable


class QueryTimeout(Exception):
    """Raised internally when a query exceeds its execution-time budget."""


@dataclass
class BaselineConfig:
    """Configuration shared by all baselines."""

    collect_statistics: bool = True
    timeout_seconds: float | None = None


class AlgorithmBase:
    """Common run() wrapper: non-SPJ segmentation, timeout, temp cleanup."""

    name = "algorithm"

    def __init__(self, database: Database, optimizer: Optimizer,
                 executor: Executor | None = None,
                 config: BaselineConfig | None = None):
        self.database = database
        self.optimizer = optimizer
        self.executor = executor or Executor(database)
        self.config = config or BaselineConfig()
        self._deadline: float | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, query: Query) -> ExecutionReport:
        """Execute ``query`` and return its execution report."""
        report = ExecutionReport(query_name=query.name, algorithm=self.name,
                                 total_time=0.0)
        self._deadline = (time.perf_counter() + self.config.timeout_seconds
                          if self.config.timeout_seconds is not None else None)
        # The executor's morsel fan-out shares the same cooperative
        # deadline: it checks between morsel waves and unwinds with
        # MorselCancelled, which is handled exactly like QueryTimeout.
        self.executor.deadline = self._deadline
        planner_before = self.optimizer.invocations
        try:
            final = execute_query_tree(
                query.root, lambda spj: self._run_spj(spj, report))
            report.final_table = final
            report.final_rows = final.num_rows
        except (QueryTimeout, MorselCancelled, JoinOverflowError,
                ExecutionError):
            # Exceeding the join-size cap or the time budget is the Python
            # engine's analogue of the paper's 1000 s query timeout.
            report.timed_out = True
            if self.config.timeout_seconds is not None:
                report.total_time = max(report.total_time, self.config.timeout_seconds)
        finally:
            self.executor.deadline = None
            report.planner_invocations = self.optimizer.invocations - planner_before
            self.database.drop_temp_tables()
        return report

    def _run_spj(self, spj: SPJQuery, report: ExecutionReport) -> DataTable:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _check_timeout(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise QueryTimeout()

    def _collect_stats(self, table: DataTable) -> tuple[TableStats, float, bool]:
        start = time.perf_counter()
        if self.config.collect_statistics:
            stats = analyze_columns(dict(table.columns), num_rows=table.num_rows)
            return stats, time.perf_counter() - start, True
        return (TableStats.row_count_only(table.num_rows),
                time.perf_counter() - start, False)

    @staticmethod
    def _retained_columns(spj: SPJQuery, aliases: frozenset[str]) -> tuple[ColumnRef, ...]:
        """Every column of ``spj`` (outputs and predicates) within ``aliases``."""
        return tuple(ref for ref in spj.referenced_columns() if ref.alias in aliases)


class NonAdaptiveBaseline(AlgorithmBase):
    """Plan once, execute once (Default, Optimal, and the robust baselines)."""

    name = "non-adaptive"

    def _run_spj(self, spj: SPJQuery, report: ExecutionReport) -> DataTable:
        self._check_timeout()
        plan = self.optimizer.plan(spj)
        result = self.executor.execute(plan)
        report.total_time += result.wall_time
        report.iterations.append(IterationRecord(
            index=len(report.iterations),
            description=f"{spj.name}:full-plan",
            aliases=spj.covered_aliases(),
            result_rows=result.join_rows,
            wall_time=result.wall_time,
            memory_bytes=result.memory_bytes,
            materialized=False,
            replanned=False,
        ))
        return result.table


class ReoptimizerBase(AlgorithmBase):
    """Skeleton of the plan-driven re-optimization baselines."""

    name = "reoptimizer"
    #: Materialize at every materialization point, even without a trigger.
    always_materialize = False
    #: q-error threshold above which the remaining query is re-planned.
    trigger_threshold = 2.0

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def materialization_points(self, plan: PhysicalPlan) -> list[JoinNode]:
        """Plan nodes (in execution order) where the policy checkpoints."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # The shared loop
    # ------------------------------------------------------------------
    def _run_spj(self, spj: SPJQuery, report: ExecutionReport) -> DataTable:
        remaining = spj
        current_plan: PhysicalPlan | None = None
        cache: dict[int, Chunk] = {}
        consumed_points: set[int] = set()

        while True:
            self._check_timeout()
            if current_plan is None:
                current_plan = self.optimizer.plan(remaining)
                cache = {}
                consumed_points = set()

            points = [
                node for node in self.materialization_points(current_plan)
                if node is not current_plan.root and id(node) not in consumed_points
            ]
            if not points or len(remaining.relations) <= 2:
                return self._finish(remaining, current_plan, cache, report)

            node = self._next_point(points, remaining, consumed_points)
            if node is None:
                return self._finish(remaining, current_plan, cache, report)
            aliases = node.covered_aliases()
            retained = self._retained_columns(spj, aliases)
            subtree_plan = PhysicalPlan(query_name=f"{spj.name}:subplan",
                                        root=node, output_columns=retained)
            result = self.executor.execute(subtree_plan, cache=cache)
            report.total_time += result.wall_time

            estimated = max(node.est_rows, 1.0)
            actual = max(result.join_rows, 1)
            q_error = max(actual / estimated, estimated / actual)
            triggered = q_error > self.trigger_threshold
            materialize = triggered or self.always_materialize

            analyze_time = 0.0
            stats_collected = False
            if materialize:
                stats, analyze_time, stats_collected = self._collect_stats(result.table)
                report.total_time += analyze_time
                if stats_collected:
                    report.stats_collections += 1
                temp_name = self.database.register_temp(result.table, stats, aliases)
                temp_ref = RelationRef.temp(temp_name, aliases)
                remaining = remaining.substitute(temp_ref)
                if triggered:
                    current_plan = None  # force a re-plan of the remaining query

            report.iterations.append(IterationRecord(
                index=len(report.iterations),
                description=f"{spj.name}:{'+'.join(sorted(aliases))}",
                aliases=aliases,
                result_rows=result.table.num_rows,
                wall_time=result.wall_time + analyze_time,
                memory_bytes=result.table.memory_bytes,
                materialized=materialize,
                replanned=triggered,
                stats_collected=stats_collected,
            ))

    def _next_point(self, points: list[JoinNode], remaining: SPJQuery,
                    consumed_points: set[int]) -> JoinNode | None:
        """Pick the next materialization point that can be safely materialized.

        A point is skipped when its relations only partially overlap a
        relation of the remaining query (i.e. an already-materialized
        temporary that covers more aliases than the point): substituting it
        would lose data.  This only arises when a policy re-orders the plan's
        checkpoints (e.g. the Phi-ordered variants of Table 5).
        """
        for node in points:
            consumed_points.add(id(node))
            aliases = node.covered_aliases()
            safe = True
            for relation in remaining.relations:
                overlap = relation.covered_aliases & aliases
                if overlap and not (relation.covered_aliases <= aliases):
                    safe = False
                    break
            if safe:
                return node
        return None

    def _finish(self, remaining: SPJQuery, plan: PhysicalPlan,
                cache: dict[int, Chunk], report: ExecutionReport) -> DataTable:
        result = self.executor.execute(plan, cache=cache)
        report.total_time += result.wall_time
        report.iterations.append(IterationRecord(
            index=len(report.iterations),
            description=f"{remaining.name}:final",
            aliases=remaining.covered_aliases(),
            result_rows=result.join_rows,
            wall_time=result.wall_time,
            memory_bytes=result.memory_bytes,
            materialized=False,
            replanned=False,
        ))
        return result.table
