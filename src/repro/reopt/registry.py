"""Algorithm registry: build any evaluated algorithm by name.

The bench harness and the experiment scripts refer to algorithms by the names
used in the paper's figures (``QuerySplit``, ``Optimal``, ``Default``,
``Reopt``, ``Pop``, ``IEF``, ``Perron19``, ``USE``, ``Pessi.``, ``FS``,
``OptRange``, ``NeuroCard``, ``DeepDB``, ``MSCN``).  :func:`make_algorithm`
wires up the right optimizer, estimator, and driver for each.
"""

from __future__ import annotations

from repro.core.qsa import QSAStrategy
from repro.core.splitter import QuerySplitConfig, QuerySplitExecutor
from repro.core.ssa import CostFunction
from repro.executor.executor import Executor
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.oracle import TrueCardinalityOracle
from repro.reopt.base import BaselineConfig
from repro.reopt.default import DefaultBaseline, OptimalBaseline
from repro.reopt.ief import IEFBaseline
from repro.reopt.kabra import ReoptBaseline
from repro.reopt.perron import Perron19Baseline
from repro.reopt.pop import PopBaseline
from repro.reopt.robust_baselines import (
    FSBaseline,
    LearnedCEBaseline,
    OptRangeBaseline,
    PessimisticBaseline,
    USEBaseline,
)
from repro.storage.database import Database

#: Names of the re-optimization algorithms (used by Table 4 / Figure 15).
REOPT_ALGORITHMS = ("QuerySplit", "Reopt", "Pop", "IEF", "Perron19")

#: All algorithm names accepted by :func:`make_algorithm`.
ALGORITHM_NAMES = (
    "QuerySplit", "Optimal", "Default", "Reopt", "Pop", "IEF", "Perron19",
    "USE", "Pessi.", "FS", "OptRange", "NeuroCard", "DeepDB", "MSCN",
)


def make_algorithm(name: str, database: Database,
                   collect_statistics: bool = True,
                   timeout_seconds: float | None = None,
                   qsa_strategy: QSAStrategy = QSAStrategy.FK_CENTER,
                   cost_function: CostFunction = CostFunction.PHI4,
                   estimator=None,
                   subplan_cache=None,
                   fused_kernels: bool = True,
                   semijoin_pruning: bool = True,
                   workers: int = 1,
                   morsel_scheduler=None):
    """Instantiate the algorithm called ``name`` over ``database``.

    Parameters
    ----------
    name:
        One of :data:`ALGORITHM_NAMES`.
    database:
        The loaded benchmark database.
    collect_statistics:
        Whether materialized intermediate results are analyzed (Figure 15).
    timeout_seconds:
        Per-query execution-time budget (the paper uses 1000 s).
    qsa_strategy, cost_function:
        QuerySplit policy knobs (Table 3).
    estimator:
        Optional cardinality estimator override for the driving optimizer
        (used by the robustness study of Figure 10).
    subplan_cache:
        Optional engine-level
        :class:`~repro.executor.subplan_cache.SubplanCache` shared across
        algorithms: the executor stores/reuses executed subtrees by
        canonical signature, and the true-cardinality oracle answers probes
        from it.  Leave ``None`` (the default) to keep every algorithm's
        execution fully independent.
    fused_kernels, semijoin_pruning:
        Executor hot-path toggles (see
        :class:`~repro.executor.executor.Executor`): fused
        selectivity-ordered predicate evaluation in scans, and build-side
        semijoin/Bloom filters pushed into probe-side scans.  On by
        default; benchmarks switch them off to measure the naive path.
    workers, morsel_scheduler:
        Morsel-parallel intra-query execution (see
        :class:`~repro.executor.executor.Executor`): ``workers`` sizes a
        private pool for this runner's executor, while
        ``morsel_scheduler`` shares an externally owned
        :class:`~repro.executor.morsels.MorselScheduler` across runners
        (the serving layer's oversubscription control) and overrides
        ``workers``.
    """
    optimizer = Optimizer(database)
    if estimator is not None:
        optimizer = optimizer.with_estimator(estimator)
    executor = Executor(database, subplan_cache=subplan_cache,
                        fused=fused_kernels, semijoin=semijoin_pruning,
                        workers=workers, morsel_scheduler=morsel_scheduler)
    baseline_config = BaselineConfig(collect_statistics=collect_statistics,
                                     timeout_seconds=timeout_seconds)

    if name == "QuerySplit":
        config = QuerySplitConfig(
            qsa_strategy=qsa_strategy,
            cost_function=cost_function,
            collect_statistics=collect_statistics,
            timeout_seconds=timeout_seconds,
        )
        return QuerySplitExecutor(database, optimizer, executor=executor,
                                  config=config)
    if name == "Default":
        return DefaultBaseline(database, optimizer, executor=executor,
                               config=baseline_config)
    if name == "Optimal":
        oracle = TrueCardinalityOracle(database, subplan_cache=subplan_cache)
        return OptimalBaseline(database, optimizer, executor=executor,
                               config=baseline_config, oracle=oracle)
    if name == "Reopt":
        return ReoptBaseline(database, optimizer, executor=executor,
                             config=baseline_config)
    if name == "Pop":
        return PopBaseline(database, optimizer, executor=executor,
                           config=baseline_config)
    if name == "IEF":
        return IEFBaseline(database, optimizer, executor=executor,
                           config=baseline_config)
    if name == "Perron19":
        return Perron19Baseline(database, optimizer, executor=executor,
                                config=baseline_config)
    if name == "USE":
        return USEBaseline(database, executor=executor, config=baseline_config)
    if name == "Pessi.":
        return PessimisticBaseline(database, optimizer, executor=executor,
                                   config=baseline_config)
    if name == "FS":
        return FSBaseline(database, executor=executor, config=baseline_config)
    if name == "OptRange":
        return OptRangeBaseline(database, optimizer, executor=executor,
                                config=baseline_config)
    if name in ("NeuroCard", "DeepDB", "MSCN"):
        oracle = TrueCardinalityOracle(database, subplan_cache=subplan_cache)
        return LearnedCEBaseline(database, model=name.lower(),
                                 optimizer=optimizer, executor=executor,
                                 config=baseline_config, oracle=oracle)
    raise ValueError(f"unknown algorithm {name!r}; known: {ALGORITHM_NAMES}")
