"""Vectorized query executor (late-materialization engine).

The executor evaluates physical plans over the in-memory columnar tables
with a small operator pipeline (:mod:`repro.executor.operators`): filters
become boolean masks, equi-joins become sort/searchsorted matching over
gathered key columns, and index nested-loop joins probe the pre-built sorted
indexes.  Intermediate results are :class:`~repro.executor.chunk.Chunk`
selection vectors (one base-table row-id vector per relation); real columns
are materialized exactly once at the plan root.

Executed subtrees can be shared across plans, queries, and re-optimization
policies through the signature-keyed
:class:`~repro.executor.subplan_cache.SubplanCache`.

Besides producing results, the executor records the *actual* cardinality and
wall-clock time of every operator, which is the runtime feedback that all
re-optimization algorithms consume.
"""

from repro.executor.chunk import Chunk, MaterializationStats
from repro.executor.executor import ExecutionError, ExecutionResult, Executor
from repro.executor.joins import equi_join_indices, multi_key_equi_join
from repro.executor.subplan_cache import SubplanCache, subplan_signature

__all__ = [
    "Chunk",
    "ExecutionError",
    "ExecutionResult",
    "Executor",
    "MaterializationStats",
    "SubplanCache",
    "equi_join_indices",
    "multi_key_equi_join",
    "subplan_signature",
]
