"""Vectorized query executor.

The executor evaluates physical plans over the in-memory columnar tables.
Operators are vectorized over numpy arrays (the practical substitute for
PostgreSQL's tuple-at-a-time Volcano executor): filters become boolean
masks, equi-joins become sort/searchsorted matching, and index nested-loop
joins probe the pre-built sorted indexes.

Besides producing results, the executor records the *actual* cardinality and
wall-clock time of every operator, which is the runtime feedback that all
re-optimization algorithms consume.
"""

from repro.executor.executor import Executor, ExecutionResult
from repro.executor.joins import equi_join_indices, multi_key_equi_join

__all__ = ["Executor", "ExecutionResult", "equi_join_indices", "multi_key_equi_join"]
