"""Vectorized aggregation kernels (shared with the non-SPJ execution path).

GROUP BY aggregation is computed with sort + segment reductions
(``np.ufunc.reduceat``) instead of a per-group Python loop: rows are ordered
by group id once, group boundaries are located with ``searchsorted``, and
every aggregate is then a single reduceat call over the sorted values.  The
output arrays keep the historical ``object`` dtype contract (mixed int/float
aggregate values per table).
"""

from __future__ import annotations

import numpy as np

from repro.executor.joins import _MAX_COMBINED_CODE
from repro.plan.expressions import ColumnRef
from repro.plan.logical import AggregateSpec
from repro.storage.table import DataTable


def _num_rows(columns: dict[str, np.ndarray]) -> int:
    if not columns:
        return 0
    return len(next(iter(columns.values())))


def _scalar_aggregate(columns: dict[str, np.ndarray],
                      aggregates: tuple[AggregateSpec, ...],
                      num_rows: int | None = None) -> DataTable:
    """Apply scalar (ungrouped) aggregates to a result.

    ``num_rows`` overrides the row count inferred from ``columns`` -- needed
    for pure ``COUNT(*)`` queries whose input chunk carries no columns.
    """
    rows = _num_rows(columns) if num_rows is None else num_rows
    out: dict[str, np.ndarray] = {}
    for spec in aggregates:
        out[spec.output_name] = np.array([_aggregate_value(columns, spec, rows)],
                                         dtype=object)
    return DataTable(name="aggregate", columns=out)


def group_aggregate(columns: dict[str, np.ndarray],
                    group_by: tuple[ColumnRef, ...],
                    aggregates: tuple[AggregateSpec, ...]) -> DataTable:
    """GROUP BY aggregation over a joined result."""
    rows = _num_rows(columns)
    if not group_by:
        return _scalar_aggregate(columns, aggregates)
    key_arrays = [columns[ref.qualified] for ref in group_by]
    # Build group ids via successive uniquification of the key columns.  As
    # in joins.combine_key_pair, the running ``ids * span + inverse``
    # encoding is re-uniquified into a dense range whenever the next
    # extension could overflow int64 (equal composites stay equal, so the
    # grouping is unchanged).
    group_ids = np.zeros(rows, dtype=np.int64)
    for arr in key_arrays:
        _, inverse = np.unique(arr, return_inverse=True)
        span = int(inverse.max()) + 1 if rows else 1
        current_max = int(group_ids.max()) if rows else 0
        if current_max and span > _MAX_COMBINED_CODE // (current_max + 1):
            _, group_ids = np.unique(group_ids, return_inverse=True)
            group_ids = group_ids.astype(np.int64)
        group_ids = group_ids * span + inverse
    uniq_ids, group_index, inverse = np.unique(group_ids, return_index=True,
                                               return_inverse=True)
    out: dict[str, np.ndarray] = {}
    for ref in group_by:
        out[ref.qualified] = columns[ref.qualified][group_index]
    order = np.argsort(inverse, kind="stable")
    starts = np.searchsorted(inverse[order], np.arange(len(uniq_ids)))
    counts = np.diff(np.append(starts, rows))
    for spec in aggregates:
        data = (columns[spec.column.qualified] if spec.column is not None else None)
        out[spec.output_name] = _segment_aggregate(data, order, starts, counts, spec)
    return DataTable(name="aggregate", columns=out)


def _segment_aggregate(data: np.ndarray | None, order: np.ndarray,
                       starts: np.ndarray, counts: np.ndarray,
                       spec: AggregateSpec) -> np.ndarray:
    """One aggregate over every group segment, fully vectorized.

    ``order`` sorts the input rows by group; ``starts`` holds each group's
    first position in that ordering.  Groups are never empty (they exist
    because at least one row mapped to them), which is what makes plain
    ``reduceat`` safe here.
    """
    num_groups = len(starts)
    out = np.empty(num_groups, dtype=object)
    if num_groups == 0:
        return out
    if spec.func == "count":
        out[:] = [int(c) for c in counts]
        return out
    sorted_vals = data[order]
    if spec.func == "sum":
        out[:] = list(np.add.reduceat(sorted_vals, starts))
    elif spec.func == "min":
        out[:] = list(np.minimum.reduceat(sorted_vals, starts))
    elif spec.func == "max":
        out[:] = list(np.maximum.reduceat(sorted_vals, starts))
    else:  # avg
        sums = np.add.reduceat(sorted_vals, starts).astype(np.float64)
        out[:] = [float(v) for v in sums / counts]
    return out


def union_all(tables: list[DataTable]) -> DataTable:
    """UNION ALL of result tables with identical column sets."""
    if not tables:
        return DataTable(name="union", columns={})
    names = tables[0].column_names
    columns = {
        name: np.concatenate([t.column(name) for t in tables]) for name in names
    }
    return DataTable(name="union", columns=columns)


def _aggregate_value(columns: dict[str, np.ndarray], spec: AggregateSpec,
                     rows: int):
    if spec.func == "count" and spec.column is None:
        return rows
    data = columns[spec.column.qualified]
    return _aggregate_over(data, np.arange(rows), spec)


def _aggregate_over(data: np.ndarray | None, member_rows: np.ndarray,
                    spec: AggregateSpec):
    if spec.func == "count":
        return int(len(member_rows))
    if data is None or len(member_rows) == 0:
        return None
    values = data[member_rows]
    if spec.func == "min":
        return values.min()
    if spec.func == "max":
        return values.max()
    if spec.func == "sum":
        return values.sum()
    return float(values.sum()) / len(values)
