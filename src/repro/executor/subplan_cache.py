"""Engine-level cross-policy subplan cache.

Every physical subtree that joins the same set of filtered relations with
the same join predicates produces the same multiset of rows, *regardless of
join order or physical operator choice*.  Because the late-materialization
executor represents intermediate results as row-id chunks (no payload
columns), a cached subtree result is also column-agnostic: any consumer can
gather whatever columns it needs from the cached row ids.

The :class:`SubplanCache` exploits both properties.  It is keyed by the
canonical subtree signature (see :meth:`repro.plan.physical.PlanNode.signature`):

``(frozenset of (table, alias, is_temp, filters) per scan,
   frozenset of join predicates)``

so QuerySplit, the plan-driven re-optimization baselines, and the
true-cardinality oracle all hit the same entries when they (re-)compute an
identical subtree -- even when their optimizers picked different join
orders.  The cache is *opt-in*: an :class:`~repro.executor.executor.Executor`
only consults it when one is passed at construction, and a workload driver
shares one instance across every policy/algorithm it runs.

Keying rules (see ARCHITECTURE.md for the full discussion):

* subtrees touching **temporary tables are never cached** -- temp names are
  recycled between queries, so their signatures are not stable;
* entries larger than ``max_rows`` are not cached (memory bound);
* entries are evicted LRU beyond ``max_entries``;
* every entry snapshots the ``data_epoch`` of the base tables it reads at
  put time; a lookup after any of them mutated drops the entry (counted in
  ``invalidated``), so served sessions never see pre-mutation rows.

A cache instance is bound to one loaded :class:`~repro.storage.database.Database`
(signatures name tables, not data): never share one across differently loaded
databases.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable

from repro.executor.chunk import Chunk
from repro.plan.expressions import JoinPredicate, Predicate
from repro.plan.logical import RelationRef
from repro.plan.physical import scan_signature  # noqa: F401  (re-exported)

#: Signature type: (frozenset of scan tuples, frozenset of join predicates).
Signature = tuple[frozenset, frozenset]


def subplan_signature(relations: Iterable[RelationRef],
                      filters: Iterable[Predicate],
                      join_predicates: Iterable[JoinPredicate]) -> Signature:
    """Canonical signature of a sub-join described logically.

    This mirrors :meth:`repro.plan.physical.PlanNode.signature` for callers
    (like the true-cardinality oracle) that reason about relation subsets
    rather than physical plan subtrees: each relation receives the filters it
    fully answers, and only join predicates internal to the subset are kept.
    """
    relations = tuple(relations)
    filters = tuple(filters)
    covered: set[str] = set()
    for relation in relations:
        covered.update(relation.covered_aliases)
    scans = frozenset(
        scan_signature(relation, tuple(
            pred for pred in filters
            if pred.aliases() <= relation.covered_aliases))
        for relation in relations)
    preds = frozenset(pred for pred in join_predicates
                      if all(alias in covered for alias in pred.aliases()))
    return (scans, preds)


def _touches_temp(signature: Signature) -> bool:
    return any(scan[3] for scan in signature[0])


def signature_tables(signature: Signature) -> frozenset[str]:
    """Base-table names a signature's scans read (temps excluded)."""
    return frozenset(scan[1] for scan in signature[0] if not scan[3])


class SubplanCache:
    """LRU cache of executed subtree results keyed by canonical signature.

    Memory is bounded three ways: per-entry rows (``max_rows``), entry count
    (``max_entries``), and *total retained bytes* across all entries
    (``max_bytes``) -- a chunk costs roughly 8 bytes per row per source
    relation, so a handful of wide 2M-row subtrees would otherwise dwarf the
    entry-count bound.

    The cache is **thread-safe**: every public operation (including the
    counter updates and the eviction loop inside :meth:`put`) runs under one
    internal lock, so the serving layer (:mod:`repro.serving`) can share a
    single instance across a pool of worker threads.  Cached chunks are
    treated as immutable by every consumer, so handing the same chunk to two
    concurrent executors is safe.  The byte accounting
    (``total_bytes == sum(per-entry bytes) <= max_bytes`` after any put)
    holds under arbitrary interleavings; ``tests/test_subplan_cache_concurrency.py``
    hammers exactly these invariants.
    """

    def __init__(self, max_entries: int = 256, max_rows: int = 2_000_000,
                 max_bytes: int = 512 * 2 ** 20):
        self.max_entries = max_entries
        self.max_rows = max_rows
        self.max_bytes = max_bytes
        self._entries: OrderedDict[Signature, Chunk] = OrderedDict()
        self._entry_bytes: dict[Signature, int] = {}
        #: Per-entry data-epoch snapshot: ((table, epoch), ...) recorded at
        #: put time.  A lookup whose tables have moved past their snapshot
        #: drops the entry instead of serving pre-mutation rows.
        self._entry_epochs: dict[Signature, tuple[tuple[str, int], ...]] = {}
        self._database = None
        self._lock = threading.RLock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.rejected = 0
        self.invalidated = 0

    def bind(self, database) -> None:
        """Bind this cache to one loaded database; reject any other.

        Signatures name tables, not data, so a cache reused against a
        *different* database instance would silently serve the old
        database's rows.  Every consumer (executor, oracle) binds on
        construction, turning that misuse into a loud error.  Session views
        (:meth:`repro.storage.database.Database.session_view`) of one loaded
        database expose the same data, so binding compares *origins*: every
        view of an already-bound database is accepted.
        """
        database = getattr(database, "origin", database)
        with self._lock:
            if self._database is None:
                self._database = database
            elif self._database is not database:
                raise ValueError(
                    "SubplanCache is already bound to a different Database "
                    "instance; use one cache per loaded database (or clear() a "
                    "cache before reusing it, after rebuilding its consumers)")

    @staticmethod
    def _chunk_bytes(chunk: Chunk) -> int:
        """Retained size: the row-id vectors kept alive beyond the tables."""
        if not chunk.sources:
            return chunk.num_rows * 8
        return sum(source.retained_bytes for source in chunk.sources)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, signature: Signature) -> Chunk | None:
        """Cached chunk for ``signature``, or None."""
        with self._lock:
            try:
                chunk = self._entries.get(signature)
            except TypeError:  # unhashable literal somewhere in a predicate
                return None
            if chunk is None:
                self.misses += 1
                return None
            if self._stale(signature):
                self._drop(signature)
                self.invalidated += 1
                self.misses += 1
                return None
            self._entries.move_to_end(signature)
            self.hits += 1
            return chunk

    def put(self, signature: Signature, chunk: Chunk) -> None:
        """Store a subtree result unless the keying rules forbid it."""
        cost = self._chunk_bytes(chunk)
        with self._lock:
            if (chunk.num_rows > self.max_rows or cost > self.max_bytes
                    or _touches_temp(signature)):
                self.rejected += 1
                return
            try:
                previous = self._entries.get(signature)
                self._entries[signature] = chunk
            except TypeError:
                self.rejected += 1
                return
            if previous is not None:
                self.total_bytes -= self._entry_bytes[signature]
            self._entry_bytes[signature] = cost
            self._entry_epochs[signature] = self._epoch_snapshot(signature)
            self.total_bytes += cost
            self._entries.move_to_end(signature)
            while (len(self._entries) > self.max_entries
                   or self.total_bytes > self.max_bytes):
                evicted_sig, _chunk = self._entries.popitem(last=False)
                self.total_bytes -= self._entry_bytes.pop(evicted_sig)
                self._entry_epochs.pop(evicted_sig, None)

    def peek(self, signature: Signature) -> Chunk | None:
        """Non-mutating lookup: no hit/miss counters, no LRU promotion.

        Used by read-only consumers (the true-cardinality oracle issues one
        probe per DP subset), so speculative probes neither distort the
        executor-reuse hit rate nor evict entries the executor would reuse.
        """
        with self._lock:
            try:
                chunk = self._entries.get(signature)
            except TypeError:
                return None
            if chunk is not None and self._stale(signature):
                # Read-only probe: report a miss without mutating the cache
                # (the next get()/put() on this signature cleans it up).
                return None
            return chunk

    def lookup_rows(self, signature: Signature) -> int | None:
        """Exact row count of a cached subtree (for cardinality probes)."""
        chunk = self.peek(signature)
        return None if chunk is None else chunk.num_rows

    # ------------------------------------------------------------------
    # Epoch-based invalidation (the dynamic-data subsystem)
    # ------------------------------------------------------------------
    def _epoch_snapshot(self, signature: Signature
                        ) -> tuple[tuple[str, int], ...]:
        if self._database is None:
            return ()
        return tuple((name, self._database.table_epoch(name))
                     for name in sorted(signature_tables(signature)))

    def _stale(self, signature: Signature) -> bool:
        if self._database is None:
            return False
        return any(self._database.table_epoch(name) != epoch
                   for name, epoch in self._entry_epochs.get(signature, ()))

    def _drop(self, signature: Signature) -> None:
        del self._entries[signature]
        self.total_bytes -= self._entry_bytes.pop(signature)
        self._entry_epochs.pop(signature, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry, reset the counters, and unbind the database."""
        with self._lock:
            self._entries.clear()
            self._entry_bytes.clear()
            self._entry_epochs.clear()
            self._database = None
            self.total_bytes = 0
            self.hits = 0
            self.misses = 0
            self.rejected = 0
            self.invalidated = 0

    def check_invariants(self) -> list[str]:
        """Every violated structural invariant (empty list = consistent).

        Taken under the lock, so a concurrent stress test can interleave
        checks with live traffic and still observe a consistent snapshot:
        the entry map and the byte ledger must track the same signatures,
        ``total_bytes`` must equal the ledger sum, and both budgets must
        hold whenever the cache is at rest.
        """
        with self._lock:
            problems: list[str] = []
            if set(self._entries) != set(self._entry_bytes):
                problems.append("entry map and byte ledger disagree on keys")
            if set(self._entries) != set(self._entry_epochs):
                problems.append("entry map and epoch ledger disagree on keys")
            ledger = sum(self._entry_bytes.values())
            if self.total_bytes != ledger:
                problems.append(
                    f"total_bytes={self.total_bytes} != ledger sum {ledger}")
            if self.total_bytes > self.max_bytes:
                problems.append(
                    f"total_bytes={self.total_bytes} exceeds budget {self.max_bytes}")
            if len(self._entries) > self.max_entries:
                problems.append(
                    f"{len(self._entries)} entries exceed max {self.max_entries}")
            return problems

    def __repr__(self) -> str:
        return (f"SubplanCache(entries={len(self._entries)}, "
                f"bytes={self.total_bytes}, hits={self.hits}, "
                f"misses={self.misses}, rejected={self.rejected}, "
                f"invalidated={self.invalidated})")
