"""Late-materialization chunks: selection-vector intermediates.

A :class:`Chunk` is the executor's intermediate-result representation.  It
does *not* store the payload columns of the rows it describes; it stores one
**row-id vector per input relation** (a selection vector into the underlying
columnar table) plus enough metadata to resolve any column on demand.  Joins
therefore only ever copy ``int64`` row ids, and real columns are gathered
from the base tables exactly once -- at the plan root, or when a join needs
its key columns.

This is the standard late-materialization design of vectorized engines
(DuckDB-style selection vectors): compared to the previous eager executor,
which re-copied every carried column at every join, a chunk costs
``8 * num_relations`` bytes per row regardless of how many (and how wide)
columns the query touches.

Two column-source kinds exist:

* :class:`TableSource` -- rows of a base or temporary :class:`DataTable`,
  addressed by a row-id vector (the late path);
* :class:`InlineSource` -- already-materialized arrays (produced by
  :func:`compact`, which the executor's *eager* compatibility mode uses to
  reproduce the old copy-per-join behaviour for benchmarking).

All gathers are funneled through a :class:`MaterializationStats` object so
the late-materialization microbenchmark can compare bytes materialized by
the two modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.plan.expressions import ColumnRef
from repro.plan.logical import RelationRef
from repro.storage.table import DataTable


@dataclass
class MaterializationStats:
    """Byte/column accounting of everything an execution materialized."""

    gathered_bytes: int = 0
    gathered_columns: int = 0

    def count(self, array: np.ndarray) -> None:
        """Record one materialized array (gathered column or copied vector)."""
        self.gathered_columns += 1
        if array.dtype == object:
            # Same accounting convention as DataTable.memory_bytes: pointer
            # plus an assumed 24-byte average string payload.
            self.gathered_bytes += array.nbytes + 24 * len(array)
        else:
            self.gathered_bytes += array.nbytes


class ColumnSource:
    """One relation's (or pre-materialized fragment's) rows inside a chunk."""

    aliases: frozenset[str]

    @property
    def num_rows(self) -> int:
        raise NotImplementedError

    def covers(self, alias: str) -> bool:
        """True if this source provides the columns of ``alias``."""
        return alias in self.aliases

    def gather(self, ref: ColumnRef,
               stats: MaterializationStats | None = None) -> np.ndarray:
        """Materialize one column for the rows this source selects."""
        raise NotImplementedError

    def take(self, indices: np.ndarray,
             stats: MaterializationStats | None = None) -> "ColumnSource":
        """A new source selecting ``self``'s rows at ``indices``."""
        raise NotImplementedError

    def rowid_columns(self) -> dict[str, np.ndarray]:
        """Synthetic ``alias.__rowid`` columns representing this source's rows.

        Used when nothing above the plan needs any real column of the source
        but the row multiplicity must still be represented in the output.
        """
        raise NotImplementedError

    @property
    def retained_bytes(self) -> int:
        """Bytes this source keeps alive beyond the stored tables."""
        raise NotImplementedError


class TableSource(ColumnSource):
    """Rows of a base or temporary table addressed by a row-id vector.

    ``row_ids=None`` is the *identity* selection (an unfiltered scan): every
    table row in order.  Identity sources gather columns by reference (zero
    copy) and turn the first ``take`` into the index vector itself, so an
    unfiltered scan of a large table costs nothing until a filter or join
    actually selects from it.
    """

    __slots__ = ("relation", "table", "row_ids", "aliases")

    def __init__(self, relation: RelationRef, table: DataTable,
                 row_ids: np.ndarray | None = None):
        self.relation = relation
        self.table = table
        self.row_ids = row_ids
        self.aliases = relation.covered_aliases

    @property
    def num_rows(self) -> int:
        if self.row_ids is None:
            return self.table.num_rows
        return len(self.row_ids)

    def _storage_name(self, ref: ColumnRef) -> str:
        # Temporary tables store columns under their original qualified
        # names; base tables use bare column names.
        return ref.qualified if self.relation.is_temp else ref.column

    def gather(self, ref: ColumnRef,
               stats: MaterializationStats | None = None) -> np.ndarray:
        if self.row_ids is None:
            # Identity selection: hand out the stored column by reference
            # (decoded -- and cached on the table -- when it is
            # dictionary-encoded, so consumers always see real values).
            return self.table.column_values(self._storage_name(ref))
        data = self.table.gather(self._storage_name(ref), self.row_ids)
        if stats is not None:
            stats.count(data)
        return data

    def take(self, indices: np.ndarray,
             stats: MaterializationStats | None = None) -> "TableSource":
        if self.row_ids is None:
            # arange[indices] == indices: reuse the (read-only) index vector.
            return TableSource(self.relation, self.table, indices)
        row_ids = self.row_ids[indices]
        if stats is not None:
            stats.count(row_ids)
        return TableSource(self.relation, self.table, row_ids)

    def rowid_columns(self) -> dict[str, np.ndarray]:
        if self.row_ids is None:
            return {f"{self.relation.alias}.__rowid":
                    np.arange(self.table.num_rows, dtype=np.int64)}
        return {f"{self.relation.alias}.__rowid": self.row_ids}

    @property
    def retained_bytes(self) -> int:
        return 0 if self.row_ids is None else self.row_ids.nbytes

    def __repr__(self) -> str:
        return (f"TableSource({self.relation.alias}, rows={self.num_rows})")


class InlineSource(ColumnSource):
    """Already-materialized columns keyed by qualified name."""

    __slots__ = ("aliases", "columns", "_num_rows")

    def __init__(self, aliases: frozenset[str], columns: dict[str, np.ndarray],
                 num_rows: int):
        self.aliases = aliases
        self.columns = columns
        self._num_rows = num_rows

    @property
    def num_rows(self) -> int:
        return self._num_rows

    def gather(self, ref: ColumnRef,
               stats: MaterializationStats | None = None) -> np.ndarray:
        # The data is already materialized: handing out the stored array
        # costs nothing, exactly like the old eager executor reusing its
        # carried column dict.
        return self.columns[ref.qualified]

    def take(self, indices: np.ndarray,
             stats: MaterializationStats | None = None) -> "InlineSource":
        taken: dict[str, np.ndarray] = {}
        for name, arr in self.columns.items():
            out = arr[indices]
            if stats is not None:
                stats.count(out)
            taken[name] = out
        return InlineSource(self.aliases, taken, len(indices))

    def rowid_columns(self) -> dict[str, np.ndarray]:
        return {name: arr for name, arr in self.columns.items()
                if name.endswith(".__rowid")}

    @property
    def retained_bytes(self) -> int:
        return sum(arr.nbytes for arr in self.columns.values())

    def __repr__(self) -> str:
        return f"InlineSource({sorted(self.aliases)}, rows={self.num_rows})"


@dataclass
class Chunk:
    """A late-materialized intermediate result (one source per relation)."""

    sources: tuple[ColumnSource, ...]
    num_rows: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            self.num_rows = self.sources[0].num_rows if self.sources else 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def aliases(self) -> frozenset[str]:
        """All original query aliases this chunk's rows cover."""
        result: set[str] = set()
        for source in self.sources:
            result.update(source.aliases)
        return frozenset(result)

    def covers(self, alias: str) -> bool:
        return any(source.covers(alias) for source in self.sources)

    def source_for(self, alias: str) -> ColumnSource:
        for source in self.sources:
            if source.covers(alias):
                return source
        raise KeyError(f"chunk does not cover alias {alias!r}")

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, ref: ColumnRef,
               stats: MaterializationStats | None = None) -> np.ndarray:
        """Materialize one column for every row of the chunk."""
        return self.source_for(ref.alias).gather(ref, stats)

    def materialize(self, refs: tuple[ColumnRef, ...],
                    stats: MaterializationStats | None = None
                    ) -> dict[str, np.ndarray]:
        """Gather ``refs`` (those the chunk covers) into a column dict."""
        return {ref.qualified: self.column(ref, stats) for ref in refs
                if self.covers(ref.alias)}

    # ------------------------------------------------------------------
    # Row selection
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray,
             stats: MaterializationStats | None = None) -> "Chunk":
        """A new chunk containing this chunk's rows at ``indices``."""
        return Chunk(tuple(source.take(indices, stats)
                           for source in self.sources), len(indices))


def merge_chunks(left: Chunk, left_idx: np.ndarray,
                 right: Chunk, right_idx: np.ndarray,
                 stats: MaterializationStats | None = None) -> Chunk:
    """Combine the matched rows of a join into one chunk.

    Only row-id vectors (or, for eager inline sources, the materialized
    columns) are copied; no base-table column is touched.
    """
    sources = tuple(source.take(left_idx, stats) for source in left.sources)
    sources += tuple(source.take(right_idx, stats) for source in right.sources)
    return Chunk(sources, len(left_idx))


def materialize_default(chunk: Chunk, needed: frozenset[ColumnRef],
                        stats: MaterializationStats | None = None
                        ) -> dict[str, np.ndarray]:
    """Materialize every needed column the chunk covers into a column dict.

    A relation none of whose columns are needed contributes a synthetic
    ``alias.__rowid`` column so its row multiplicity is still represented
    (pure existence joins); already-inline sources pass their columns
    through unchanged.  Shared by the executor's default (projection-less)
    output path and by :func:`compact`, so the late and eager modes can
    never diverge on output semantics.
    """
    columns: dict[str, np.ndarray] = {}
    for source in chunk.sources:
        if isinstance(source, InlineSource):
            columns.update(source.columns)
            continue
        covered = sorted((ref for ref in needed if source.covers(ref.alias)),
                         key=lambda ref: ref.qualified)
        if covered:
            for ref in covered:
                columns[ref.qualified] = source.gather(ref, stats)
        else:
            columns.update(source.rowid_columns())
    return columns


def compact(chunk: Chunk, needed: frozenset[ColumnRef],
            stats: MaterializationStats | None = None) -> Chunk:
    """Eagerly materialize ``chunk`` into a single inline source.

    This reproduces the previous executor's behaviour -- gather every carried
    (needed) column at every operator boundary -- and exists so the eager
    execution mode stays available for the materialization microbenchmark.
    """
    columns = materialize_default(chunk, needed, stats)
    return Chunk((InlineSource(chunk.aliases, columns, chunk.num_rows),),
                 chunk.num_rows)
