"""Fused predicate kernels and join-side semijoin/Bloom pruning.

Two pieces of the compiled scan/join hot path live here:

:class:`PredicateCompiler`
    Turns a scan's conjunctive predicate list into a **single-pass
    evaluator**.  Predicates are ordered by estimated selectivity
    (cheap-and-selective first), the first one is evaluated vectorized over
    the full row range, and every subsequent predicate is evaluated only on
    the rows that survived so far (gather-then-compare on the shrinking
    candidate set, short-circuiting when it empties).  Because the filters
    form a conjunction, reordering cannot change the result: the emitted
    row-id vector is bit-identical to the naive all-rows-per-predicate
    loop, while the work drops from ``num_predicates`` full column passes
    to one full pass plus passes over ever-smaller survivor sets.

:class:`SemiJoinPredicate` / :class:`BloomFilter`
    The probe-side pruning filter a hash join pushes into its probe scan:
    membership of the scan's join-key column in the build side's key set,
    represented exactly (a sorted unique array) when the build side is
    small, or approximately (a Bloom filter, no false negatives) when it
    is large.  The predicate subclasses :class:`Between` with the build
    keys' min/max as bounds, so the existing zone-map machinery prunes
    whole probe blocks outside the build key range for free.

This module deliberately imports neither the operators nor the executor
(they import *it*); execution counters are duck-typed on the ``ctx``
object threaded through :meth:`PredicateCompiler.evaluate_range`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.plan.expressions import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNotNull,
    OrPredicate,
    Predicate,
    StringContains,
    StringPrefix,
)
from repro.storage.dictionary import CodeMaskPredicate

#: Probe tables smaller than this skip semijoin pushdown entirely: the
#: full scan is already cheap and the filter build would dominate.
MIN_PROBE_ROWS = 4096

#: Build sides larger than this (rows) skip semijoin pushdown: collecting
#: and uniquing the keys would cost more than the probe saves.
MAX_BUILD_ROWS = 500_000

#: Distinct build keys up to this count use the exact sorted-array filter;
#: beyond it a Bloom filter bounds the memory and probe cost.
EXACT_THRESHOLD = 16_384


# ----------------------------------------------------------------------
# Selectivity-ordered fused evaluation
# ----------------------------------------------------------------------
def selectivity_rank(predicate: Predicate) -> float:
    """Heuristic selectivity estimate in [0, 1]; lower evaluates first.

    Only the *relative* order matters.  The ranks follow the classic
    textbook defaults (equality is rare, ``!=`` and NOT NULL are common)
    with two data-driven refinements: a code-mask predicate knows exactly
    what fraction of the dictionary it matches, and a semijoin filter is
    assumed fairly selective (that is why the join pushed it down) but
    costs a membership probe, so plain equality still goes first.
    """
    if isinstance(predicate, SemiJoinPredicate):
        return 0.25
    if isinstance(predicate, CodeMaskPredicate):
        return predicate.match_fraction
    if isinstance(predicate, Comparison):
        if predicate.op == "=":
            return 0.05
        if predicate.op == "!=":
            return 0.9
        return 0.35
    if isinstance(predicate, Between):
        return 0.2
    if isinstance(predicate, StringPrefix):
        return 0.1
    if isinstance(predicate, InList):
        return 0.15
    if isinstance(predicate, StringContains):
        return 0.5
    if isinstance(predicate, IsNotNull):
        return 0.95
    if isinstance(predicate, OrPredicate):
        return min(1.0, sum(selectivity_rank(child)
                            for child in predicate.children))
    return 0.5


class PredicateCompiler:
    """A scan conjunction compiled into a single-pass fused evaluator."""

    __slots__ = ("predicates",)

    def __init__(self, filters):
        filters = tuple(filters)
        # Stable (rank, original position) order: ties keep the pushed-down
        # order, so the compiled plan is deterministic.
        order = sorted(range(len(filters)),
                       key=lambda i: (selectivity_rank(filters[i]), i))
        self.predicates = tuple(filters[i] for i in order)

    def evaluate_range(self, resolve, length: int, ctx=None) -> np.ndarray:
        """Row positions (ascending ``int64``) satisfying the conjunction.

        ``resolve`` maps a :class:`ColumnRef` to the column slice covering
        the ``length`` rows under evaluation.  ``ctx`` (optional) receives
        the fused-pass counters: ``fused_rows_touched`` accumulates the
        candidate-set size each predicate actually evaluated over, and
        ``semijoin_pruned_rows`` the rows eliminated by pushed-down
        semijoin filters.
        """
        first = self.predicates[0]
        mask = np.asarray(first.evaluate(resolve), dtype=bool)
        positions = np.nonzero(mask)[0].astype(np.int64, copy=False)
        if ctx is not None:
            ctx.fused_rows_touched += length
            if isinstance(first, SemiJoinPredicate):
                ctx.semijoin_pruned_rows += length - positions.size
        for predicate in self.predicates[1:]:
            if positions.size == 0:
                break
            before = positions.size
            mask = np.asarray(
                predicate.evaluate(lambda ref: resolve(ref)[positions]),
                dtype=bool)
            positions = positions[mask]
            if ctx is not None:
                ctx.fused_rows_touched += before
                if isinstance(predicate, SemiJoinPredicate):
                    ctx.semijoin_pruned_rows += before - positions.size
        return positions


# ----------------------------------------------------------------------
# Join-side semijoin / Bloom pruning
# ----------------------------------------------------------------------
class BloomFilter:
    """Vectorized blocked Bloom filter over integer keys (no false negatives).

    Two multiply-xorshift hashes into a power-of-two bit array of roughly
    ``bits_per_key`` bits per distinct key (false-positive rate a few
    percent, which is plenty: the filter only pre-prunes rows the hash
    join would reject anyway).
    """

    __slots__ = ("num_bits", "words")

    _MULTIPLIERS = (np.uint64(0x9E3779B97F4A7C15),
                    np.uint64(0xC2B2AE3D27D4EB4F))

    def __init__(self, keys: np.ndarray, bits_per_key: int = 10):
        target = max(64, len(keys) * bits_per_key)
        self.num_bits = 1 << int(np.ceil(np.log2(target)))
        self.words = np.zeros(self.num_bits >> 6, dtype=np.uint64)
        one = np.uint64(1)
        six = np.uint64(6)
        low = np.uint64(63)
        for h in self._hashes(keys):
            # bitwise_or.at: duplicate word indices must all land.
            np.bitwise_or.at(self.words, (h >> six).astype(np.int64),
                             one << (h & low))

    def _hashes(self, keys: np.ndarray):
        x = np.ascontiguousarray(keys, dtype=np.int64).view(np.uint64)
        shift = np.uint64(33)
        mask = np.uint64(self.num_bits - 1)
        for mult in self._MULTIPLIERS:
            h = x * mult
            h = h ^ (h >> shift)
            yield h & mask

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership mask (may report false positives, never misses)."""
        result = np.ones(len(keys), dtype=bool)
        one = np.uint64(1)
        six = np.uint64(6)
        low = np.uint64(63)
        for h in self._hashes(keys):
            bits = self.words[(h >> six).astype(np.int64)] >> (h & low)
            result &= (bits & one).astype(bool)
        return result

    @property
    def memory_bytes(self) -> int:
        return int(self.words.nbytes)


@dataclass(frozen=True, eq=False)
class SemiJoinPredicate(Between):
    """Probe-side join-key membership in the build side's key set.

    Subclasses :class:`Between` with the build keys' min/max as bounds so
    zone maps prune probe blocks outside the key range through the
    existing numeric path (an empty build side uses the unsatisfiable
    ``low=0, high=-1`` range, pruning every block).  Exactly one of
    ``values`` (sorted unique keys) and ``bloom`` is set.

    Instances are synthetic: they are pushed into a scan as *extra*
    filters at execution time and never appear in plan-node filter lists
    (so plan signatures, costing, and the subplan cache never see them).
    """

    values: np.ndarray = None
    bloom: BloomFilter = None

    def evaluate(self, resolve) -> np.ndarray:
        keys = resolve(self.column)
        if self.values is not None:
            sorted_keys = self.values
            if len(sorted_keys) == 0:
                return np.zeros(len(keys), dtype=bool)
            pos = np.searchsorted(sorted_keys, keys)
            np.minimum(pos, len(sorted_keys) - 1, out=pos)
            return sorted_keys[pos] == keys
        mask = (keys >= self.low) & (keys <= self.high)
        if mask.any():
            mask[mask] = self.bloom.contains(keys[mask])
        return mask


def build_semijoin_predicate(ref: ColumnRef,
                             build_keys: np.ndarray) -> SemiJoinPredicate:
    """Build the pruning predicate for one join key from the build side."""
    if len(build_keys) == 0:
        # Unsatisfiable Between range: zone maps prune every probe block.
        return SemiJoinPredicate(column=ref, low=0, high=-1,
                                 values=np.empty(0, dtype=np.int64))
    unique = np.unique(build_keys)
    low, high = int(unique[0]), int(unique[-1])
    if len(unique) <= EXACT_THRESHOLD:
        return SemiJoinPredicate(column=ref, low=low, high=high, values=unique)
    return SemiJoinPredicate(column=ref, low=low, high=high,
                             bloom=BloomFilter(unique))
