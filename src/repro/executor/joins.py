"""Low-level vectorized equi-join primitives.

These helpers compute the matching row-index pairs of an equi-join between
two key arrays without materializing a hash table in Python: both sides are
sorted once and matched with ``searchsorted``, which keeps the whole join in
numpy.  They are shared by the executor's hash / merge / index nested-loop
join operators and by the true-cardinality oracle.
"""

from __future__ import annotations

import numpy as np

#: Hard cap on the number of matches a single equi-join may materialize.
#: Joins beyond this are the Python-engine analogue of the paper's 1000 s
#: query timeout: the run is aborted and reported as timed out.
MAX_JOIN_RESULT_ROWS = 40_000_000


class JoinOverflowError(RuntimeError):
    """Raised when an equi-join would materialize more rows than the cap."""


class ProbeSide:
    """The build side of an equi-join, sorted once and shared read-only.

    Building it is the partial/merge decomposition point of the hash
    join: after the one-time stable sort, any contiguous slice of the
    probe keys can be matched independently via :func:`probe_range`, and
    concatenating the per-slice results in slice order is bit-identical
    to the whole-input :func:`equi_join_indices` call (the sort fixes the
    right-index order within each key run, and the left order is the
    slice order itself).  The arrays are never written after
    construction, so morsel worker threads share one instance freely.
    """

    __slots__ = ("order", "sorted_keys")

    def __init__(self, right_keys: np.ndarray):
        self.order = np.argsort(right_keys, kind="stable")
        self.sorted_keys = right_keys[self.order]

    def __len__(self) -> int:
        return len(self.sorted_keys)


def probe_range(side: ProbeSide, left_keys: np.ndarray,
                start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
    """Matches of ``left_keys[start:stop]`` against a shared build side.

    Returns ``(left_idx, right_idx)`` with *global* left indices (already
    offset by ``start``), so ordered concatenation over a partition of
    ``[0, len(left_keys))`` reproduces the whole-input join verbatim.
    A single range producing more than :data:`MAX_JOIN_RESULT_ROWS`
    matches raises :class:`JoinOverflowError` before materializing them;
    the caller additionally checks the cap on the merged total.
    """
    keys = left_keys[start:stop] if (start, stop) != (0, len(left_keys)) \
        else left_keys
    lo = np.searchsorted(side.sorted_keys, keys, side="left")
    hi = np.searchsorted(side.sorted_keys, keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if total > MAX_JOIN_RESULT_ROWS:
        raise JoinOverflowError(
            f"equi-join would produce {total} rows "
            f"(cap {MAX_JOIN_RESULT_ROWS}); aborting the query")

    left_idx = np.repeat(np.arange(start, stop, dtype=np.int64), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    right_sorted_pos = np.repeat(lo, counts) + within
    right_idx = side.order[right_sorted_pos]
    return left_idx, right_idx


def equi_join_indices(left_keys: np.ndarray,
                      right_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row indices ``(left_idx, right_idx)`` of all equi-join matches.

    The result enumerates every pair ``(i, j)`` with
    ``left_keys[i] == right_keys[j]``.
    """
    if len(left_keys) == 0 or len(right_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    # Sort the right side once, then locate the matching run of every left key.
    return probe_range(ProbeSide(right_keys), left_keys, 0, len(left_keys))


def multi_key_equi_join(left_keys: list[np.ndarray],
                        right_keys: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join on one or more key columns (conjunction of equalities)."""
    if len(left_keys) != len(right_keys) or not left_keys:
        raise ValueError("both sides must provide the same, non-zero number of keys")
    if len(left_keys) == 1:
        return equi_join_indices(left_keys[0], right_keys[0])
    left_combined, right_combined = combine_key_pair(left_keys, right_keys)
    return equi_join_indices(left_combined, right_combined)


#: Largest composite code value combine_key_pair lets the running encoding
#: reach before it re-compresses the codes (conservatively half of int64).
_MAX_COMBINED_CODE = 2 ** 62


def combine_key_pair(left_keys: list[np.ndarray],
                     right_keys: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Encode multi-column keys of both join sides into one shared code space.

    Both sides of every key column are uniquified *together*, so equal values
    on the two sides receive the same code and the composite codes are
    directly comparable.

    The running ``code * span + inverse`` encoding can overflow int64 when
    the per-column distinct-value counts multiply up (many key columns, or a
    few very high-cardinality ones).  Whenever the next extension would
    exceed the safe range, the combined codes of *both* sides are
    re-uniquified into a dense range first -- equal composites stay equal, so
    the join semantics are unchanged while the magnitude resets to at most
    the number of distinct composites seen so far.
    """
    n_left = len(left_keys[0])
    left_combined = np.zeros(n_left, dtype=np.int64)
    right_combined = np.zeros(len(right_keys[0]), dtype=np.int64)
    for left, right in zip(left_keys, right_keys):
        merged = np.concatenate([left, right])
        _, inverse = np.unique(merged, return_inverse=True)
        span = int(inverse.max()) + 1 if len(inverse) else 1
        current_max = 0
        if len(left_combined):
            current_max = max(current_max, int(left_combined.max()))
        if len(right_combined):
            current_max = max(current_max, int(right_combined.max()))
        if current_max and span > _MAX_COMBINED_CODE // (current_max + 1):
            both = np.concatenate([left_combined, right_combined])
            _, dense = np.unique(both, return_inverse=True)
            left_combined = dense[:n_left].astype(np.int64)
            right_combined = dense[n_left:].astype(np.int64)
        left_combined = left_combined * span + inverse[:n_left]
        right_combined = right_combined * span + inverse[n_left:]
    return left_combined, right_combined


def join_result_size(left_keys: np.ndarray, right_keys: np.ndarray) -> int:
    """Exact number of matches of an equi-join without materializing them."""
    if len(left_keys) == 0 or len(right_keys) == 0:
        return 0
    left_vals, left_counts = np.unique(left_keys, return_counts=True)
    right_vals, right_counts = np.unique(right_keys, return_counts=True)
    # Match the two distinct-value lists.
    pos = np.searchsorted(right_vals, left_vals)
    pos_clipped = np.clip(pos, 0, len(right_vals) - 1)
    matches = right_vals[pos_clipped] == left_vals
    return int(np.sum(left_counts[matches] * right_counts[pos_clipped[matches]]))


