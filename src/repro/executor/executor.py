"""Physical plan execution (late-materialization engine).

The executor walks a :class:`repro.plan.physical.PhysicalPlan` bottom-up and
evaluates every node with the operator pipeline of
:mod:`repro.executor.operators`.  Intermediate results are
:class:`~repro.executor.chunk.Chunk` objects -- one base-table row-id vector
per input relation -- so joins only ever copy ``int64`` selection vectors.
Real columns are gathered from the stored tables exactly once: join keys
when a join needs them, and output/aggregate columns at the plan root.

Two caches sit around the pipeline:

* the per-plan ``cache`` argument (keyed by ``id(node)``) lets the
  plan-driven re-optimization baselines execute one physical plan
  incrementally, subtree by subtree, without recomputing finished subtrees;
* an optional engine-level :class:`~repro.executor.subplan_cache.SubplanCache`
  (keyed by the *canonical* subtree signature) shares executed subtrees
  across plans, queries, and whole re-optimization policies.

Every operator records its actual output cardinality and wall-clock time in
the plan node (``actual_rows`` / ``actual_time``), which is the runtime
feedback the re-optimization algorithms compare against the estimates; the
same per-operator times are returned in
:attr:`ExecutionResult.operator_times`.

See ARCHITECTURE.md for how this layer fits between storage and the
re-optimization drivers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.executor.aggregates import (  # re-exported for compatibility
    _aggregate_over,
    _aggregate_value,
    _num_rows,
    _scalar_aggregate,
    group_aggregate,
    union_all,
)
from repro.executor.chunk import (
    Chunk,
    MaterializationStats,
    compact,
    materialize_default,
)
from repro.executor.operators import (  # noqa: F401  (re-exported)
    MAX_CROSS_PRODUCT_ROWS,
    Aggregate,
    CrossProduct,
    ExecContext,
    ExecutionError,
    HashJoin,
    IndexNLJoin,
    Scan,
)
from repro.executor.subplan_cache import SubplanCache
from repro.plan.expressions import ColumnRef
from repro.plan.physical import JoinMethod, JoinNode, PhysicalPlan, PlanNode, ScanNode
from repro.storage.database import Database
from repro.storage.table import DataTable

__all__ = [
    "Executor", "ExecutionResult", "ExecutionError", "MAX_CROSS_PRODUCT_ROWS",
    "group_aggregate", "union_all",
]


@dataclass
class ExecutionResult:
    """Outcome of executing one physical plan."""

    table: DataTable
    join_rows: int
    wall_time: float
    #: Wall-clock time per operator (label -> inclusive subtree seconds),
    #: mirroring the ``actual_time`` recorded on each plan node.
    operator_times: dict[str, float] = field(default_factory=dict)
    #: Bytes of column data / selection vectors materialized while executing
    #: (the quantity the late-materialization refactor minimizes).
    materialized_bytes: int = 0
    #: Zone-map pruning accounting across every filtered scan of the plan:
    #: storage blocks considered, and blocks skipped without reading data.
    scan_blocks_total: int = 0
    scan_blocks_pruned: int = 0

    @property
    def scan_pruning_ratio(self) -> float:
        """Fraction of considered storage blocks the zone maps pruned."""
        if self.scan_blocks_total == 0:
            return 0.0
        return self.scan_blocks_pruned / self.scan_blocks_total

    @property
    def num_rows(self) -> int:
        """Rows in the final output."""
        return self.table.num_rows

    @property
    def memory_bytes(self) -> int:
        """Memory footprint of the final output."""
        return self.table.memory_bytes


class Executor:
    """Evaluates physical plans against a :class:`Database`.

    Parameters
    ----------
    database:
        The database to execute against.
    subplan_cache:
        Optional engine-level cache shared across plans and algorithms;
        executed subtrees are stored/looked up by canonical signature.
    materialization:
        ``"late"`` (default) keeps intermediates as row-id chunks;
        ``"eager"`` re-materializes every carried column at every operator,
        reproducing the old executor's behaviour for benchmarking.
    """

    def __init__(self, database: Database,
                 subplan_cache: SubplanCache | None = None,
                 materialization: str = "late"):
        if materialization not in ("late", "eager"):
            raise ValueError(f"unknown materialization mode {materialization!r}")
        self.database = database
        self.subplan_cache = subplan_cache
        if subplan_cache is not None:
            subplan_cache.bind(database)
        self.materialization = materialization

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self, plan: PhysicalPlan,
                extra_columns: tuple[ColumnRef, ...] = (),
                cache: dict[int, Chunk] | None = None) -> ExecutionResult:
        """Execute ``plan`` and return its result.

        ``extra_columns`` lists columns that must survive into the output even
        though the plan's own projection does not mention them (used when
        materializing subquery results that later subqueries will join on).

        ``cache`` optionally maps ``id(plan_node)`` to previously computed
        chunks; the plan-driven re-optimization baselines use it to execute a
        physical plan incrementally (subtree by subtree) without recomputing
        already-executed subtrees.
        """
        start = time.perf_counter()
        stats = MaterializationStats()
        needed = frozenset(self._needed_columns(plan, extra_columns))
        ctx = ExecContext(database=self.database, stats=stats, needed=needed,
                          eager=self.materialization == "eager")
        chunk = self._execute_node(plan.root, ctx, cache)
        join_rows = chunk.num_rows

        output_refs = tuple(dict.fromkeys(plan.output_columns + tuple(extra_columns)))
        if plan.aggregates:
            table = Aggregate(plan).execute(ctx, chunk)
        else:
            if output_refs:
                columns = {ref.qualified: chunk.column(ref, stats)
                           for ref in output_refs if chunk.covers(ref.alias)}
            else:
                columns = materialize_default(chunk, needed, stats)
            table = DataTable(name=plan.query_name, columns=columns)
        wall = time.perf_counter() - start
        return ExecutionResult(table=table, join_rows=join_rows, wall_time=wall,
                               operator_times=dict(ctx.operator_times),
                               materialized_bytes=stats.gathered_bytes,
                               scan_blocks_total=ctx.scan_blocks_total,
                               scan_blocks_pruned=ctx.scan_blocks_pruned)

    # ------------------------------------------------------------------
    # Node evaluation
    # ------------------------------------------------------------------
    def _execute_node(self, node: PlanNode, ctx: ExecContext,
                      cache: dict[int, Chunk] | None = None) -> Chunk:
        if cache is not None and id(node) in cache:
            return cache[id(node)]

        signature = None
        if self.subplan_cache is not None and not ctx.eager:
            # Eager mode neither reads nor writes the subplan cache: a cached
            # late chunk would short-circuit the copy-per-operator behaviour
            # the mode exists to measure.
            try:
                signature = node.signature()
            except TypeError:
                # A filter predicate holds an unhashable literal: this
                # subtree simply cannot participate in signature caching.
                signature = None
        if signature is not None:
            hit = self.subplan_cache.get(signature)
            if hit is not None:
                node.actual_rows = hit.num_rows
                node.actual_time = 0.0
                label = f"Cached[{'+'.join(sorted(node.covered_aliases()))}]"
                ctx.operator_times[label] = 0.0
                if cache is not None:
                    cache[id(node)] = hit
                return hit

        start = time.perf_counter()
        if isinstance(node, ScanNode):
            operator = Scan(node)
            chunk = operator.execute(ctx)
        elif isinstance(node, JoinNode):
            if node.method is JoinMethod.INDEX_NL and isinstance(node.right, ScanNode):
                operator = IndexNLJoin(node)
                left = self._execute_node(node.left, ctx, cache)
                chunk = operator.execute(ctx, left)
            else:
                left = self._execute_node(node.left, ctx, cache)
                right = self._execute_node(node.right, ctx, cache)
                operator = HashJoin(node) if node.predicates else CrossProduct(node)
                chunk = operator.execute(ctx, left, right)
        else:
            raise ExecutionError(f"unsupported plan node {type(node).__name__}")

        if ctx.eager:
            chunk = compact(chunk, ctx.needed, ctx.stats)

        node.actual_rows = chunk.num_rows
        node.actual_time = time.perf_counter() - start
        ctx.operator_times[operator.label] = node.actual_time
        if cache is not None:
            cache[id(node)] = chunk
        if signature is not None:
            self.subplan_cache.put(signature, chunk)
        return chunk

    # ------------------------------------------------------------------
    # Projection push-down support
    # ------------------------------------------------------------------
    @staticmethod
    def _needed_columns(plan: PhysicalPlan,
                        extra_columns: tuple[ColumnRef, ...]) -> set[ColumnRef]:
        needed: set[ColumnRef] = set(plan.output_columns)
        needed.update(extra_columns)
        needed.update(plan.group_by)
        for spec in plan.aggregates:
            if spec.column is not None:
                needed.add(spec.column)

        def visit(node: PlanNode) -> None:
            if isinstance(node, JoinNode):
                for pred in node.predicates:
                    needed.add(pred.left)
                    needed.add(pred.right)
            for child in node.children():
                visit(child)

        visit(plan.root)
        return needed
