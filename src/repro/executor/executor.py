"""Physical plan execution.

The executor walks a :class:`repro.plan.physical.PhysicalPlan` bottom-up and
evaluates every operator with vectorized numpy kernels.  Intermediate results
are dictionaries mapping *qualified* column names (``"t.id"``) to arrays, so
columns of different relations never collide and materialized temporaries can
be re-used as relations in later subqueries without renaming.

Only the columns actually needed above each operator (output columns, join
keys, filter columns) are carried, mirroring projection push-down.

Every operator records its actual output cardinality and wall-clock time in
the plan node (``actual_rows`` / ``actual_time``), which is the runtime
feedback the re-optimization algorithms compare against the estimates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.executor.joins import multi_key_equi_join
from repro.plan.expressions import ColumnRef
from repro.plan.logical import AggregateSpec
from repro.plan.physical import JoinMethod, JoinNode, PhysicalPlan, PlanNode, ScanNode
from repro.storage.database import Database
from repro.storage.table import DataTable

#: Guard against accidental cross-product explosions in the executor.
MAX_CROSS_PRODUCT_ROWS = 50_000_000


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed (e.g. a runaway cross product)."""


@dataclass
class ExecutionResult:
    """Outcome of executing one physical plan."""

    table: DataTable
    join_rows: int
    wall_time: float
    operator_times: dict[str, float] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        """Rows in the final output."""
        return self.table.num_rows

    @property
    def memory_bytes(self) -> int:
        """Memory footprint of the final output."""
        return self.table.memory_bytes


class Executor:
    """Evaluates physical plans against a :class:`Database`."""

    def __init__(self, database: Database):
        self.database = database

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self, plan: PhysicalPlan,
                extra_columns: tuple[ColumnRef, ...] = (),
                cache: dict[int, dict[str, np.ndarray]] | None = None) -> ExecutionResult:
        """Execute ``plan`` and return its result.

        ``extra_columns`` lists columns that must survive into the output even
        though the plan's own projection does not mention them (used when
        materializing subquery results that later subqueries will join on).

        ``cache`` optionally maps ``id(plan_node)`` to previously computed
        results; the plan-driven re-optimization baselines use it to execute a
        physical plan incrementally (subtree by subtree) without recomputing
        already-executed subtrees.
        """
        start = time.perf_counter()
        needed = self._needed_columns(plan, extra_columns)
        columns = self._execute_node(plan.root, needed, cache)
        join_rows = _num_rows(columns)

        output_refs = tuple(dict.fromkeys(plan.output_columns + tuple(extra_columns)))
        if plan.aggregates and not plan.group_by:
            table = _scalar_aggregate(columns, plan.aggregates)
        elif plan.aggregates:
            table = group_aggregate(columns, plan.group_by, plan.aggregates)
        else:
            refs = output_refs or tuple(
                _ref_from_qualified(name) for name in columns)
            table = DataTable(
                name=plan.query_name,
                columns={ref.qualified: columns[ref.qualified] for ref in refs
                         if ref.qualified in columns},
            )
        wall = time.perf_counter() - start
        return ExecutionResult(table=table, join_rows=join_rows, wall_time=wall)

    # ------------------------------------------------------------------
    # Node evaluation
    # ------------------------------------------------------------------
    def _execute_node(self, node: PlanNode, needed: set[ColumnRef],
                      cache: dict[int, dict[str, np.ndarray]] | None = None
                      ) -> dict[str, np.ndarray]:
        if cache is not None and id(node) in cache:
            return cache[id(node)]
        start = time.perf_counter()
        if isinstance(node, ScanNode):
            columns = self._execute_scan(node, needed)
        elif isinstance(node, JoinNode):
            columns = self._execute_join(node, needed, cache)
        else:
            raise ExecutionError(f"unsupported plan node {type(node).__name__}")
        node.actual_rows = _num_rows(columns)
        node.actual_time = time.perf_counter() - start
        if cache is not None:
            cache[id(node)] = columns
        return columns

    def _execute_scan(self, node: ScanNode,
                      needed: set[ColumnRef]) -> dict[str, np.ndarray]:
        relation = node.relation
        table = self.database.table(relation.table_name)

        def resolve(ref: ColumnRef) -> np.ndarray:
            if relation.is_temp:
                return table.column(ref.qualified)
            return table.column(ref.column)

        if node.filters:
            mask = node.filters[0].evaluate(resolve)
            for pred in node.filters[1:]:
                mask = mask & pred.evaluate(resolve)
            indices = np.nonzero(mask)[0]
        else:
            indices = None

        wanted = [ref for ref in needed if relation.covers(ref.alias)]
        columns: dict[str, np.ndarray] = {}
        for ref in wanted:
            data = resolve(ref)
            columns[ref.qualified] = data if indices is None else data[indices]
        if not columns:
            # Nothing above needs this relation's columns (rare, e.g. pure
            # existence joins); carry a synthetic row-id column so the row
            # count is still represented.
            count = table.num_rows if indices is None else len(indices)
            columns[f"{relation.alias}.__rowid"] = np.arange(count, dtype=np.int64)
        return columns

    def _execute_join(self, node: JoinNode, needed: set[ColumnRef],
                      cache: dict[int, dict[str, np.ndarray]] | None = None
                      ) -> dict[str, np.ndarray]:
        # Make sure the join keys themselves survive the children's projection.
        child_needed = set(needed)
        for pred in node.predicates:
            child_needed.add(pred.left)
            child_needed.add(pred.right)

        left_columns = self._execute_node(node.left, child_needed, cache)

        if node.method is JoinMethod.INDEX_NL and isinstance(node.right, ScanNode):
            return self._execute_index_nl(node, left_columns, child_needed)

        right_columns = self._execute_node(node.right, child_needed, cache)

        if not node.predicates:
            return self._cross_product(left_columns, right_columns)

        left_keys, right_keys = [], []
        left_aliases = node.left.covered_aliases()
        for pred in node.predicates:
            if pred.left.alias in left_aliases:
                left_keys.append(left_columns[pred.left.qualified])
                right_keys.append(right_columns[pred.right.qualified])
            else:
                left_keys.append(left_columns[pred.right.qualified])
                right_keys.append(right_columns[pred.left.qualified])
        left_idx, right_idx = multi_key_equi_join(left_keys, right_keys)
        return _merge(left_columns, left_idx, right_columns, right_idx)

    def _execute_index_nl(self, node: JoinNode, left_columns: dict[str, np.ndarray],
                          needed: set[ColumnRef]) -> dict[str, np.ndarray]:
        """Index nested-loop join: probe the inner base table's index."""
        inner_scan: ScanNode = node.right  # type: ignore[assignment]
        relation = inner_scan.relation
        table = self.database.table(relation.table_name)
        index_column = node.index_column
        index = self.database.index(relation.table_name, index_column.column)
        if index is None:
            raise ExecutionError(
                f"no index on {relation.table_name}.{index_column.column} "
                f"for INDEX_NL join")

        # The outer key is the other side of the predicate on the index column.
        probe_pred = None
        for pred in node.predicates:
            if index_column in (pred.left, pred.right):
                probe_pred = pred
                break
        if probe_pred is None:
            raise ExecutionError("INDEX_NL join has no predicate on its index column")
        outer_ref = probe_pred.other(index_column.alias)
        outer_keys = left_columns[outer_ref.qualified]

        probe_positions, inner_rows = index.lookup_batch(outer_keys)

        def resolve(ref: ColumnRef) -> np.ndarray:
            return table.column(ref.column)[inner_rows]

        # Apply the inner relation's residual filters after the index probe.
        mask = None
        for pred in inner_scan.filters:
            pred_mask = pred.evaluate(resolve)
            mask = pred_mask if mask is None else (mask & pred_mask)
        # Apply any additional join predicates between the two sides.
        for pred in node.predicates:
            if pred is probe_pred:
                continue
            inner_ref = (pred.left if relation.covers(pred.left.alias) else pred.right)
            outer_side = pred.other(inner_ref.alias)
            pred_mask = (table.column(inner_ref.column)[inner_rows]
                         == left_columns[outer_side.qualified][probe_positions])
            mask = pred_mask if mask is None else (mask & pred_mask)
        if mask is not None:
            probe_positions = probe_positions[mask]
            inner_rows = inner_rows[mask]

        inner_columns: dict[str, np.ndarray] = {}
        for ref in needed:
            if relation.covers(ref.alias):
                inner_columns[ref.qualified] = table.column(ref.column)[inner_rows]
        result = {name: arr[probe_positions] for name, arr in left_columns.items()}
        result.update(inner_columns)
        return result

    @staticmethod
    def _cross_product(left_columns: dict[str, np.ndarray],
                       right_columns: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        left_rows = _num_rows(left_columns)
        right_rows = _num_rows(right_columns)
        total = left_rows * right_rows
        if total > MAX_CROSS_PRODUCT_ROWS:
            raise ExecutionError(
                f"cross product of {left_rows} x {right_rows} rows exceeds the "
                f"executor's safety limit")
        result = {name: np.repeat(arr, right_rows) for name, arr in left_columns.items()}
        result.update(
            {name: np.tile(arr, left_rows) for name, arr in right_columns.items()})
        return result

    # ------------------------------------------------------------------
    # Projection push-down support
    # ------------------------------------------------------------------
    @staticmethod
    def _needed_columns(plan: PhysicalPlan,
                        extra_columns: tuple[ColumnRef, ...]) -> set[ColumnRef]:
        needed: set[ColumnRef] = set(plan.output_columns)
        needed.update(extra_columns)
        needed.update(plan.group_by)
        for spec in plan.aggregates:
            if spec.column is not None:
                needed.add(spec.column)

        def visit(node: PlanNode) -> None:
            if isinstance(node, ScanNode):
                for pred in node.filters:
                    pass  # filter columns are resolved inside the scan itself
            elif isinstance(node, JoinNode):
                for pred in node.predicates:
                    needed.add(pred.left)
                    needed.add(pred.right)
            for child in node.children():
                visit(child)

        visit(plan.root)
        return needed


# ----------------------------------------------------------------------
# Aggregation helpers (shared with the non-SPJ execution path)
# ----------------------------------------------------------------------
def _scalar_aggregate(columns: dict[str, np.ndarray],
                      aggregates: tuple[AggregateSpec, ...]) -> DataTable:
    """Apply scalar (ungrouped) aggregates to a result."""
    rows = _num_rows(columns)
    out: dict[str, np.ndarray] = {}
    for spec in aggregates:
        out[spec.output_name] = np.array([_aggregate_value(columns, spec, rows)],
                                         dtype=object)
    return DataTable(name="aggregate", columns=out)


def group_aggregate(columns: dict[str, np.ndarray],
                    group_by: tuple[ColumnRef, ...],
                    aggregates: tuple[AggregateSpec, ...]) -> DataTable:
    """GROUP BY aggregation over a joined result."""
    rows = _num_rows(columns)
    if not group_by:
        return _scalar_aggregate(columns, aggregates)
    key_arrays = [columns[ref.qualified] for ref in group_by]
    # Build group ids via successive uniquification of the key columns.
    group_ids = np.zeros(rows, dtype=np.int64)
    for arr in key_arrays:
        _, inverse = np.unique(arr, return_inverse=True)
        group_ids = group_ids * (int(inverse.max()) + 1 if rows else 1) + inverse
    uniq_ids, group_index, inverse = np.unique(group_ids, return_index=True,
                                               return_inverse=True)
    out: dict[str, np.ndarray] = {}
    for ref in group_by:
        out[ref.qualified] = columns[ref.qualified][group_index]
    order = np.argsort(inverse, kind="stable")
    boundaries = np.searchsorted(inverse[order], np.arange(len(uniq_ids)))
    boundaries = np.append(boundaries, rows)
    for spec in aggregates:
        values = []
        data = (columns[spec.column.qualified] if spec.column is not None else None)
        for g in range(len(uniq_ids)):
            member_rows = order[boundaries[g]:boundaries[g + 1]]
            values.append(_aggregate_over(data, member_rows, spec))
        out[spec.output_name] = np.array(values, dtype=object)
    return DataTable(name="aggregate", columns=out)


def union_all(tables: list[DataTable]) -> DataTable:
    """UNION ALL of result tables with identical column sets."""
    if not tables:
        return DataTable(name="union", columns={})
    names = tables[0].column_names
    columns = {
        name: np.concatenate([t.column(name) for t in tables]) for name in names
    }
    return DataTable(name="union", columns=columns)


def _aggregate_value(columns: dict[str, np.ndarray], spec: AggregateSpec,
                     rows: int):
    if spec.func == "count" and spec.column is None:
        return rows
    data = columns[spec.column.qualified]
    return _aggregate_over(data, np.arange(rows), spec)


def _aggregate_over(data: np.ndarray | None, member_rows: np.ndarray,
                    spec: AggregateSpec):
    if spec.func == "count":
        return int(len(member_rows))
    if data is None or len(member_rows) == 0:
        return None
    values = data[member_rows]
    if spec.func == "min":
        return values.min()
    if spec.func == "max":
        return values.max()
    if spec.func == "sum":
        return values.sum()
    return float(values.sum()) / len(values)


# ----------------------------------------------------------------------
# Small shared utilities
# ----------------------------------------------------------------------
def _num_rows(columns: dict[str, np.ndarray]) -> int:
    if not columns:
        return 0
    return len(next(iter(columns.values())))


def _merge(left_columns: dict[str, np.ndarray], left_idx: np.ndarray,
           right_columns: dict[str, np.ndarray], right_idx: np.ndarray
           ) -> dict[str, np.ndarray]:
    result = {name: arr[left_idx] for name, arr in left_columns.items()}
    for name, arr in right_columns.items():
        if name not in result:
            result[name] = arr[right_idx]
    return result


def _ref_from_qualified(name: str) -> ColumnRef:
    alias, _, column = name.partition(".")
    return ColumnRef(alias, column)
