"""Physical plan execution (late-materialization engine).

The executor walks a :class:`repro.plan.physical.PhysicalPlan` bottom-up and
evaluates every node with the operator pipeline of
:mod:`repro.executor.operators`.  Intermediate results are
:class:`~repro.executor.chunk.Chunk` objects -- one base-table row-id vector
per input relation -- so joins only ever copy ``int64`` selection vectors.
Real columns are gathered from the stored tables exactly once: join keys
when a join needs them, and output/aggregate columns at the plan root.

Two caches sit around the pipeline:

* the per-plan ``cache`` argument (keyed by ``id(node)``) lets the
  plan-driven re-optimization baselines execute one physical plan
  incrementally, subtree by subtree, without recomputing finished subtrees;
* an optional engine-level :class:`~repro.executor.subplan_cache.SubplanCache`
  (keyed by the *canonical* subtree signature) shares executed subtrees
  across plans, queries, and whole re-optimization policies.

Every operator records its actual output cardinality and wall-clock time in
the plan node (``actual_rows`` / ``actual_time``), which is the runtime
feedback the re-optimization algorithms compare against the estimates; the
same per-operator times are returned in
:attr:`ExecutionResult.operator_times`.

See ARCHITECTURE.md for how this layer fits between storage and the
re-optimization drivers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.executor.aggregates import (  # re-exported for compatibility
    _aggregate_over,
    _aggregate_value,
    _num_rows,
    _scalar_aggregate,
    group_aggregate,
    union_all,
)
from repro.executor.chunk import (
    Chunk,
    MaterializationStats,
    compact,
    materialize_default,
)
from repro.executor.kernels import (
    MAX_BUILD_ROWS,
    MIN_PROBE_ROWS,
    build_semijoin_predicate,
)
from repro.executor.morsels import (  # noqa: F401  (re-exported)
    MorselCancelled,
    MorselScheduler,
)
from repro.executor.operators import (  # noqa: F401  (re-exported)
    MAX_CROSS_PRODUCT_ROWS,
    Aggregate,
    CrossProduct,
    ExecContext,
    ExecutionError,
    HashJoin,
    IndexNLJoin,
    Scan,
)
from repro.executor.subplan_cache import SubplanCache
from repro.plan.expressions import ColumnRef
from repro.plan.physical import JoinMethod, JoinNode, PhysicalPlan, PlanNode, ScanNode
from repro.storage.database import Database
from repro.storage.table import DataTable

__all__ = [
    "Executor", "ExecutionResult", "ExecutionError", "MAX_CROSS_PRODUCT_ROWS",
    "MorselCancelled", "MorselScheduler", "group_aggregate", "union_all",
]


@dataclass
class ExecutionResult:
    """Outcome of executing one physical plan."""

    table: DataTable
    join_rows: int
    wall_time: float
    #: Wall-clock time per operator (label -> inclusive subtree seconds),
    #: mirroring the ``actual_time`` recorded on each plan node.
    operator_times: dict[str, float] = field(default_factory=dict)
    #: Bytes of column data / selection vectors materialized while executing
    #: (the quantity the late-materialization refactor minimizes).
    materialized_bytes: int = 0
    #: Zone-map pruning accounting across every filtered scan of the plan:
    #: storage blocks considered, and blocks skipped without reading data.
    scan_blocks_total: int = 0
    scan_blocks_pruned: int = 0
    #: Fused-kernel accounting: candidate rows each compiled predicate
    #: actually evaluated over (the naive loop would touch
    #: ``rows * num_predicates``), and predicates that ran fused.
    fused_rows_touched: int = 0
    fused_predicates: int = 0
    #: Predicates scans rewrote into dictionary code space.
    dict_predicates: int = 0
    #: Semijoin pushdown: filters pushed into probe-side scans, and probe
    #: rows they eliminated before reaching the hash join.
    semijoin_filters: int = 0
    semijoin_pruned_rows: int = 0
    #: Morsel parallelism: tasks dispatched to the worker pool, the pool
    #: width the executor ran with, and base-table rows scanned through
    #: the parallel filter path (``workers=1`` leaves all three at their
    #: sequential values).
    morsels_total: int = 0
    morsel_workers: int = 1
    parallel_scan_rows: int = 0

    @property
    def scan_pruning_ratio(self) -> float:
        """Fraction of considered storage blocks the zone maps pruned."""
        if self.scan_blocks_total == 0:
            return 0.0
        return self.scan_blocks_pruned / self.scan_blocks_total

    @property
    def num_rows(self) -> int:
        """Rows in the final output."""
        return self.table.num_rows

    @property
    def memory_bytes(self) -> int:
        """Memory footprint of the final output."""
        return self.table.memory_bytes


class Executor:
    """Evaluates physical plans against a :class:`Database`.

    Parameters
    ----------
    database:
        The database to execute against.
    subplan_cache:
        Optional engine-level cache shared across plans and algorithms;
        executed subtrees are stored/looked up by canonical signature.
    materialization:
        ``"late"`` (default) keeps intermediates as row-id chunks;
        ``"eager"`` re-materializes every carried column at every operator,
        reproducing the old executor's behaviour for benchmarking.
    fused:
        Compile each scan's filter conjunction into a single
        selectivity-ordered pass (:mod:`repro.executor.kernels`); off
        restores the naive one-full-pass-per-predicate loop.
    semijoin:
        Push a membership filter over the build side's join keys into
        eligible probe-side base-table scans (exact key set or Bloom
        filter), so zone maps and the fused kernel drop probe rows before
        the hash probe.
    workers:
        Morsel-parallel intra-query execution: scans and hash-join
        probes fan out over a :class:`~repro.executor.morsels.MorselScheduler`
        thread pool of this width, with per-morsel results merged in
        range order (bit-identical to sequential).  ``1`` (the default)
        never creates a pool.
    morsel_scheduler:
        An externally owned scheduler to share across executors (the
        serving layer passes one pool to every worker so inter- and
        intra-query parallelism cannot oversubscribe); overrides
        ``workers``.
    """

    def __init__(self, database: Database,
                 subplan_cache: SubplanCache | None = None,
                 materialization: str = "late",
                 fused: bool = True,
                 semijoin: bool = True,
                 workers: int = 1,
                 morsel_scheduler: MorselScheduler | None = None):
        if materialization not in ("late", "eager"):
            raise ValueError(f"unknown materialization mode {materialization!r}")
        self.database = database
        self.subplan_cache = subplan_cache
        if subplan_cache is not None:
            subplan_cache.bind(database)
        self.materialization = materialization
        self.fused = bool(fused)
        self.semijoin = bool(semijoin)
        if morsel_scheduler is not None:
            self.morsels: MorselScheduler | None = morsel_scheduler
        elif workers > 1:
            self.morsels = MorselScheduler(workers)
        elif workers < 1:
            raise ValueError(f"need >= 1 worker, got {workers}")
        else:
            self.morsels = None
        #: Cooperative per-query deadline (``time.perf_counter`` seconds)
        #: the re-optimization drivers set around each run; the morsel
        #: fan-out checks it between waves and unwinds with
        #: :class:`~repro.executor.morsels.MorselCancelled`.
        self.deadline: float | None = None

    @property
    def workers(self) -> int:
        """Width of the morsel pool this executor fans out over."""
        return self.morsels.workers if self.morsels is not None else 1

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def execute(self, plan: PhysicalPlan,
                extra_columns: tuple[ColumnRef, ...] = (),
                cache: dict[int, Chunk] | None = None) -> ExecutionResult:
        """Execute ``plan`` and return its result.

        ``extra_columns`` lists columns that must survive into the output even
        though the plan's own projection does not mention them (used when
        materializing subquery results that later subqueries will join on).

        ``cache`` optionally maps ``id(plan_node)`` to previously computed
        chunks; the plan-driven re-optimization baselines use it to execute a
        physical plan incrementally (subtree by subtree) without recomputing
        already-executed subtrees.
        """
        start = time.perf_counter()
        stats = MaterializationStats()
        needed = frozenset(self._needed_columns(plan, extra_columns))
        ctx = ExecContext(database=self.database, stats=stats, needed=needed,
                          eager=self.materialization == "eager",
                          fused=self.fused,
                          morsels=self.morsels, deadline=self.deadline)
        chunk = self._execute_node(plan.root, ctx, cache)
        join_rows = chunk.num_rows

        output_refs = tuple(dict.fromkeys(plan.output_columns + tuple(extra_columns)))
        if plan.aggregates:
            table = Aggregate(plan).execute(ctx, chunk)
        else:
            if output_refs:
                columns = {ref.qualified: chunk.column(ref, stats)
                           for ref in output_refs if chunk.covers(ref.alias)}
            else:
                columns = materialize_default(chunk, needed, stats)
            table = DataTable(name=plan.query_name, columns=columns)
        wall = time.perf_counter() - start
        return ExecutionResult(table=table, join_rows=join_rows, wall_time=wall,
                               operator_times=dict(ctx.operator_times),
                               materialized_bytes=stats.gathered_bytes,
                               scan_blocks_total=ctx.scan_blocks_total,
                               scan_blocks_pruned=ctx.scan_blocks_pruned,
                               fused_rows_touched=ctx.fused_rows_touched,
                               fused_predicates=ctx.fused_predicates,
                               dict_predicates=ctx.dict_predicates,
                               semijoin_filters=ctx.semijoin_filters,
                               semijoin_pruned_rows=ctx.semijoin_pruned_rows,
                               morsels_total=ctx.morsels_total,
                               morsel_workers=self.workers,
                               parallel_scan_rows=ctx.parallel_scan_rows)

    # ------------------------------------------------------------------
    # Node evaluation
    # ------------------------------------------------------------------
    def _execute_node(self, node: PlanNode, ctx: ExecContext,
                      cache: dict[int, Chunk] | None = None,
                      scan_extra: tuple = ()) -> Chunk:
        """Evaluate one plan node (with caching and timing around it).

        ``scan_extra`` carries synthetic semijoin filters a parent hash
        join pushes into a probe-side scan.  They are conjunctive with the
        node's own filters *for this plan*, so the per-plan ``cache`` (and
        the node's recorded ``actual_rows``) may hold the pruned chunk --
        any row they drop cannot appear in the query's result.  The
        cross-plan subplan cache must NOT: its key is the node's canonical
        signature, which does not include the pushed filters.
        """
        if cache is not None and id(node) in cache:
            return cache[id(node)]

        signature = None
        if self.subplan_cache is not None and not ctx.eager:
            # Eager mode neither reads nor writes the subplan cache: a cached
            # late chunk would short-circuit the copy-per-operator behaviour
            # the mode exists to measure.
            try:
                signature = node.signature()
            except TypeError:
                # A filter predicate holds an unhashable literal: this
                # subtree simply cannot participate in signature caching.
                signature = None
        if signature is not None:
            hit = self.subplan_cache.get(signature)
            if hit is not None:
                node.actual_rows = hit.num_rows
                node.actual_time = 0.0
                label = f"Cached[{'+'.join(sorted(node.covered_aliases()))}]"
                ctx.operator_times[label] = 0.0
                if cache is not None:
                    cache[id(node)] = hit
                return hit

        start = time.perf_counter()
        if isinstance(node, ScanNode):
            operator = Scan(node)
            chunk = operator.execute(ctx, extra_filters=scan_extra)
        elif isinstance(node, JoinNode):
            if node.method is JoinMethod.INDEX_NL and isinstance(node.right, ScanNode):
                operator = IndexNLJoin(node)
                left = self._execute_node(node.left, ctx, cache)
                chunk = operator.execute(ctx, left)
            else:
                operator, chunk = self._execute_join(node, ctx, cache)
        else:
            raise ExecutionError(f"unsupported plan node {type(node).__name__}")

        if ctx.eager:
            chunk = compact(chunk, ctx.needed, ctx.stats)

        node.actual_rows = chunk.num_rows
        node.actual_time = time.perf_counter() - start
        ctx.operator_times[operator.label] = node.actual_time
        if cache is not None:
            cache[id(node)] = chunk
        if signature is not None and not scan_extra:
            # A semijoin-pruned chunk is correct for this plan only; the
            # signature does not cover the pushed filters, so sharing it
            # across plans would silently drop rows elsewhere.
            self.subplan_cache.put(signature, chunk)
        return chunk

    def _execute_join(self, node: JoinNode, ctx: ExecContext,
                      cache: dict[int, Chunk] | None):
        """Hash join / cross product, with semijoin pushdown when eligible.

        When one input is a large base-table scan and the other (build)
        side turns out small, the build side's join keys are collected
        into a :class:`~repro.executor.kernels.SemiJoinPredicate` (exact
        key set or Bloom filter) that the probe scan evaluates like any
        other pushed-down filter -- zone maps prune probe blocks outside
        the build key range, and the fused kernel drops non-matching rows
        before the hash probe ever sees them.
        """
        if node.predicates and self.semijoin:
            probe, build = self._semijoin_sides(node, ctx)
            if probe is not None:
                build_chunk = self._execute_node(build, ctx, cache)
                semis = self._semijoin_filters(node, probe, build_chunk, ctx)
                probe_chunk = self._execute_node(probe, ctx, cache,
                                                 scan_extra=semis)
                left, right = ((probe_chunk, build_chunk)
                               if probe is node.left
                               else (build_chunk, probe_chunk))
                operator = HashJoin(node)
                return operator, operator.execute(ctx, left, right)
        left = self._execute_node(node.left, ctx, cache)
        right = self._execute_node(node.right, ctx, cache)
        operator = HashJoin(node) if node.predicates else CrossProduct(node)
        return operator, operator.execute(ctx, left, right)

    def _semijoin_sides(self, node: JoinNode, ctx: ExecContext):
        """Pick (probe scan, build subtree) for semijoin pushdown, or None.

        The probe must be a scan of a large base table whose join-key
        column is a raw integer column (semijoin membership operates on
        key values; dictionary-encoded or temp-table columns do not
        qualify).  When both inputs qualify the larger table probes: the
        bigger the probe, the more the pushdown saves.
        """
        left_ok = self._semijoin_probe_eligible(node.left, node, ctx)
        right_ok = self._semijoin_probe_eligible(node.right, node, ctx)
        if left_ok and right_ok:
            left_rows = ctx.database.table(node.left.relation.table_name).num_rows
            right_rows = ctx.database.table(node.right.relation.table_name).num_rows
            if left_rows >= right_rows:
                return node.left, node.right
            return node.right, node.left
        if left_ok:
            return node.left, node.right
        if right_ok:
            return node.right, node.left
        return None, None

    @staticmethod
    def _semijoin_probe_eligible(side: PlanNode, node: JoinNode,
                                 ctx: ExecContext) -> bool:
        if not isinstance(side, ScanNode):
            return False
        relation = side.relation
        if relation.is_temp:
            return False
        table = ctx.database.table(relation.table_name)
        if table.num_rows < MIN_PROBE_ROWS:
            return False
        for pred in node.predicates:
            for ref in (pred.left, pred.right):
                if not relation.covers(ref.alias):
                    continue
                if (table.has_column(ref.column)
                        and not table.is_encoded(ref.column)
                        and table.column(ref.column).dtype.kind in "iu"):
                    return True
        return False

    @staticmethod
    def _semijoin_filters(node: JoinNode, probe: ScanNode, build_chunk: Chunk,
                          ctx: ExecContext) -> tuple:
        """Build one semijoin filter per eligible join key of ``probe``."""
        if build_chunk.num_rows > MAX_BUILD_ROWS:
            return ()
        table = ctx.database.table(probe.relation.table_name)
        filters = []
        for pred in node.predicates:
            if probe.relation.covers(pred.left.alias):
                probe_ref, build_ref = pred.left, pred.right
            elif probe.relation.covers(pred.right.alias):
                probe_ref, build_ref = pred.right, pred.left
            else:
                continue
            if (not table.has_column(probe_ref.column)
                    or table.is_encoded(probe_ref.column)
                    or table.column(probe_ref.column).dtype.kind not in "iu"):
                continue
            if not build_chunk.covers(build_ref.alias):
                continue
            keys = build_chunk.column(build_ref, ctx.stats)
            if keys.dtype.kind not in "iu":
                continue
            filters.append(build_semijoin_predicate(probe_ref, keys))
        ctx.semijoin_filters += len(filters)
        return tuple(filters)

    # ------------------------------------------------------------------
    # Projection push-down support
    # ------------------------------------------------------------------
    @staticmethod
    def _needed_columns(plan: PhysicalPlan,
                        extra_columns: tuple[ColumnRef, ...]) -> set[ColumnRef]:
        needed: set[ColumnRef] = set(plan.output_columns)
        needed.update(extra_columns)
        needed.update(plan.group_by)
        for spec in plan.aggregates:
            if spec.column is not None:
                needed.add(spec.column)

        def visit(node: PlanNode) -> None:
            if isinstance(node, JoinNode):
                for pred in node.predicates:
                    needed.add(pred.left)
                    needed.add(pred.right)
            for child in node.children():
                visit(child)

        visit(plan.root)
        return needed
