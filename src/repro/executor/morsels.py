"""Morsel-driven intra-query parallelism.

One query is decomposed into *morsels* -- contiguous row ranges of
bounded size -- that a shared :class:`MorselScheduler` thread pool
evaluates concurrently while the coordinating (operator) thread merges
the partial results **in morsel order**.  Two operators fan out this way:

* **Scan** -- each zone-map-surviving block run is split into morsels;
  every morsel evaluates the (fused or naive) filter conjunction over
  its slice and returns the surviving row ids, which the coordinator
  concatenates in range order.  Since the sequential scan evaluates the
  same ranges in the same order, the merged selection vector is
  bit-identical.
* **HashJoin probe** -- the build side is sorted once into a shared
  read-only :class:`~repro.executor.joins.ProbeSide`; each morsel probes
  a contiguous slice of the probe keys and emits matches with *global*
  probe indices, so concatenating the per-morsel pairs in slice order
  reproduces the whole-input join exactly.

Threads never mutate shared execution state: every morsel accumulates
its kernel counters into a private :class:`MorselCounters` and the
coordinator folds them into the :class:`~repro.executor.operators.ExecContext`
after the fan-out completes (numpy kernels release the GIL, which is
where the parallel speedup comes from).  ``workers=1`` never creates a
pool and runs every task inline, so it is byte-identical to -- and
exactly as fast as -- the sequential path.

Cancellation is cooperative, like the engine's query timeouts: the
scheduler checks the deadline between dispatch and each merge step and
unwinds with :class:`MorselCancelled`; already-running morsels finish
(they are bounded by the morsel size, so nothing is ever torn) and
pending ones are cancelled, leaving the pool immediately reusable.

This module deliberately imports nothing from the operator/executor
layer (they import *it*), so :class:`MorselCancelled` subclasses
``RuntimeError`` and the re-optimization drivers list it alongside
``ExecutionError`` in their abort handlers.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

#: Default rows per morsel.  Large enough that numpy kernel time dwarfs
#: the ~50 us/task pool dispatch overhead, small enough that a handful of
#: morsels exist even at benchmark scale (a 4096-row storage block is far
#: too fine-grained to dispatch individually).
DEFAULT_MORSEL_ROWS = 131_072

T = TypeVar("T")


class MorselCancelled(RuntimeError):
    """The query deadline fired between morsel waves; the fan-out aborted."""


@dataclass
class MorselCounters:
    """Private per-morsel sink for the fused-kernel execution counters.

    Duck-typed stand-in for the ``ctx`` argument of
    :meth:`~repro.executor.kernels.PredicateCompiler.evaluate_range`:
    worker threads accumulate here, and only the coordinating thread
    folds the totals into the shared ``ExecContext`` after the fan-out
    -- so no counter is ever incremented from two threads.
    """

    fused_rows_touched: int = 0
    semijoin_pruned_rows: int = 0

    def merge_into(self, ctx) -> None:
        ctx.fused_rows_touched += self.fused_rows_touched
        ctx.semijoin_pruned_rows += self.semijoin_pruned_rows


class MorselScheduler:
    """A reusable worker pool executing ordered batches of morsel tasks.

    One scheduler serves many queries (and, under the serving layer, many
    concurrent queries): ``run_ordered`` is thread-safe and stateless
    across calls.  The underlying ``ThreadPoolExecutor`` is created
    lazily on the first parallel batch, so a ``workers=1`` scheduler (or
    one that only ever sees single-task batches) never starts a thread.
    """

    def __init__(self, workers: int, morsel_rows: int = DEFAULT_MORSEL_ROWS):
        if workers < 1:
            raise ValueError(f"need >= 1 morsel worker, got {workers}")
        if morsel_rows < 1:
            raise ValueError(f"need >= 1 row per morsel, got {morsel_rows}")
        self.workers = int(workers)
        self.morsel_rows = int(morsel_rows)
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Work decomposition
    # ------------------------------------------------------------------
    def split_ranges(self, ranges: Sequence[tuple[int, int]]
                     ) -> list[tuple[int, int]]:
        """Split ``[start, stop)`` ranges into ordered morsel-sized pieces.

        Range order and intra-range order are both preserved, so a merge
        that concatenates per-piece results reproduces the sequential
        evaluation order exactly.  Empty ranges vanish.
        """
        pieces: list[tuple[int, int]] = []
        for start, stop in ranges:
            cursor = start
            while cursor < stop:
                upper = min(cursor + self.morsel_rows, stop)
                pieces.append((cursor, upper))
                cursor = upper
        return pieces

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_ordered(self, tasks: Sequence[Callable[[], T]],
                    deadline: float | None = None) -> list[T]:
        """Run every task, returning their results in task order.

        With one worker (or at most one task) everything runs inline on
        the calling thread.  Otherwise tasks are dispatched to the pool
        and collected in order; if ``deadline`` (``time.perf_counter``
        seconds) passes before the batch completes, pending tasks are
        cancelled, running ones are awaited, and :class:`MorselCancelled`
        is raised -- the pool survives and stays reusable.
        """
        tasks = list(tasks)
        self._check_deadline(deadline)
        if self.workers == 1 or len(tasks) <= 1:
            results = []
            for task in tasks:
                self._check_deadline(deadline)
                results.append(task())
            return results

        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks]
        results: list[T] = []
        try:
            for future in futures:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0.0:
                        raise MorselCancelled(
                            "query deadline passed during morsel fan-out")
                try:
                    results.append(future.result(timeout=remaining))
                except FutureTimeout:
                    raise MorselCancelled(
                        "query deadline passed during morsel fan-out") from None
        except BaseException:
            # Leave no work behind: drop what has not started, wait out
            # what has (morsels are bounded, so this is a short, clean
            # unwind), then let the pool serve the next query.
            for future in futures:
                future.cancel()
            wait_futures(futures)
            raise
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("MorselScheduler is shut down")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="morsel")
            return self._pool

    def shutdown(self) -> None:
        """Join the pool threads (idempotent; the scheduler is dead after)."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "MorselScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @staticmethod
    def _check_deadline(deadline: float | None) -> None:
        if deadline is not None and time.perf_counter() > deadline:
            raise MorselCancelled(
                "query deadline passed during morsel fan-out")
