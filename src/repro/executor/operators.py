"""The physical operator pipeline.

Each class evaluates one :class:`~repro.plan.physical.PlanNode` kind over
late-materialized :class:`~repro.executor.chunk.Chunk` inputs:

* :class:`Scan`        -- filtered scan producing a row-id selection vector;
* :class:`HashJoin`    -- equi-join on gathered key columns (also evaluates
  MERGE and predicate-carrying NL nodes: the sort/searchsorted kernel in
  :mod:`repro.executor.joins` serves all of them);
* :class:`IndexNLJoin` -- index nested-loop join probing a sorted index;
* :class:`CrossProduct`-- predicate-less join (guarded Cartesian product);
* :class:`Aggregate`   -- plan-root aggregation, the point where real
  columns are finally materialized.

Operators never copy payload columns between them -- they pass chunks whose
sources are row-id vectors into the stored tables.  The
:class:`~repro.executor.executor.Executor` walks the plan, invokes the
matching operator per node, and handles caching/timing around them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.executor.aggregates import _scalar_aggregate, group_aggregate
from repro.executor.chunk import (
    Chunk,
    MaterializationStats,
    TableSource,
    merge_chunks,
)
from repro.executor.joins import (
    MAX_JOIN_RESULT_ROWS,
    JoinOverflowError,
    ProbeSide,
    combine_key_pair,
    multi_key_equi_join,
    probe_range,
)
from repro.executor.kernels import PredicateCompiler
from repro.executor.morsels import MorselCounters, MorselScheduler
from repro.plan.expressions import ColumnRef
from repro.storage.dictionary import translate_filters
from repro.plan.physical import JoinNode, PhysicalPlan, PlanNode, ScanNode
from repro.storage.database import Database
from repro.storage.table import DataTable

#: Guard against accidental cross-product explosions in the executor.
MAX_CROSS_PRODUCT_ROWS = 50_000_000


class ExecutionError(RuntimeError):
    """Raised when a plan cannot be executed (e.g. a runaway cross product)."""


@dataclass
class ExecContext:
    """Per-execution state threaded through the operator pipeline."""

    database: Database
    stats: MaterializationStats
    #: Every column the plan (outputs, join keys, extras) may ever gather.
    needed: frozenset[ColumnRef]
    #: Eager compatibility mode: materialize needed columns at every operator
    #: (the pre-chunk behaviour, kept for the materialization benchmark).
    eager: bool = False
    #: Fused predicate kernels: evaluate a scan's conjunction in one
    #: selectivity-ordered pass (off = the naive per-predicate loop).
    fused: bool = True
    operator_times: dict[str, float] = field(default_factory=dict)
    #: Zone-map pruning accounting: storage blocks considered by filtered
    #: scans over block-partitioned tables, and how many the zone maps
    #: eliminated without reading any column data.
    scan_blocks_total: int = 0
    scan_blocks_pruned: int = 0
    #: Fused-kernel accounting: candidate rows each compiled predicate
    #: actually evaluated over, and how many predicates ran fused.
    fused_rows_touched: int = 0
    fused_predicates: int = 0
    #: Predicates rewritten into dictionary code space by scans.
    dict_predicates: int = 0
    #: Semijoin pushdown accounting: filters pushed into probe scans, and
    #: probe rows they eliminated before the hash probe.
    semijoin_filters: int = 0
    semijoin_pruned_rows: int = 0
    #: Intra-query parallelism: the shared morsel worker pool (``None``
    #: runs everything sequentially) and the cooperative per-query
    #: deadline (``time.perf_counter`` seconds) the fan-out checks
    #: between morsel waves.
    morsels: MorselScheduler | None = None
    deadline: float | None = None
    #: Morsel accounting: tasks dispatched to the pool, and base-table
    #: rows scanned through the parallel filter path.  Worker threads
    #: never touch these -- per-morsel results are merged by the
    #: coordinating thread (see :mod:`repro.executor.morsels`).
    morsels_total: int = 0
    parallel_scan_rows: int = 0


class Operator:
    """Base class: one physical operator bound to its plan node."""

    name = "Operator"

    def __init__(self, node: PlanNode):
        self.node = node

    @property
    def label(self) -> str:
        """Stable display label (operator kind + covered aliases)."""
        return f"{self.name}[{'+'.join(sorted(self.node.covered_aliases()))}]"


class Scan(Operator):
    """Sequential scan with pushed-down filters -> row-id selection vector.

    Over a block-partitioned table the scan is two-phase: the pushed-down
    conjunction is first tested against every block's zone maps
    (:mod:`repro.storage.zonemaps`), then the predicates are evaluated
    *only inside the surviving blocks* (adjacent survivors are coalesced
    into contiguous runs so each predicate still evaluates over large
    slices).  Pruning is conservative, so the emitted row-id vector is
    bit-identical to a full scan's; tables without zone maps take the
    original full-column path.

    Two hot-path rewrites happen before any data is read.  Predicates over
    dictionary-encoded string columns are translated into code space
    (:func:`~repro.storage.dictionary.translate_filters`), which can decide
    a conjunct outright: a provably unsatisfiable conjunct returns the
    empty selection without scanning, a tautological one is dropped.  And
    with ``ctx.fused`` the surviving conjunction is compiled into a
    single selectivity-ordered pass (:class:`PredicateCompiler`) instead
    of one full-slice pass per predicate.

    ``extra_filters`` carries synthetic predicates pushed down by the
    executor (semijoin filters from a parent hash join); they never come
    from the plan node, so plan signatures and costing are unaffected.
    """

    name = "Scan"

    def execute(self, ctx: ExecContext, extra_filters=()) -> Chunk:
        node: ScanNode = self.node  # type: ignore[assignment]
        relation = node.relation
        table = ctx.database.table(relation.table_name)

        def storage_name(ref: ColumnRef) -> str:
            return ref.qualified if relation.is_temp else ref.column

        filters = tuple(node.filters) + tuple(extra_filters)
        if not filters:
            # Identity selection: no vector materialized.  Mutated tables
            # with deleted rows select their live rows explicitly instead
            # (the valid-row mask is the single source of truth).
            return Chunk((TableSource(relation, table,
                                      table.valid_row_ids()
                                      if table.has_deletes else None),))

        filters, impossible, translated = translate_filters(
            filters, table, storage_name)
        ctx.dict_predicates += translated
        zone_maps = table.zone_maps
        if impossible:
            # The dictionary proved a conjunct unsatisfiable: empty scan,
            # every block counts as pruned.
            if zone_maps is not None:
                ctx.scan_blocks_total += zone_maps.num_blocks
                ctx.scan_blocks_pruned += zone_maps.num_blocks
            return Chunk((TableSource(relation, table,
                                      np.empty(0, dtype=np.int64)),))
        if not filters:
            # Every conjunct was tautological: identity selection.
            return Chunk((TableSource(relation, table,
                                      table.valid_row_ids()
                                      if table.has_deletes else None),))

        kernel = None
        if ctx.fused:
            kernel = PredicateCompiler(filters)
            ctx.fused_predicates += len(filters)
        if zone_maps is None or zone_maps.num_blocks == 0:
            ranges = [(0, table.num_rows)] if table.num_rows else []
        else:
            candidates = zone_maps.candidate_blocks(filters, storage_name)
            ctx.scan_blocks_total += zone_maps.num_blocks
            ctx.scan_blocks_pruned += int(zone_maps.num_blocks
                                          - candidates.sum())
            ranges = [(first * zone_maps.block_size,
                       min(last * zone_maps.block_size, table.num_rows))
                      for first, last in _block_runs(candidates)]
        row_ids = self._filter_ranges(table, filters, storage_name,
                                      ranges, ctx, kernel)
        if table.has_deletes:
            # Deleted rows may still satisfy the filters (deletes never
            # rewrite blocks); drop them from the selection here so every
            # scan variant -- zone-pruned or not, fused or not -- returns
            # exactly the live matches.
            row_ids = row_ids[table.valid_mask[row_ids]]
        return Chunk((TableSource(relation, table, row_ids),))

    @staticmethod
    def _filter_range(table: DataTable, filters, storage_name,
                      start: int, stop: int, ctx: ExecContext | None = None,
                      kernel: PredicateCompiler | None = None) -> np.ndarray:
        """Evaluate the filter conjunction over rows ``[start, stop)``."""

        def resolve(ref: ColumnRef) -> np.ndarray:
            column = table.column(storage_name(ref))
            return column if start == 0 and stop == len(column) \
                else column[start:stop]

        if kernel is not None:
            row_ids = kernel.evaluate_range(resolve, stop - start, ctx)
        else:
            mask = filters[0].evaluate(resolve)
            for pred in filters[1:]:
                mask = mask & pred.evaluate(resolve)
            row_ids = np.nonzero(mask)[0].astype(np.int64, copy=False)
        return row_ids + start if start else row_ids

    @classmethod
    def _filter_ranges(cls, table: DataTable, filters, storage_name,
                       ranges: list[tuple[int, int]], ctx: ExecContext,
                       kernel: PredicateCompiler | None) -> np.ndarray:
        """Evaluate the conjunction over every ``[start, stop)`` range.

        The sequential path walks the ranges in order; with a morsel
        scheduler of more than one worker the ranges are split into
        morsels and fanned out, and the per-morsel results are merged in
        range order -- so both paths emit the same row ids in the same
        order (see :mod:`repro.executor.morsels` for the argument).
        """
        scheduler = ctx.morsels
        if scheduler is not None and scheduler.workers > 1:
            morsel_ranges = scheduler.split_ranges(ranges)
            if len(morsel_ranges) > 1:
                return cls._filter_parallel(table, filters, storage_name,
                                            morsel_ranges, ctx, kernel)
        parts = [cls._filter_range(table, filters, storage_name,
                                   start, stop, ctx, kernel)
                 for start, stop in ranges]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    @classmethod
    def _filter_parallel(cls, table: DataTable, filters, storage_name,
                         morsel_ranges: list[tuple[int, int]],
                         ctx: ExecContext,
                         kernel: PredicateCompiler | None) -> np.ndarray:
        """Fan the filter ranges out over the morsel pool and merge."""

        def make_task(start: int, stop: int):
            def task() -> tuple[np.ndarray, MorselCounters]:
                counters = MorselCounters()
                rows = cls._filter_range(table, filters, storage_name,
                                         start, stop, counters, kernel)
                return rows, counters
            return task

        results = ctx.morsels.run_ordered(
            [make_task(start, stop) for start, stop in morsel_ranges],
            deadline=ctx.deadline)
        ctx.morsels_total += len(results)
        ctx.parallel_scan_rows += sum(stop - start
                                      for start, stop in morsel_ranges)
        for _, counters in results:
            counters.merge_into(ctx)
        parts = [rows for rows, _ in results]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


def _block_runs(candidates: np.ndarray) -> list[tuple[int, int]]:
    """Coalesce a surviving-block mask into ``[first, last)`` block runs."""
    boundaries = np.diff(candidates.astype(np.int8))
    starts = list(np.nonzero(boundaries == 1)[0] + 1)
    stops = list(np.nonzero(boundaries == -1)[0] + 1)
    if len(candidates) and candidates[0]:
        starts.insert(0, 0)
    if len(candidates) and candidates[-1]:
        stops.append(len(candidates))
    return list(zip(starts, stops))


class HashJoin(Operator):
    """Equi-join: gather the key columns, match, merge the row-id vectors."""

    name = "HashJoin"

    def execute(self, ctx: ExecContext, left: Chunk, right: Chunk) -> Chunk:
        node: JoinNode = self.node  # type: ignore[assignment]
        left_aliases = node.left.covered_aliases()
        left_keys, right_keys = [], []
        for pred in node.predicates:
            if pred.left.alias in left_aliases:
                left_ref, right_ref = pred.left, pred.right
            else:
                left_ref, right_ref = pred.right, pred.left
            left_keys.append(left.column(left_ref, ctx.stats))
            right_keys.append(right.column(right_ref, ctx.stats))
        left_idx, right_idx = self._join_indices(ctx, left_keys, right_keys)
        return merge_chunks(left, left_idx, right, right_idx, ctx.stats)

    @staticmethod
    def _join_indices(ctx: ExecContext, left_keys: list[np.ndarray],
                      right_keys: list[np.ndarray]
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Match the key columns, morsel-parallel over the probe side.

        The build (right) side is sorted once into a shared read-only
        :class:`~repro.executor.joins.ProbeSide`; contiguous slices of
        the probe keys are matched concurrently and merged in slice
        order, which is bit-identical to the whole-input kernel.  Small
        probes (fewer than two morsels) take the sequential kernel
        directly.
        """
        scheduler = ctx.morsels
        n_probe = len(left_keys[0]) if left_keys else 0
        if (scheduler is None or scheduler.workers <= 1
                or not right_keys or len(right_keys[0]) == 0):
            return multi_key_equi_join(left_keys, right_keys)
        morsel_ranges = scheduler.split_ranges([(0, n_probe)])
        if len(morsel_ranges) <= 1:
            return multi_key_equi_join(left_keys, right_keys)
        if len(left_keys) > 1:
            probe_key, build_key = combine_key_pair(left_keys, right_keys)
        else:
            probe_key, build_key = left_keys[0], right_keys[0]
        side = ProbeSide(build_key)

        def make_task(start: int, stop: int):
            return lambda: probe_range(side, probe_key, start, stop)

        results = scheduler.run_ordered(
            [make_task(start, stop) for start, stop in morsel_ranges],
            deadline=ctx.deadline)
        ctx.morsels_total += len(results)
        total = sum(len(part_left) for part_left, _ in results)
        if total > MAX_JOIN_RESULT_ROWS:
            raise JoinOverflowError(
                f"equi-join would produce {total} rows "
                f"(cap {MAX_JOIN_RESULT_ROWS}); aborting the query")
        left_idx = np.concatenate([part for part, _ in results])
        right_idx = np.concatenate([part for _, part in results])
        return left_idx, right_idx


class IndexNLJoin(Operator):
    """Index nested-loop join: probe the inner base table's sorted index."""

    name = "IndexNLJoin"

    def execute(self, ctx: ExecContext, left: Chunk) -> Chunk:
        node: JoinNode = self.node  # type: ignore[assignment]
        inner_scan: ScanNode = node.right  # type: ignore[assignment]
        relation = inner_scan.relation
        table = ctx.database.table(relation.table_name)
        index_column = node.index_column
        index = ctx.database.index(relation.table_name, index_column.column)
        if index is None:
            raise ExecutionError(
                f"no index on {relation.table_name}.{index_column.column} "
                f"for INDEX_NL join")

        # The outer key is the other side of the predicate on the index column.
        probe_pred = None
        for pred in node.predicates:
            if index_column in (pred.left, pred.right):
                probe_pred = pred
                break
        if probe_pred is None:
            raise ExecutionError("INDEX_NL join has no predicate on its index column")
        outer_ref = probe_pred.other(index_column.alias)
        outer_keys = left.column(outer_ref, ctx.stats)

        probe_positions, inner_rows = index.lookup_batch(outer_keys)

        def resolve(ref: ColumnRef) -> np.ndarray:
            return table.gather(ref.column, inner_rows)

        # Apply the inner relation's residual filters after the index probe.
        mask = None
        for pred in inner_scan.filters:
            pred_mask = pred.evaluate(resolve)
            mask = pred_mask if mask is None else (mask & pred_mask)
        # Apply any additional join predicates between the two sides.
        for pred in node.predicates:
            if pred is probe_pred:
                continue
            inner_ref = (pred.left if relation.covers(pred.left.alias) else pred.right)
            outer_side = pred.other(inner_ref.alias)
            pred_mask = (table.gather(inner_ref.column, inner_rows)
                         == left.column(outer_side, ctx.stats)[probe_positions])
            mask = pred_mask if mask is None else (mask & pred_mask)
        if mask is not None:
            probe_positions = probe_positions[mask]
            inner_rows = inner_rows[mask]

        sources = tuple(source.take(probe_positions, ctx.stats)
                        for source in left.sources)
        sources += (TableSource(relation, table, inner_rows),)
        return Chunk(sources, len(probe_positions))


class CrossProduct(Operator):
    """Predicate-less join: guarded Cartesian product of two chunks."""

    name = "CrossProduct"

    def execute(self, ctx: ExecContext, left: Chunk, right: Chunk) -> Chunk:
        total = left.num_rows * right.num_rows
        if total > MAX_CROSS_PRODUCT_ROWS:
            raise ExecutionError(
                f"cross product of {left.num_rows} x {right.num_rows} rows "
                f"exceeds the executor's safety limit")
        left_idx = np.repeat(np.arange(left.num_rows, dtype=np.int64),
                             right.num_rows)
        right_idx = np.tile(np.arange(right.num_rows, dtype=np.int64),
                            left.num_rows)
        return merge_chunks(left, left_idx, right, right_idx, ctx.stats)


class Aggregate:
    """Plan-root aggregation: the single full materialization point."""

    name = "Aggregate"
    label = "Aggregate"

    def __init__(self, plan: PhysicalPlan):
        self.plan = plan

    def execute(self, ctx: ExecContext, chunk: Chunk) -> DataTable:
        plan = self.plan
        refs = tuple(dict.fromkeys(
            tuple(plan.group_by)
            + tuple(spec.column for spec in plan.aggregates
                    if spec.column is not None)))
        start = time.perf_counter()
        columns = chunk.materialize(refs, ctx.stats)
        if plan.group_by:
            table = group_aggregate(columns, plan.group_by, plan.aggregates)
        else:
            table = _scalar_aggregate(columns, plan.aggregates,
                                      num_rows=chunk.num_rows)
        ctx.operator_times[self.label] = time.perf_counter() - start
        return table
