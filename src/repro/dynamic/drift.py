"""Seeded drift streams: mutation batches that make a database move.

A :class:`DriftStream` drives one fact table of a loaded database through
a sequence of mutation **steps**.  Each step appends a batch of rows whose
distributions drift with the step index -- numeric columns draw from a
window that keeps shifting past the loaded value range
(:func:`~repro.workloads.datagen.shifting_window_ints`), foreign keys
concentrate on a rotating hot key
(:func:`~repro.workloads.datagen.rotating_hotkey_choice`), and string
columns mix the loaded pool with novel strings that grow the dictionary
(:func:`~repro.workloads.datagen.novel_strings`) -- and deletes a fraction
of the rows that existed at that step.

**Purity discipline** (mirrors :mod:`repro.workloads.sqlgen`): the batch
at step *k* is a pure function of ``(initial database snapshot, seed, k)``.
The stream snapshots everything batch generation depends on -- the loaded
row count, primary-key high-water mark, foreign-key value pools, numeric
column bounds, string pools -- at construction, and derives per-step rngs
as ``np.random.default_rng([seed, step])``.  Two identically built
databases driven through :meth:`DriftStream.apply` therefore receive
byte-identical mutations, which is what lets ``bench_stale_stats`` replay
the *same* drift under every re-ANALYZE policy and algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.database import Database
from repro.workloads.datagen import (
    novel_strings,
    rotating_hotkey_choice,
    shifting_window_ints,
)

#: Cap on the per-column value pools snapshotted at construction.
_POOL_CAP = 512


@dataclass(frozen=True)
class DriftConfig:
    """Shape of one drift stream.

    ``append_rows`` rows are appended per step and ``delete_fraction`` of
    the rows existing at the step are deleted (re-deleting an already-dead
    row is a no-op, so the effective delete count decays slightly over
    time).  ``value_drift`` is the per-step shift of numeric-value windows
    as a fraction of the loaded value span; ``hot_fraction`` /
    ``hot_key_stride`` control the rotating foreign-key hot spot;
    ``new_string_rate`` is the per-row probability of a novel (dictionary-
    growing) string in string columns.
    """

    fact_table: str
    append_rows: int = 1000
    delete_fraction: float = 0.02
    value_drift: float = 0.25
    hot_key_stride: int = 7
    hot_fraction: float = 0.4
    new_string_rate: float = 0.25

    def __post_init__(self) -> None:
        if self.append_rows < 0:
            raise ValueError("append_rows must be >= 0")
        if not 0.0 <= self.delete_fraction < 1.0:
            raise ValueError("delete_fraction must be within [0, 1)")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be within [0, 1]")
        if not 0.0 <= self.new_string_rate <= 1.0:
            raise ValueError("new_string_rate must be within [0, 1]")


@dataclass(frozen=True)
class MutationBatch:
    """One generated step: rows to append and physical row ids to delete."""

    step: int
    table: str
    appends: dict[str, np.ndarray] = field(repr=False)
    delete_ids: np.ndarray = field(repr=False)

    @property
    def num_appends(self) -> int:
        if not self.appends:
            return 0
        return len(next(iter(self.appends.values())))

    @property
    def num_deletes(self) -> int:
        return len(self.delete_ids)


class DriftStream:
    """Generates and applies seeded mutation batches to one fact table."""

    def __init__(self, database: Database, config: DriftConfig, seed: int = 0):
        if database.origin is not database:
            raise ValueError("drift streams must target an origin database, "
                             "not a session view")
        self.database = database
        self.config = config
        self.seed = int(seed)
        table = database.table(config.fact_table)
        schema = database.schema.table(config.fact_table)
        # --- Snapshot of the initial state (purity: batches depend only on
        # this snapshot, the seed, and the step index). ---
        self._initial_rows = table.num_rows
        self._columns = list(table.column_names)
        self._pk = schema.primary_key
        self._next_id = 0
        if self._pk is not None and table.has_column(self._pk):
            pk_values = table.column_values(self._pk, cache=False)
            self._next_id = int(pk_values.max()) + 1 if len(pk_values) else 0
        self._fk_pools: dict[str, np.ndarray] = {}
        for fk in schema.foreign_keys:
            ref = database.table(fk.ref_table)
            pool = np.asarray(
                ref.column_values(fk.ref_column, cache=False)[
                    ref.valid_row_ids()])
            if len(pool) > _POOL_CAP * 8:
                pool = pool[:: len(pool) // (_POOL_CAP * 8) + 1]
            self._fk_pools[fk.column] = pool
        self._numeric_bounds: dict[str, tuple[int, int]] = {}
        self._string_pools: dict[str, np.ndarray] = {}
        for name in self._columns:
            if name == self._pk or name in self._fk_pools:
                continue
            values = table.column_values(name, cache=False)
            if values.dtype == object:
                non_null = np.array([v for v in values[:_POOL_CAP * 16]
                                     if v is not None], dtype=object)
                pool = np.unique(non_null) if len(non_null) else non_null
                self._string_pools[name] = pool[:_POOL_CAP]
            elif values.dtype.kind in "iu":
                lo = int(values.min()) if len(values) else 0
                hi = int(values.max()) if len(values) else 1
                self._numeric_bounds[name] = (lo, max(hi, lo + 1))
            else:  # float columns: drift over their finite range
                finite = values[np.isfinite(values)] if len(values) else values
                lo = int(np.floor(finite.min())) if len(finite) else 0
                hi = int(np.ceil(finite.max())) if len(finite) else 1
                self._numeric_bounds[name] = (lo, max(hi, lo + 1))

    # ------------------------------------------------------------------
    # Pure generation
    # ------------------------------------------------------------------
    def batch_at(self, step: int) -> MutationBatch:
        """The mutation batch of ``step`` -- pure in (snapshot, seed, step)."""
        config = self.config
        rng = np.random.default_rng([self.seed, int(step)])
        count = config.append_rows
        appends: dict[str, np.ndarray] = {}
        if count:
            for name in sorted(self._columns):
                appends[name] = self._synthesize(rng, name, step, count)
            appends = {name: appends[name] for name in self._columns}
        existing = self._initial_rows + step * config.append_rows
        deletes = int(existing * config.delete_fraction)
        delete_ids = (rng.choice(existing, size=deletes, replace=False)
                      .astype(np.int64)
                      if deletes else np.empty(0, dtype=np.int64))
        return MutationBatch(step=int(step), table=config.fact_table,
                             appends=appends, delete_ids=delete_ids)

    def _synthesize(self, rng: np.random.Generator, name: str, step: int,
                    count: int) -> np.ndarray:
        config = self.config
        if name == self._pk:
            # Dense, collision-free keys: each step owns a fixed id range.
            start = self._next_id + step * config.append_rows
            return np.arange(start, start + count, dtype=np.int64)
        pool = self._fk_pools.get(name)
        if pool is not None and len(pool):
            idx = rotating_hotkey_choice(
                rng, len(pool), count, step,
                stride=config.hot_key_stride,
                hot_fraction=config.hot_fraction)
            return pool[idx]
        if name in self._string_pools:
            pool = self._string_pools[name]
            if len(pool):
                values = pool[rng.integers(0, len(pool), count)].astype(object)
            else:
                values = np.full(count, None, dtype=object)
            fresh_mask = rng.random(count) < config.new_string_rate
            n_fresh = int(fresh_mask.sum())
            if n_fresh:
                values = values.copy()
                values[fresh_mask] = novel_strings(name, step, n_fresh)
            return values
        low, high = self._numeric_bounds.get(name, (0, 1))
        return shifting_window_ints(rng, count, low, high, step,
                                    drift_per_step=config.value_drift)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, step: int) -> MutationBatch:
        """Generate the batch at ``step`` and apply it to the database.

        Steps must be applied in order starting at 0 for the stream's
        delete ids (sampled over the rows existing at the step) to refer
        to real rows.  Statistics are *not* refreshed -- re-ANALYZE is the
        :class:`~repro.dynamic.staleness.StalenessController`'s decision.
        """
        batch = self.batch_at(step)
        if batch.num_appends:
            self.database.append_rows(batch.table, batch.appends)
        if batch.num_deletes:
            self.database.delete_rows(batch.table, batch.delete_ids)
        return batch

    def run(self, steps: int) -> list[MutationBatch]:
        """Apply steps ``0 .. steps - 1`` in order."""
        return [self.apply(step) for step in range(steps)]
