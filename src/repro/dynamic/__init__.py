"""Dynamic-data subsystem: drift streams, staleness, re-ANALYZE policies.

Every other workload in the repository is static -- load once, ANALYZE
once, query forever -- so cardinality estimates are only ever *noisy*
(figure10's perturbation model), never *systematically* wrong.  This
package makes the database a moving target, which is the setting the
paper's re-optimization policies exist for: statistics that drift out of
date produce systematic estimation errors, and the policies recover by
observing true cardinalities mid-query.

Layers (see ARCHITECTURE.md, "Dynamic data"):

* :mod:`repro.dynamic.drift`     -- seeded mutation streams
  (:class:`DriftStream`) that grow a fact table with shifting value
  windows, rotating hot-key skew, and novel strings, and delete a
  fraction of existing rows, as pure functions of ``(seed, step)``;
* :mod:`repro.dynamic.staleness` -- per-table staleness accounting on top
  of the storage layer's ``data_epoch`` counters, the
  :class:`StalenessController` re-ANALYZE policies (``never`` /
  ``periodic`` / ``triggered``), and per-query
  :class:`StalenessReport` records (plan-time estimate vs. executed
  cardinality).

The storage-level mechanics (``DataTable.append_rows`` / ``delete_rows``,
incremental zone maps, dictionary growth, subplan-cache invalidation)
live in :mod:`repro.storage` and :mod:`repro.executor`; this package is
the policy layer over them.
"""

from repro.dynamic.drift import DriftConfig, DriftStream, MutationBatch
from repro.dynamic.staleness import (
    POLICIES,
    StalenessController,
    StalenessReport,
)

__all__ = [
    "DriftConfig", "DriftStream", "MutationBatch", "POLICIES",
    "StalenessController", "StalenessReport",
]
