"""Statistics-staleness accounting and re-ANALYZE policies.

The storage layer gives every base table a ``data_epoch`` counter and
stamps each :class:`~repro.catalog.statistics.TableStats` with the epoch
it was collected at (``analyzed_epoch``); the difference --
``Database.stats_staleness(table)`` -- is the number of mutation batches
the optimizer's statistics have *not* seen.  This module decides when to
close that gap:

* ``"never"``     -- statistics stay at load time forever (the drifting
  baseline the paper's re-optimization policies should rescue);
* ``"periodic"``  -- re-ANALYZE a table once ``period`` mutation batches
  accumulated since its last ANALYZE (fires from the database's mutation
  listener, i.e. synchronously after the triggering mutation);
* ``"triggered"`` -- re-ANALYZE the stale tables of a query whose
  *observed* plan-time estimation error exceeded ``q_error_threshold``
  (the feedback-driven policy: pay for ANALYZE only when a query proves
  the statistics wrong).

:meth:`StalenessController.observe` produces the per-query
:class:`StalenessReport`: what the current (possibly stale) statistics
estimated for the query's full join at plan time, what the execution
actually produced, the resulting q-error, and the per-table staleness at
that moment.  ``bench_stale_stats`` aggregates these into the headline
"re-opt advantage under drift" metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.cardinality import DefaultCardinalityEstimator
from repro.plan.logical import Query, SPJQuery
from repro.storage.database import Database

#: The supported re-ANALYZE policies.
POLICIES = ("never", "periodic", "triggered")


@dataclass
class StalenessReport:
    """Plan-time estimate vs. executed cardinality for one query."""

    query_name: str
    #: Full-join cardinality the *current* statistics estimated at plan time.
    estimated_rows: float
    #: Cardinality the execution actually produced for that join.
    actual_rows: float
    #: Mutation batches each referenced base table had pending at plan time.
    table_staleness: dict[str, int] = field(default_factory=dict)
    #: Tables the controller re-ANALYZEd in response (triggered policy).
    reanalyzed: tuple[str, ...] = ()

    @property
    def q_error(self) -> float:
        """max(est/act, act/est), both clamped to >= 1 row."""
        est = max(self.estimated_rows, 1.0)
        act = max(self.actual_rows, 1.0)
        return max(est / act, act / est)

    @property
    def max_staleness(self) -> int:
        """Largest per-table staleness the query planned against."""
        return max(self.table_staleness.values(), default=0)


class StalenessController:
    """Applies one re-ANALYZE policy to an origin database.

    The controller registers itself as a mutation listener (for the
    periodic policy); call :meth:`close` to detach it when done.  All
    re-ANALYZE work is counted in :attr:`reanalyze_count` so experiments
    can report the policy's cost alongside its benefit.
    """

    def __init__(self, database: Database, policy: str = "never",
                 period: int = 5, q_error_threshold: float = 4.0):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown re-ANALYZE policy {policy!r}; expected one of "
                f"{POLICIES}")
        if period <= 0:
            raise ValueError("period must be positive")
        if q_error_threshold < 1.0:
            raise ValueError("q_error_threshold must be >= 1.0")
        self.database = database.origin
        self.policy = policy
        self.period = int(period)
        self.q_error_threshold = float(q_error_threshold)
        self.reanalyze_count = 0
        self.reports: list[StalenessReport] = []
        self._estimator = DefaultCardinalityEstimator(self.database)
        self.database.add_mutation_listener(self._on_mutation)

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def _on_mutation(self, table_name: str) -> None:
        if (self.policy == "periodic"
                and self.database.stats_staleness(table_name) >= self.period):
            self._reanalyze((table_name,))

    def observe(self, query: Query, actual_rows: float) -> StalenessReport:
        """Record one executed query's estimate-vs-actual outcome.

        ``actual_rows`` is the executed cardinality of the query's full
        join (callers usually pass the last iteration's ``result_rows``
        from the :class:`~repro.report.ExecutionReport`).  The estimate is
        recomputed here against the *current* statistics -- exactly what a
        static optimizer believed at plan time.  Under the ``triggered``
        policy, a q-error above the threshold re-ANALYZEs every stale base
        table the query references.
        """
        spj = _largest_leaf(query)
        estimated = float(self._estimator.estimate_rows(
            spj.relations, spj.filters, spj.join_predicates, query.name))
        staleness = {
            relation.table_name:
                self.database.stats_staleness(relation.table_name)
            for relation in spj.relations
            if not relation.is_temp
            and not self.database.is_temp(relation.table_name)
        }
        report = StalenessReport(query_name=query.name,
                                 estimated_rows=estimated,
                                 actual_rows=float(actual_rows),
                                 table_staleness=staleness)
        if (self.policy == "triggered"
                and report.q_error > self.q_error_threshold):
            stale = tuple(sorted(name for name, lag in staleness.items()
                                 if lag > 0))
            report.reanalyzed = self._reanalyze(stale)
        self.reports.append(report)
        return report

    def _reanalyze(self, table_names: tuple[str, ...]) -> tuple[str, ...]:
        for name in table_names:
            self.database.analyze(name)
            self.reanalyze_count += 1
        return tuple(table_names)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @property
    def mean_q_error(self) -> float:
        """Arithmetic mean q-error across every observed query (1.0 if none)."""
        if not self.reports:
            return 1.0
        return sum(report.q_error for report in self.reports) / len(self.reports)

    @property
    def p95_q_error(self) -> float:
        """95th-percentile q-error across observed queries (1.0 if none)."""
        if not self.reports:
            return 1.0
        ordered = sorted(report.q_error for report in self.reports)
        index = min(len(ordered) - 1, int(round(0.95 * (len(ordered) - 1))))
        return ordered[index]

    def close(self) -> None:
        """Detach the controller's mutation listener."""
        self.database.remove_mutation_listener(self._on_mutation)


def _largest_leaf(query: Query) -> SPJQuery:
    """The query's widest SPJ block (its full join, for aggregate trees)."""
    leaves = query.root.spj_leaves()
    if not leaves:
        raise ValueError(f"query {query.name!r} has no SPJ leaves")
    return max(leaves, key=lambda leaf: len(leaf.relations))
