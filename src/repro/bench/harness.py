"""Workload execution harness.

The harness runs a list of queries under a named algorithm and collects the
per-query :class:`~repro.report.ExecutionReport` objects into a
:class:`~repro.report.WorkloadResult`.  Every experiment module builds on it.
The harness only *measures*; formatting lives in
:mod:`repro.bench.reporting` and persistence in :mod:`repro.bench.artifacts`.

Measured time is the executor wall-clock time plus materialization and
statistics-collection time; planner time is excluded for *all* algorithms
because the pure-Python DP planner is disproportionately slow compared to
PostgreSQL's C planner and would otherwise dominate the measurements (see
EXPERIMENTS.md for the full accounting discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.qsa import QSAStrategy
from repro.core.ssa import CostFunction
from repro.executor.subplan_cache import SubplanCache
from repro.optimizer.cardinality import CardinalityEstimator
from repro.plan.logical import Query
from repro.report import WorkloadResult
from repro.reopt.registry import make_algorithm
from repro.storage.database import Database


@dataclass
class HarnessConfig:
    """Shared knobs for a harness run."""

    timeout_seconds: float | None = 30.0
    collect_statistics: bool = True
    qsa_strategy: QSAStrategy = QSAStrategy.FK_CENTER
    cost_function: CostFunction = CostFunction.PHI4
    #: Optional factory producing the cardinality estimator driving the
    #: optimizer (used by the CE-noise robustness study).
    estimator_factory: Callable[[Database], CardinalityEstimator] | None = None
    #: Optional engine-level subplan cache shared across every query (and,
    #: when the same instance is passed to several runs, across whole
    #: algorithms/policies).  ``None`` keeps runs fully independent.
    subplan_cache: SubplanCache | None = None
    #: Executor hot-path toggles: fused selectivity-ordered predicate
    #: evaluation in scans, and build-side semijoin/Bloom filters pushed
    #: into probe-side scans.  On by default.
    fused_kernels: bool = True
    semijoin_pruning: bool = True
    #: Morsel-parallel intra-query execution: scans and hash-join probes
    #: fan out over a worker pool of this width (1 = sequential).
    workers: int = 1
    verbose: bool = False


def run_query(database: Database, query: Query, algorithm: str,
              config: HarnessConfig | None = None):
    """Run a single query under ``algorithm`` and return its report."""
    config = config or HarnessConfig()
    estimator = (config.estimator_factory(database)
                 if config.estimator_factory is not None else None)
    runner = make_algorithm(
        algorithm, database,
        collect_statistics=config.collect_statistics,
        timeout_seconds=config.timeout_seconds,
        qsa_strategy=config.qsa_strategy,
        cost_function=config.cost_function,
        estimator=estimator,
        subplan_cache=config.subplan_cache,
        fused_kernels=config.fused_kernels,
        semijoin_pruning=config.semijoin_pruning,
        workers=config.workers,
    )
    return runner.run(query)


def run_workload(database: Database, queries: Sequence[Query], algorithm: str,
                 config: HarnessConfig | None = None) -> WorkloadResult:
    """Run every query in ``queries`` under ``algorithm``."""
    config = config or HarnessConfig()
    result = WorkloadResult(algorithm=algorithm)
    for query in queries:
        report = run_query(database, query, algorithm, config)
        if config.verbose:
            from repro.bench.reporting import describe_report
            print(describe_report(report))
        result.reports.append(report)
    return result


def serve_generated(generator, n: int, algorithm: str, *,
                    workers: int = 4,
                    users: int = 8,
                    rate: float = 16.0,
                    queue_capacity: int = 16,
                    admission: str = "shed",
                    timeout_seconds: float | None = 30.0,
                    subplan_cache: SubplanCache | None = None,
                    seed: int | None = None,
                    time_scale: float = 1.0,
                    keep_results: bool = False,
                    morsel_workers: int = 1):
    """Served mode: drive ``n`` generated queries through the engine server.

    The concurrent counterpart of :func:`run_generated`: the queries at
    stream positions ``0 .. n - 1`` are submitted by ``users`` simulated
    users whose Poisson schedules sum to ``rate`` arrivals per virtual
    second, admitted through a bounded queue (``admission`` is ``"shed"``
    or ``"block"``), and executed by ``workers`` threads — each against
    its own session view of the generator's database, sharing
    ``subplan_cache`` when given.  Returns a
    :class:`~repro.serving.driver.ServingResult` whose ``summary`` holds
    p50/p95/p99 latency and throughput; ``result.workload_result(algorithm)``
    recovers the harness-shaped per-query reports.  See ARCHITECTURE.md
    ("Serving") for the full driver → queue → pool → reporter pipeline.
    """
    from repro.serving.admission import AdmissionPolicy
    from repro.serving.driver import run_served
    from repro.serving.schedule import Repeat, UserSpec, build_arrivals
    from repro.serving.server import ServingConfig

    queries = generator.generate(n)
    per_user = -(-n // max(users, 1))  # ceil: enough events before the cap
    specs = tuple(UserSpec(uid, Repeat(rate=rate / users, count=per_user))
                  for uid in range(users))
    arrivals = build_arrivals(
        specs, seed=generator.seed if seed is None else seed, max_events=n)
    config = ServingConfig(
        algorithm=algorithm, workers=workers, queue_capacity=queue_capacity,
        admission=AdmissionPolicy(admission), timeout_seconds=timeout_seconds,
        subplan_cache=subplan_cache, keep_results=keep_results,
        morsel_workers=morsel_workers)
    return run_served(generator.database, queries, arrivals, config,
                      time_scale=time_scale)


def run_generated(generator, n: int, algorithm: str,
                  config: HarnessConfig | None = None,
                  start: int = 0) -> WorkloadResult:
    """Generated-stream mode: run ``n`` queries from a seeded generator.

    ``generator`` is a :class:`~repro.workloads.sqlgen.RandomQueryGenerator`
    (or anything exposing ``database`` and ``generate(n, start)``); the
    queries at stream positions ``start .. start + n - 1`` are materialized
    and run under ``algorithm`` against the generator's own database.
    Because the stream is a pure function of the seed, calling this for
    several algorithms (or across processes) compares them on the *identical*
    workload without shipping query lists around.
    """
    queries = generator.generate(n, start=start)
    return run_workload(generator.database, queries, algorithm, config)
