"""Plain-text reporting helpers shared by the experiment modules.

Every experiment renders its reproduction of the corresponding paper table
or figure as an ASCII table (attached to the
:class:`~repro.bench.artifacts.ExperimentResult` it returns) so that the
benchmark output can be compared to the paper side by side.  Formatting
lives here, measurement in :mod:`repro.bench.harness`, and persistence in
:mod:`repro.bench.artifacts`.
"""

from __future__ import annotations

from typing import Sequence

from repro.report import ExecutionReport, WorkloadResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render a simple ASCII table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [
        [str(h)] for h in headers]
    widths = [max(len(value) for value in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-friendly rendering of a workload execution time."""
    if seconds >= 100:
        return f"{seconds:.0f} s"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    return f"{seconds * 1000:.1f} ms"


def describe_report(report: ExecutionReport) -> str:
    """One status line per executed query (the harness's verbose output)."""
    status = ("TO" if report.timed_out
              else f"{report.total_time * 1000:8.1f} ms")
    return (f"  [{report.algorithm:>10s}] {report.query_name:<12s} {status} "
            f"({report.num_iterations} iterations, "
            f"{report.materializations} materializations)")


def summarize_workloads(results: dict[str, WorkloadResult]) -> list[tuple]:
    """One summary row per algorithm: time, timeouts, materializations."""
    rows = []
    for name, result in results.items():
        total_mats = sum(r.materializations for r in result.reports)
        rows.append((
            name,
            format_seconds(result.total_time),
            result.timeouts,
            total_mats,
        ))
    return rows


def relative_slowdown(results: dict[str, WorkloadResult],
                      reference: str = "Optimal") -> dict[str, float]:
    """Per-algorithm slowdown factor relative to ``reference``."""
    base = results[reference].total_time
    if base <= 0:
        return {name: float("inf") for name in results}
    return {name: result.total_time / base for name, result in results.items()}
