"""Persisted experiment artifacts: the common result type and its JSON form.

Every experiment module returns an :class:`ExperimentResult`; the CLI runner
(``python -m repro.cli``, see :mod:`repro.cli`) persists one schema-versioned
JSON artifact per experiment under ``results/`` and merges them into
``BENCH_summary.json``.  The artifact schema is documented field by field in
EXPERIMENTS.md; :func:`validate_artifact` is the single source of truth for
what a well-formed artifact looks like, and bumping :data:`SCHEMA_VERSION`
is the only way the shape may change.

The separation of concerns is deliberate:

* experiment modules **measure** (build workloads, run algorithms) and
  attach pre-rendered ASCII ``tables`` for humans;
* this module **serializes** (per-query records, per-key summaries, JSON
  round-trip, shard merging);
* :mod:`repro.cli` **orchestrates** (process pool, resume-skip, summary).
"""

from __future__ import annotations

import enum
import json
import os
import subprocess
import tempfile
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.report import WorkloadResult

#: Version of the persisted artifact shape.  Readers reject other versions;
#: any field addition/removal/retyping must bump this.
SCHEMA_VERSION = 1

#: Top-level fields every artifact must carry (see EXPERIMENTS.md).
REQUIRED_FIELDS = (
    "schema_version", "experiment", "artifact", "params", "git_rev",
    "started_at", "finished_at", "wall_clock_seconds", "queries", "summary",
    "tables",
)

#: Fields of each entry of the artifact's ``queries`` list.
QUERY_RECORD_FIELDS = (
    "key", "query", "algorithm", "total_time", "timed_out", "iterations",
    "materializations", "materialized_bytes", "planner_invocations",
)


@dataclass
class ExperimentResult:
    """Common return type of every experiment module's ``run()``.

    ``data`` keeps the experiment-specific structured outcome (the shape the
    module's tests assert on); ``workloads`` flattens every
    :class:`~repro.report.WorkloadResult` under a stable string key so the
    per-query timings can be serialized uniformly; ``summary`` holds the
    JSON-safe headline numbers and ``tables`` the pre-rendered ASCII
    reproduction of the paper artifact.
    """

    name: str
    artifact: str
    params: dict[str, Any]
    data: Any
    workloads: dict[str, WorkloadResult] = field(default_factory=dict)
    summary: dict[str, Any] = field(default_factory=dict)
    tables: list[str] = field(default_factory=list)

    def render(self) -> str:
        """The human-readable reproduction (what ``verbose=True`` prints)."""
        return "\n\n".join(self.tables)

    def query_records(self) -> list[dict[str, Any]]:
        """One flat record per (key, query) pair — the artifact's ``queries``."""
        return query_records(self.workloads)


def query_records(workloads: Mapping[str, WorkloadResult]) -> list[dict[str, Any]]:
    """Flatten per-query execution reports into JSON-safe records."""
    records: list[dict[str, Any]] = []
    for key, result in workloads.items():
        for report in result.reports:
            records.append({
                "key": key,
                "query": report.query_name,
                "algorithm": report.algorithm,
                "total_time": report.total_time,
                "timed_out": report.timed_out,
                "iterations": report.num_iterations,
                "materializations": report.materializations,
                "materialized_bytes": report.materialized_bytes,
                "planner_invocations": report.planner_invocations,
            })
    return records


def per_key_summary(records: Sequence[Mapping[str, Any]]) -> dict[str, dict[str, Any]]:
    """Aggregate query records per key: totals a reader can compare at a glance."""
    summary: dict[str, dict[str, Any]] = {}
    for record in records:
        entry = summary.setdefault(record["key"], {
            "total_time": 0.0, "queries": 0, "timeouts": 0,
            "materializations": 0, "materialized_bytes": 0,
        })
        entry["total_time"] += record["total_time"]
        entry["queries"] += 1
        entry["timeouts"] += int(record["timed_out"])
        entry["materializations"] += record["materializations"]
        entry["materialized_bytes"] += record["materialized_bytes"]
    return summary


def base_summary(workloads: Mapping[str, WorkloadResult]) -> dict[str, Any]:
    """The summary skeleton shared by every experiment: per-key aggregates."""
    return {"per_key": per_key_summary(query_records(workloads))}


def grid_result(*, name: str, artifact: str, params: dict[str, Any],
                results: Mapping[str, Mapping[str, WorkloadResult]],
                time_header: str, title_format: str) -> ExperimentResult:
    """Assemble the :class:`ExperimentResult` of an index-config × algorithm
    grid (the shape Figures 11–14 share): one ASCII table per index config
    (``title_format`` receives ``{index}``), workloads flattened under
    ``"{index}/{algorithm}"`` keys, and the generic per-key summary."""
    from repro.bench.reporting import format_seconds, format_table
    tables = []
    for index_name, per_algorithm in results.items():
        rows = [[algorithm, format_seconds(res.total_time), res.timeouts or ""]
                for algorithm, res in per_algorithm.items()]
        tables.append(format_table(
            ["Algorithm", time_header, "Timeouts"], rows,
            title=title_format.format(index=index_name)))
    workloads = {f"{index_name}/{algorithm}": res
                 for index_name, per_algorithm in results.items()
                 for algorithm, res in per_algorithm.items()}
    return ExperimentResult(
        name=name, artifact=artifact, params=params, data=dict(results),
        workloads=workloads, summary=base_summary(workloads), tables=tables)


def jsonify(value: Any) -> Any:
    """Coerce experiment params/summaries to JSON-serializable values."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        return {_json_key(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [jsonify(v) for v in value]
        return sorted(items, key=str) if isinstance(value, (set, frozenset)) else items
    if isinstance(value, Path):
        return str(value)
    if hasattr(value, "item") and callable(value.item):  # numpy scalars
        return value.item()
    return value


def _json_key(key: Any) -> str:
    if isinstance(key, enum.Enum):
        return str(key.value)
    if isinstance(key, tuple):
        return "/".join(str(_json_key(part)) for part in key)
    return str(key)


def git_rev(repo_root: Path | None = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root or Path.cwd(), capture_output=True, text=True,
            timeout=10, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def utc_now() -> str:
    """ISO-8601 UTC timestamp used in artifacts."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


# ----------------------------------------------------------------------
# Artifact build / merge / IO / validation
# ----------------------------------------------------------------------

def build_artifact(result: ExperimentResult, *,
                   started_at: str, finished_at: str,
                   wall_clock_seconds: float,
                   rev: str | None = None) -> dict[str, Any]:
    """Serialize an :class:`ExperimentResult` into an artifact dict."""
    return {
        "schema_version": SCHEMA_VERSION,
        "experiment": result.name,
        "artifact": result.artifact,
        "params": jsonify(result.params),
        "git_rev": rev if rev is not None else git_rev(),
        "started_at": started_at,
        "finished_at": finished_at,
        "wall_clock_seconds": wall_clock_seconds,
        "queries": result.query_records(),
        "summary": jsonify(result.summary),
        "tables": list(result.tables),
    }


def partial_artifact(result: ExperimentResult,
                     wall_clock_seconds: float) -> dict[str, Any]:
    """The picklable per-shard payload a pool worker sends back to the CLI."""
    return {
        "experiment": result.name,
        "artifact": result.artifact,
        "params": jsonify(result.params),
        "queries": result.query_records(),
        "summary": jsonify(result.summary),
        "tables": list(result.tables),
        "wall_clock_seconds": wall_clock_seconds,
    }


def merge_partials(partials: Sequence[Mapping[str, Any]], *,
                   shard_param: str | None,
                   started_at: str, finished_at: str,
                   wall_clock_seconds: float,
                   rev: str | None = None) -> dict[str, Any]:
    """Merge per-shard payloads into one artifact.

    A single partial keeps its experiment-specific summary and tables
    verbatim.  For a genuinely sharded run the per-query records are
    concatenated, the shard param (e.g. ``families``) becomes the sorted
    union, and the summary is rebuilt from the merged records — per-key
    aggregates only, flagged with ``"sharded": true`` (experiment-specific
    extras such as category frequencies are only computed by unsharded
    runs).
    """
    if not partials:
        raise ValueError("merge_partials needs at least one shard payload")
    first = partials[0]
    merged: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "experiment": first["experiment"],
        "artifact": first["artifact"],
        "git_rev": rev if rev is not None else git_rev(),
        "started_at": started_at,
        "finished_at": finished_at,
        "wall_clock_seconds": wall_clock_seconds,
        "worker_seconds": sum(p["wall_clock_seconds"] for p in partials),
    }
    if len(partials) == 1:
        merged.update(params=dict(first["params"]), queries=list(first["queries"]),
                      summary=dict(first["summary"]), tables=list(first["tables"]))
        return merged

    params = dict(first["params"])
    if shard_param is not None:
        union: list = []
        for partial in partials:
            values = partial["params"].get(shard_param) or []
            union.extend(v for v in values if v not in union)
        params[shard_param] = sorted(union, key=str)
    records = [record for partial in partials for record in partial["queries"]]
    per_key = per_key_summary(records)
    merged.update(
        params=params,
        queries=records,
        summary={"per_key": per_key, "sharded": True, "shards": len(partials)},
        tables=[render_per_key(per_key,
                               title=f"{first['experiment']} (merged from "
                                     f"{len(partials)} shards)")],
    )
    return merged


def render_per_key(per_key: Mapping[str, Mapping[str, Any]],
                   title: str | None = None) -> str:
    """ASCII rendering of a per-key summary (used for merged shard artifacts)."""
    from repro.bench.reporting import format_seconds, format_table
    rows = [[key, entry["queries"], format_seconds(entry["total_time"]),
             entry["timeouts"] or "", entry["materializations"]]
            for key, entry in sorted(per_key.items())]
    return format_table(["Key", "Queries", "Total time", "Timeouts",
                         "Materializations"], rows, title=title)


def write_artifact(path: Path, artifact: Mapping[str, Any]) -> None:
    """Atomically persist an artifact (write to a temp file, then rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_artifact(path: Path) -> dict[str, Any]:
    """Load a persisted artifact (no validation; see :func:`validate_artifact`)."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def validate_artifact(artifact: Any) -> list[str]:
    """Return every schema violation of ``artifact`` (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(artifact, Mapping):
        return [f"artifact is {type(artifact).__name__}, expected an object"]
    for name in REQUIRED_FIELDS:
        if name not in artifact:
            errors.append(f"missing field {name!r}")
    if errors:
        return errors
    if artifact["schema_version"] != SCHEMA_VERSION:
        errors.append(f"schema_version {artifact['schema_version']!r} != "
                      f"{SCHEMA_VERSION}")
    if not isinstance(artifact["params"], Mapping):
        errors.append("params is not an object")
    if not isinstance(artifact["summary"], Mapping):
        errors.append("summary is not an object")
    if not isinstance(artifact["tables"], list):
        errors.append("tables is not a list")
    if not isinstance(artifact["queries"], list):
        errors.append("queries is not a list")
    else:
        for index, record in enumerate(artifact["queries"]):
            if not isinstance(record, Mapping):
                errors.append(f"queries[{index}] is not an object")
                continue
            missing = [f for f in QUERY_RECORD_FIELDS if f not in record]
            if missing:
                errors.append(f"queries[{index}] missing {', '.join(missing)}")
    return errors


def matches_params(artifact: Mapping[str, Any],
                   requested: Mapping[str, Any]) -> bool:
    """True when every explicitly requested knob equals the artifact's.

    Used by the resume-skip check: a completed artifact is only reused when
    the knobs the caller pinned on the command line (scale, families, ...)
    match what the artifact was produced with.  List-valued knobs compare
    order-insensitively because sharded runs persist the sorted union.
    """
    params = artifact.get("params", {})
    for key, value in requested.items():
        have = params.get(key, _MISSING)
        want = jsonify(value)
        if isinstance(want, list) and isinstance(have, list):
            if sorted(have, key=str) != sorted(want, key=str):
                return False
        elif have != want:
            return False
    return True


_MISSING = object()


# ----------------------------------------------------------------------
# BENCH_summary.json
# ----------------------------------------------------------------------

def build_bench_summary(artifacts: Mapping[str, Mapping[str, Any]],
                        rev: str | None = None) -> dict[str, Any]:
    """Merge per-experiment artifacts into the ``BENCH_summary.json`` shape."""
    experiments = {}
    for name in sorted(artifacts):
        artifact = artifacts[name]
        records = artifact.get("queries", [])
        experiments[name] = {
            "artifact": artifact.get("artifact"),
            "params": artifact.get("params", {}),
            "git_rev": artifact.get("git_rev"),
            "finished_at": artifact.get("finished_at"),
            "wall_clock_seconds": artifact.get("wall_clock_seconds"),
            "queries": len(records),
            "measured_seconds": sum(r.get("total_time", 0.0) for r in records),
            "timeouts": sum(1 for r in records if r.get("timed_out")),
            "per_key": per_key_summary(records),
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_at": utc_now(),
        "git_rev": rev if rev is not None else git_rev(),
        "experiments": experiments,
    }
