"""Benchmark harness and reporting utilities."""

from repro.bench.harness import HarnessConfig, run_generated, run_query, run_workload
from repro.bench.reporting import format_table, summarize_workloads

__all__ = ["HarnessConfig", "run_query", "run_workload", "run_generated",
           "format_table", "summarize_workloads"]
