"""Benchmark harness, reporting, and persisted-artifact utilities."""

from repro.bench.artifacts import (
    SCHEMA_VERSION,
    ExperimentResult,
    build_artifact,
    load_artifact,
    validate_artifact,
    write_artifact,
)
from repro.bench.harness import HarnessConfig, run_generated, run_query, run_workload
from repro.bench.reporting import format_table, summarize_workloads

__all__ = ["HarnessConfig", "run_query", "run_workload", "run_generated",
           "format_table", "summarize_workloads", "ExperimentResult",
           "SCHEMA_VERSION", "build_artifact", "write_artifact",
           "load_artifact", "validate_artifact"]
