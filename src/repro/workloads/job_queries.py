"""JOB-style query catalogue over the synthetic IMDB schema.

The Join Order Benchmark contains 113 hand-written queries in 33 families
(1a, 1b, ... 33c); 91 of them return non-empty results and are used by the
paper.  This module provides 91 queries with the same construction
principles:

* every query is a pure SPJ block with JOB-style ``MIN(...)`` outputs;
* join graphs follow the *inverse star* pattern (several fact tables --
  ``cast_info``, ``movie_keyword``, ``movie_companies``, ``movie_info`` --
  sharing the ``title`` dimension), ranging from 3 to 10 relations;
* filters mix numeric ranges on correlated columns
  (``title.production_year``), skewed categorical equality
  (``company_name.country_code``, ``cast_info.note``), and string patterns
  on skewed columns (``keyword.keyword``), so that cardinality estimates
  range from accurate to catastrophically wrong.

Queries are named ``<family><variant>`` (``1a``, ``1b``, ...), mirroring JOB.
"""

from __future__ import annotations

from repro.plan.logical import Query
from repro.workloads.spec import (
    any_of,
    between,
    build_spj,
    eq,
    ge,
    gt,
    isin,
    le,
    like,
    lt,
    ne,
    prefix,
)

# ----------------------------------------------------------------------
# Family definitions.  Each family fixes the join shape; each variant is a
# different filter list.  Aliases follow JOB conventions.
# ----------------------------------------------------------------------
_FAMILIES: list[dict] = [
    {   # 1: company-filtered movies (mc at the center)
        "relations": {"t": "title", "mc": "movie_companies", "ct": "company_type"},
        "joins": [("mc.movie_id", "t.id"), ("mc.company_type_id", "ct.id")],
        "outputs": ["t.title", "t.production_year"],
        "variants": [
            [eq("ct.kind", "production companies"), gt("t.production_year", 2010)],
            [eq("ct.kind", "distributors"), between("t.production_year", 1990, 2000)],
            [eq("ct.kind", "production companies"), like("mc.note", "co-production")],
        ],
    },
    {   # 2: keyword lookups (mk at the center)
        "relations": {"t": "title", "mk": "movie_keyword", "k": "keyword"},
        "joins": [("mk.movie_id", "t.id"), ("mk.keyword_id", "k.id")],
        "outputs": ["t.title"],
        "variants": [
            [eq("k.keyword", "superhero"), gt("t.production_year", 2005)],
            [eq("k.keyword", "sequel")],
            [prefix("k.keyword", "kw_001"), lt("t.production_year", 1990)],
            [isin("k.keyword", ("murder", "blood", "revenge")),
             gt("t.production_year", 2000)],
        ],
    },
    {   # 3: keyword + kind
        "relations": {"t": "title", "mk": "movie_keyword", "k": "keyword",
                      "kt": "kind_type"},
        "joins": [("mk.movie_id", "t.id"), ("mk.keyword_id", "k.id"),
                  ("t.kind_id", "kt.id")],
        "outputs": ["t.title"],
        "variants": [
            [eq("kt.kind", "movie"), eq("k.keyword", "love")],
            [eq("kt.kind", "tv series"), prefix("k.keyword", "kw_00")],
            [eq("kt.kind", "movie"), like("k.keyword", "based"),
             gt("t.production_year", 2008)],
        ],
    },
    {   # 4: rating info through movie_info_idx
        "relations": {"t": "title", "mi_idx": "movie_info_idx", "it": "info_type"},
        "joins": [("mi_idx.movie_id", "t.id"), ("mi_idx.info_type_id", "it.id")],
        "outputs": ["t.title", "mi_idx.info"],
        "variants": [
            [eq("it.info", "rating"), gt("mi_idx.info", "8.0")],
            [eq("it.info", "votes"), gt("t.production_year", 2005)],
            [eq("it.info", "rating"), lt("mi_idx.info", "3.0"),
             gt("t.production_year", 2000)],
        ],
    },
    {   # 5: production companies + movie info
        "relations": {"t": "title", "mc": "movie_companies", "ct": "company_type",
                      "mi": "movie_info", "it": "info_type"},
        "joins": [("mc.movie_id", "t.id"), ("mc.company_type_id", "ct.id"),
                  ("mi.movie_id", "t.id"), ("mi.info_type_id", "it.id")],
        "outputs": ["t.title"],
        "variants": [
            [eq("ct.kind", "production companies"), eq("it.info", "genres"),
             eq("mi.info", "Drama")],
            [eq("ct.kind", "distributors"), eq("it.info", "languages"),
             gt("t.production_year", 2010)],
            [eq("ct.kind", "production companies"), eq("it.info", "genres"),
             isin("mi.info", ("Horror", "Thriller")), gt("t.production_year", 1995)],
        ],
    },
    {   # 6: the paper's running example (Figure 8): mk and ci centers
        "relations": {"t": "title", "mk": "movie_keyword", "k": "keyword",
                      "ci": "cast_info", "n": "name"},
        "joins": [("mk.movie_id", "t.id"), ("mk.keyword_id", "k.id"),
                  ("ci.movie_id", "t.id"), ("ci.person_id", "n.id")],
        "outputs": ["k.keyword", "n.name", "t.title"],
        "variants": [
            [eq("k.keyword", "superhero"), eq("n.gender", "m"),
             gt("t.production_year", 2010)],
            [eq("k.keyword", "sequel"), gt("t.production_year", 2005)],
            [prefix("k.keyword", "kw_000"), eq("n.gender", "f")],
            [eq("k.keyword", "love"), like("n.name", "person_000")],
        ],
    },
    {   # 7: people and their aka names
        "relations": {"t": "title", "ci": "cast_info", "n": "name",
                      "an": "aka_name"},
        "joins": [("ci.movie_id", "t.id"), ("ci.person_id", "n.id"),
                  ("an.person_id", "n.id")],
        "outputs": ["n.name", "t.title"],
        "variants": [
            [eq("n.gender", "f"), gt("t.production_year", 2010)],
            [like("ci.note", "producer"), between("t.production_year", 1980, 1995)],
            [eq("n.gender", "m"), like("an.name", "aka_000"),
             gt("t.production_year", 2000)],
        ],
    },
    {   # 8: role-constrained cast
        "relations": {"t": "title", "ci": "cast_info", "n": "name",
                      "rt": "role_type"},
        "joins": [("ci.movie_id", "t.id"), ("ci.person_id", "n.id"),
                  ("ci.role_id", "rt.id")],
        "outputs": ["n.name", "t.title"],
        "variants": [
            [eq("rt.role", "actress"), gt("t.production_year", 2005)],
            [eq("rt.role", "producer"), like("ci.note", "executive")],
            [eq("rt.role", "writer"), eq("n.gender", "f"),
             gt("t.production_year", 1990)],
        ],
    },
    {   # 9: companies and cast together (the paper's 9c-style shape)
        "relations": {"t": "title", "ci": "cast_info", "n": "name",
                      "mc": "movie_companies", "cn": "company_name",
                      "an": "aka_name"},
        "joins": [("ci.movie_id", "t.id"), ("ci.person_id", "n.id"),
                  ("mc.movie_id", "t.id"), ("mc.company_id", "cn.id"),
                  ("an.person_id", "n.id")],
        "outputs": ["an.name", "t.title"],
        "variants": [
            [eq("cn.country_code", "[us]"), eq("n.gender", "f"),
             gt("t.production_year", 2005)],
            [eq("cn.country_code", "[jp]"), like("ci.note", "voice")],
            [eq("cn.country_code", "[us]"), like("ci.note", "voice"),
             eq("n.gender", "f"), gt("t.production_year", 2000)],
        ],
    },
    {   # 10: character names and companies
        "relations": {"t": "title", "ci": "cast_info", "chn": "char_name",
                      "rt": "role_type", "mc": "movie_companies",
                      "cn": "company_name"},
        "joins": [("ci.movie_id", "t.id"), ("ci.person_role_id", "chn.id"),
                  ("ci.role_id", "rt.id"), ("mc.movie_id", "t.id"),
                  ("mc.company_id", "cn.id")],
        "outputs": ["chn.name", "t.title"],
        "variants": [
            [eq("rt.role", "actor"), eq("cn.country_code", "[us]"),
             gt("t.production_year", 2010)],
            [eq("rt.role", "actress"), ne("cn.country_code", "[us]")],
            [eq("rt.role", "actor"), like("ci.note", "uncredited"),
             gt("t.production_year", 2000)],
        ],
    },
    {   # 11: keywords + companies (fact-fact through title)
        "relations": {"t": "title", "mk": "movie_keyword", "k": "keyword",
                      "mc": "movie_companies", "cn": "company_name",
                      "ct": "company_type"},
        "joins": [("mk.movie_id", "t.id"), ("mk.keyword_id", "k.id"),
                  ("mc.movie_id", "t.id"), ("mc.company_id", "cn.id"),
                  ("mc.company_type_id", "ct.id")],
        "outputs": ["cn.name", "t.title"],
        "variants": [
            [eq("k.keyword", "sequel"), eq("cn.country_code", "[de]"),
             eq("ct.kind", "production companies")],
            [isin("k.keyword", ("superhero", "revenge")),
             eq("cn.country_code", "[us]")],
            [prefix("k.keyword", "kw_0"), eq("ct.kind", "distributors"),
             gt("t.production_year", 2012)],
        ],
    },
    {   # 12: info + rating + companies
        "relations": {"t": "title", "mi": "movie_info", "it1": "info_type",
                      "mi_idx": "movie_info_idx", "it2": "info_type",
                      "mc": "movie_companies", "cn": "company_name"},
        "joins": [("mi.movie_id", "t.id"), ("mi.info_type_id", "it1.id"),
                  ("mi_idx.movie_id", "t.id"), ("mi_idx.info_type_id", "it2.id"),
                  ("mc.movie_id", "t.id"), ("mc.company_id", "cn.id")],
        "outputs": ["t.title", "mi_idx.info"],
        "variants": [
            [eq("it1.info", "genres"), eq("mi.info", "Drama"),
             eq("it2.info", "rating"), gt("mi_idx.info", "7.0"),
             eq("cn.country_code", "[us]")],
            [eq("it1.info", "genres"), eq("mi.info", "Horror"),
             eq("it2.info", "rating"), eq("cn.country_code", "[gb]")],
            [eq("it1.info", "languages"), eq("it2.info", "votes"),
             gt("t.production_year", 2008), eq("cn.country_code", "[us]")],
        ],
    },
    {   # 13: kind + info + rating
        "relations": {"t": "title", "kt": "kind_type", "mi": "movie_info",
                      "it1": "info_type", "mi_idx": "movie_info_idx",
                      "it2": "info_type"},
        "joins": [("t.kind_id", "kt.id"), ("mi.movie_id", "t.id"),
                  ("mi.info_type_id", "it1.id"), ("mi_idx.movie_id", "t.id"),
                  ("mi_idx.info_type_id", "it2.id")],
        "outputs": ["t.title", "mi.info"],
        "variants": [
            [eq("kt.kind", "movie"), eq("it1.info", "genres"),
             eq("it2.info", "rating"), gt("mi_idx.info", "8.0")],
            [eq("kt.kind", "tv series"), eq("it1.info", "release dates"),
             eq("it2.info", "votes")],
            [eq("kt.kind", "movie"), eq("it1.info", "genres"),
             eq("mi.info", "Comedy"), eq("it2.info", "rating"),
             between("t.production_year", 2000, 2015)],
        ],
    },
    {   # 14: cast + keyword + kind (6 relations, two fact tables)
        "relations": {"t": "title", "kt": "kind_type", "mk": "movie_keyword",
                      "k": "keyword", "ci": "cast_info", "n": "name"},
        "joins": [("t.kind_id", "kt.id"), ("mk.movie_id", "t.id"),
                  ("mk.keyword_id", "k.id"), ("ci.movie_id", "t.id"),
                  ("ci.person_id", "n.id")],
        "outputs": ["t.title", "n.name"],
        "variants": [
            [eq("kt.kind", "movie"), eq("k.keyword", "murder"),
             eq("n.gender", "m"), gt("t.production_year", 2005)],
            [eq("kt.kind", "movie"), isin("k.keyword", ("love", "revenge")),
             eq("n.gender", "f")],
            [eq("kt.kind", "tv series"), prefix("k.keyword", "kw_001"),
             gt("t.production_year", 2010)],
        ],
    },
    {   # 15: the paper's 15c-style shape (two 4-relation halves sharing t)
        "relations": {"t": "title", "ci": "cast_info", "rt": "role_type",
                      "chn": "char_name", "mc": "movie_companies",
                      "cn": "company_name", "ct": "company_type"},
        "joins": [("ci.movie_id", "t.id"), ("ci.role_id", "rt.id"),
                  ("ci.person_role_id", "chn.id"), ("mc.movie_id", "t.id"),
                  ("mc.company_id", "cn.id"), ("mc.company_type_id", "ct.id")],
        "outputs": ["chn.name", "cn.name", "t.title"],
        "variants": [
            [eq("rt.role", "actor"), eq("cn.country_code", "[us]"),
             eq("ct.kind", "production companies"), gt("t.production_year", 2010)],
            [eq("rt.role", "actress"), eq("ct.kind", "distributors"),
             like("chn.name", "character_000")],
            [eq("rt.role", "director"), eq("cn.country_code", "[fr]"),
             eq("ct.kind", "production companies")],
        ],
    },
    {   # 16: person-centric with keywords
        "relations": {"t": "title", "ci": "cast_info", "n": "name",
                      "an": "aka_name", "mk": "movie_keyword", "k": "keyword"},
        "joins": [("ci.movie_id", "t.id"), ("ci.person_id", "n.id"),
                  ("an.person_id", "n.id"), ("mk.movie_id", "t.id"),
                  ("mk.keyword_id", "k.id")],
        "outputs": ["an.name", "t.title"],
        "variants": [
            [eq("k.keyword", "superhero"), eq("n.gender", "m")],
            [eq("k.keyword", "based-on-novel"), gt("t.production_year", 2000)],
            [prefix("k.keyword", "kw_000"), eq("n.gender", "f"),
             gt("t.production_year", 1995)],
        ],
    },
    {   # 17: big inverse star: cast + keyword + companies (8 relations)
        "relations": {"t": "title", "ci": "cast_info", "n": "name",
                      "mk": "movie_keyword", "k": "keyword",
                      "mc": "movie_companies", "cn": "company_name",
                      "ct": "company_type"},
        "joins": [("ci.movie_id", "t.id"), ("ci.person_id", "n.id"),
                  ("mk.movie_id", "t.id"), ("mk.keyword_id", "k.id"),
                  ("mc.movie_id", "t.id"), ("mc.company_id", "cn.id"),
                  ("mc.company_type_id", "ct.id")],
        "outputs": ["n.name", "t.title"],
        "variants": [
            [eq("k.keyword", "sequel"), eq("cn.country_code", "[us]"),
             eq("ct.kind", "production companies"), eq("n.gender", "m"),
             gt("t.production_year", 2010)],
            [eq("k.keyword", "murder"), eq("cn.country_code", "[gb]"),
             eq("ct.kind", "distributors")],
            [isin("k.keyword", ("superhero", "sequel")),
             eq("cn.country_code", "[us]"), like("ci.note", "producer")],
        ],
    },
    {   # 18: info + cast
        "relations": {"t": "title", "mi": "movie_info", "it": "info_type",
                      "ci": "cast_info", "n": "name"},
        "joins": [("mi.movie_id", "t.id"), ("mi.info_type_id", "it.id"),
                  ("ci.movie_id", "t.id"), ("ci.person_id", "n.id")],
        "outputs": ["t.title", "n.name"],
        "variants": [
            [eq("it.info", "genres"), eq("mi.info", "Action"), eq("n.gender", "m")],
            [eq("it.info", "budget"), gt("t.production_year", 2005),
             eq("n.gender", "f")],
            [eq("it.info", "genres"), isin("mi.info", ("Drama", "Romance")),
             like("ci.note", "voice")],
        ],
    },
    {   # 19: voice actors in US productions
        "relations": {"t": "title", "ci": "cast_info", "n": "name",
                      "rt": "role_type", "chn": "char_name",
                      "mc": "movie_companies", "cn": "company_name"},
        "joins": [("ci.movie_id", "t.id"), ("ci.person_id", "n.id"),
                  ("ci.role_id", "rt.id"), ("ci.person_role_id", "chn.id"),
                  ("mc.movie_id", "t.id"), ("mc.company_id", "cn.id")],
        "outputs": ["n.name", "t.title"],
        "variants": [
            [like("ci.note", "voice"), eq("cn.country_code", "[us]"),
             eq("rt.role", "actress"), gt("t.production_year", 2005)],
            [like("ci.note", "voice"), eq("rt.role", "actor"),
             eq("cn.country_code", "[jp]")],
            [eq("rt.role", "composer"), eq("cn.country_code", "[us]"),
             between("t.production_year", 1990, 2010)],
        ],
    },
    {   # 20: keyword + character (deep chain)
        "relations": {"t": "title", "kt": "kind_type", "mk": "movie_keyword",
                      "k": "keyword", "ci": "cast_info", "chn": "char_name"},
        "joins": [("t.kind_id", "kt.id"), ("mk.movie_id", "t.id"),
                  ("mk.keyword_id", "k.id"), ("ci.movie_id", "t.id"),
                  ("ci.person_role_id", "chn.id")],
        "outputs": ["chn.name", "t.title"],
        "variants": [
            [eq("kt.kind", "movie"), eq("k.keyword", "superhero"),
             prefix("chn.name", "character_00")],
            [eq("kt.kind", "movie"), eq("k.keyword", "sequel"),
             gt("t.production_year", 2012)],
            [eq("kt.kind", "tv movie"), prefix("k.keyword", "kw_00")],
        ],
    },
    {   # 21: movie links (self-referencing title)
        "relations": {"t": "title", "ml": "movie_link", "lt": "link_type",
                      "t2": "title"},
        "joins": [("ml.movie_id", "t.id"), ("ml.link_type_id", "lt.id"),
                  ("ml.linked_movie_id", "t2.id")],
        "outputs": ["t.title", "t2.title"],
        "variants": [
            [eq("lt.link", "follows"), gt("t.production_year", 2000)],
            [eq("lt.link", "features"), gt("t.production_year", 2005),
             gt("t2.production_year", 2005)],
        ],
    },
    {   # 22: links + keywords
        "relations": {"t": "title", "ml": "movie_link", "lt": "link_type",
                      "t2": "title", "mk": "movie_keyword", "k": "keyword"},
        "joins": [("ml.movie_id", "t.id"), ("ml.link_type_id", "lt.id"),
                  ("ml.linked_movie_id", "t2.id"), ("mk.movie_id", "t.id"),
                  ("mk.keyword_id", "k.id")],
        "outputs": ["t.title", "t2.title"],
        "variants": [
            [eq("lt.link", "follows"), eq("k.keyword", "sequel")],
            [eq("lt.link", "followed by"), eq("k.keyword", "superhero"),
             gt("t.production_year", 2008)],
        ],
    },
    {   # 23: full cast + info + company (9 relations)
        "relations": {"t": "title", "kt": "kind_type", "ci": "cast_info",
                      "n": "name", "rt": "role_type", "mc": "movie_companies",
                      "cn": "company_name", "mi": "movie_info",
                      "it": "info_type"},
        "joins": [("t.kind_id", "kt.id"), ("ci.movie_id", "t.id"),
                  ("ci.person_id", "n.id"), ("ci.role_id", "rt.id"),
                  ("mc.movie_id", "t.id"), ("mc.company_id", "cn.id"),
                  ("mi.movie_id", "t.id"), ("mi.info_type_id", "it.id")],
        "outputs": ["n.name", "t.title"],
        "variants": [
            [eq("kt.kind", "movie"), eq("rt.role", "actor"),
             eq("cn.country_code", "[us]"), eq("it.info", "genres"),
             eq("mi.info", "Action"), gt("t.production_year", 2010)],
            [eq("kt.kind", "movie"), eq("rt.role", "producer"),
             eq("cn.country_code", "[fr]"), eq("it.info", "languages")],
            [eq("kt.kind", "tv series"), eq("rt.role", "actress"),
             eq("it.info", "genres"), eq("mi.info", "Drama"),
             eq("cn.country_code", "[us]")],
        ],
    },
    {   # 24: keyword + rating + cast (8 relations)
        "relations": {"t": "title", "mk": "movie_keyword", "k": "keyword",
                      "mi_idx": "movie_info_idx", "it2": "info_type",
                      "ci": "cast_info", "n": "name", "rt": "role_type"},
        "joins": [("mk.movie_id", "t.id"), ("mk.keyword_id", "k.id"),
                  ("mi_idx.movie_id", "t.id"), ("mi_idx.info_type_id", "it2.id"),
                  ("ci.movie_id", "t.id"), ("ci.person_id", "n.id"),
                  ("ci.role_id", "rt.id")],
        "outputs": ["n.name", "t.title"],
        "variants": [
            [eq("k.keyword", "superhero"), eq("it2.info", "rating"),
             gt("mi_idx.info", "7.0"), eq("rt.role", "actor")],
            [eq("k.keyword", "murder"), eq("it2.info", "votes"),
             eq("rt.role", "actress"), gt("t.production_year", 2005)],
            [isin("k.keyword", ("sequel", "revenge")), eq("it2.info", "rating"),
             eq("rt.role", "writer")],
        ],
    },
    {   # 25: gender-balanced casts in genre movies
        "relations": {"t": "title", "ci": "cast_info", "n": "name",
                      "mi": "movie_info", "it": "info_type", "kt": "kind_type"},
        "joins": [("ci.movie_id", "t.id"), ("ci.person_id", "n.id"),
                  ("mi.movie_id", "t.id"), ("mi.info_type_id", "it.id"),
                  ("t.kind_id", "kt.id")],
        "outputs": ["n.name", "t.title", "mi.info"],
        "variants": [
            [eq("it.info", "genres"), eq("mi.info", "Horror"), eq("n.gender", "f"),
             eq("kt.kind", "movie")],
            [eq("it.info", "genres"), eq("mi.info", "Comedy"), eq("n.gender", "m"),
             gt("t.production_year", 2000)],
        ],
    },
    {   # 26: characters in high-rated franchise movies (9 relations)
        "relations": {"t": "title", "kt": "kind_type", "ci": "cast_info",
                      "chn": "char_name", "n": "name", "mk": "movie_keyword",
                      "k": "keyword", "mi_idx": "movie_info_idx",
                      "it2": "info_type"},
        "joins": [("t.kind_id", "kt.id"), ("ci.movie_id", "t.id"),
                  ("ci.person_role_id", "chn.id"), ("ci.person_id", "n.id"),
                  ("mk.movie_id", "t.id"), ("mk.keyword_id", "k.id"),
                  ("mi_idx.movie_id", "t.id"), ("mi_idx.info_type_id", "it2.id")],
        "outputs": ["chn.name", "n.name", "t.title"],
        "variants": [
            [eq("kt.kind", "movie"), eq("k.keyword", "superhero"),
             eq("it2.info", "rating"), gt("mi_idx.info", "7.5"),
             eq("n.gender", "m")],
            [eq("kt.kind", "movie"), eq("k.keyword", "sequel"),
             eq("it2.info", "rating"), gt("mi_idx.info", "6.0")],
            [eq("kt.kind", "movie"), isin("k.keyword", ("blood", "murder")),
             eq("it2.info", "votes"), gt("t.production_year", 2000)],
        ],
    },
    {   # 27: company co-productions with links
        "relations": {"t": "title", "ml": "movie_link", "lt": "link_type",
                      "mc": "movie_companies", "cn": "company_name",
                      "ct": "company_type"},
        "joins": [("ml.movie_id", "t.id"), ("ml.link_type_id", "lt.id"),
                  ("mc.movie_id", "t.id"), ("mc.company_id", "cn.id"),
                  ("mc.company_type_id", "ct.id")],
        "outputs": ["cn.name", "t.title"],
        "variants": [
            [eq("lt.link", "follows"), eq("cn.country_code", "[us]"),
             eq("ct.kind", "production companies")],
            [eq("lt.link", "features"), eq("ct.kind", "distributors"),
             gt("t.production_year", 2000)],
        ],
    },
    {   # 28: everything on title (10 relations)
        "relations": {"t": "title", "kt": "kind_type", "mk": "movie_keyword",
                      "k": "keyword", "mc": "movie_companies",
                      "cn": "company_name", "ct": "company_type",
                      "mi": "movie_info", "it": "info_type", "ci": "cast_info"},
        "joins": [("t.kind_id", "kt.id"), ("mk.movie_id", "t.id"),
                  ("mk.keyword_id", "k.id"), ("mc.movie_id", "t.id"),
                  ("mc.company_id", "cn.id"), ("mc.company_type_id", "ct.id"),
                  ("mi.movie_id", "t.id"), ("mi.info_type_id", "it.id"),
                  ("ci.movie_id", "t.id")],
        "outputs": ["t.title", "cn.name"],
        "variants": [
            [eq("kt.kind", "movie"), eq("k.keyword", "sequel"),
             eq("cn.country_code", "[us]"), eq("ct.kind", "production companies"),
             eq("it.info", "genres"), eq("mi.info", "Action"),
             gt("t.production_year", 2010)],
            [eq("kt.kind", "movie"), eq("k.keyword", "murder"),
             eq("ct.kind", "distributors"), eq("it.info", "languages"),
             eq("cn.country_code", "[gb]")],
            [eq("kt.kind", "movie"), isin("k.keyword", ("superhero", "sequel")),
             eq("cn.country_code", "[us]"), eq("it.info", "genres"),
             like("ci.note", "voice"), gt("t.production_year", 2005)],
        ],
    },
    {   # 29: aka names of voice actresses in US animations (large, selective)
        "relations": {"t": "title", "ci": "cast_info", "n": "name",
                      "an": "aka_name", "rt": "role_type", "chn": "char_name",
                      "mc": "movie_companies", "cn": "company_name"},
        "joins": [("ci.movie_id", "t.id"), ("ci.person_id", "n.id"),
                  ("an.person_id", "n.id"), ("ci.role_id", "rt.id"),
                  ("ci.person_role_id", "chn.id"), ("mc.movie_id", "t.id"),
                  ("mc.company_id", "cn.id")],
        "outputs": ["an.name", "chn.name", "t.title"],
        "variants": [
            [eq("rt.role", "actress"), like("ci.note", "voice"),
             eq("cn.country_code", "[us]"), eq("n.gender", "f"),
             gt("t.production_year", 2005)],
            [eq("rt.role", "actor"), like("ci.note", "voice"),
             eq("cn.country_code", "[jp]")],
            [eq("rt.role", "actress"), eq("cn.country_code", "[us]"),
             between("t.production_year", 1990, 2005)],
        ],
    },
    {   # 30: violent-keyword movies and their writers
        "relations": {"t": "title", "mk": "movie_keyword", "k": "keyword",
                      "ci": "cast_info", "n": "name", "rt": "role_type",
                      "mi": "movie_info", "it": "info_type"},
        "joins": [("mk.movie_id", "t.id"), ("mk.keyword_id", "k.id"),
                  ("ci.movie_id", "t.id"), ("ci.person_id", "n.id"),
                  ("ci.role_id", "rt.id"), ("mi.movie_id", "t.id"),
                  ("mi.info_type_id", "it.id")],
        "outputs": ["n.name", "t.title"],
        "variants": [
            [isin("k.keyword", ("murder", "blood", "revenge")),
             eq("rt.role", "writer"), eq("it.info", "genres"),
             isin("mi.info", ("Horror", "Thriller"))],
            [eq("k.keyword", "murder"), eq("rt.role", "director"),
             eq("it.info", "genres"), eq("mi.info", "Crime"),
             gt("t.production_year", 2000)],
            [eq("k.keyword", "revenge"), eq("rt.role", "actor"),
             eq("it.info", "genres"), gt("t.production_year", 1995)],
        ],
    },
    {   # 31: ratings of franchise movies from big studios (10 relations)
        "relations": {"t": "title", "kt": "kind_type", "mk": "movie_keyword",
                      "k": "keyword", "mi_idx": "movie_info_idx",
                      "it2": "info_type", "mc": "movie_companies",
                      "cn": "company_name", "ci": "cast_info", "n": "name"},
        "joins": [("t.kind_id", "kt.id"), ("mk.movie_id", "t.id"),
                  ("mk.keyword_id", "k.id"), ("mi_idx.movie_id", "t.id"),
                  ("mi_idx.info_type_id", "it2.id"), ("mc.movie_id", "t.id"),
                  ("mc.company_id", "cn.id"), ("ci.movie_id", "t.id"),
                  ("ci.person_id", "n.id")],
        "outputs": ["t.title", "mi_idx.info", "n.name"],
        "variants": [
            [eq("kt.kind", "movie"), eq("k.keyword", "sequel"),
             eq("it2.info", "rating"), gt("mi_idx.info", "6.5"),
             eq("cn.country_code", "[us]"), eq("n.gender", "m"),
             gt("t.production_year", 2008)],
            [eq("kt.kind", "movie"), eq("k.keyword", "superhero"),
             eq("it2.info", "votes"), eq("cn.country_code", "[us]")],
            [eq("kt.kind", "movie"), prefix("k.keyword", "kw_00"),
             eq("it2.info", "rating"), eq("cn.country_code", "[gb]"),
             eq("n.gender", "f")],
        ],
    },
]

_VARIANT_LETTERS = "abcdefgh"


#: The valid ``families`` numbers (1..len(_FAMILIES)); the experiment
#: registry shards parallel runs across this universe.
JOB_FAMILY_NUMBERS: tuple[int, ...] = tuple(range(1, len(_FAMILIES) + 1))


def job_queries(families: list[int] | None = None) -> list[Query]:
    """Build the JOB-style query catalogue.

    Parameters
    ----------
    families:
        Optional list of family numbers (1-based) to restrict to; by default
        all 91 queries are returned.
    """
    queries: list[Query] = []
    for number, family in enumerate(_FAMILIES, start=1):
        if families is not None and number not in families:
            continue
        for variant_index, filters in enumerate(family["variants"]):
            name = f"{number}{_VARIANT_LETTERS[variant_index]}"
            spj = build_spj(
                name=name,
                relations=family["relations"],
                joins=family["joins"],
                filters=filters,
                min_outputs=family["outputs"],
            )
            queries.append(Query.from_spj(spj, family=number))
    return queries


def query_by_name(name: str) -> Query:
    """Look up a single JOB-style query by its name (e.g. ``"6a"``)."""
    for query in job_queries():
        if query.name == name:
            return query
    raise KeyError(f"no JOB query named {name!r}")
