"""Synthetic IMDB-like database for the Join Order Benchmark reproduction.

The real IMDB snapshot used by JOB is not redistributable and far too large
for a pure-Python executor, so this module generates a scaled-down database
with the same schema shape and -- crucially -- the same *statistical traps*
that make JOB hard for PostgreSQL's optimizer:

* the fact tables (``cast_info``, ``movie_keyword``, ``movie_companies``,
  ``movie_info``, ``movie_info_idx``) reference ``title`` with a shared
  Zipf-like popularity, so fact-fact joins on ``movie_id`` have heavily
  correlated, skewed fan-outs;
* ``production_year`` is correlated with popularity (recent movies are the
  popular ones), so common range filters select exactly the high-fan-out
  rows the independence assumption averages away;
* string filter columns (keywords, company countries, cast notes) are skewed
  so equality/LIKE predicates on popular values are badly underestimated by
  the default statistics.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Column, ForeignKey, Schema, TableSchema
from repro.catalog.types import DataType
from repro.storage.database import Database, IndexConfig
from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE
from repro.storage.table import DataTable
from repro.workloads.datagen import (
    categorical,
    correlated_ints,
    sequential_ids,
    skewed_fanout_choice,
    string_pool,
    zipf_choice,
)

#: Base table sizes at scale factor 1.0.
BASE_SIZES = {
    "title": 6_000,
    "name": 10_000,
    "char_name": 8_000,
    "keyword": 1_500,
    "company_name": 2_000,
    "kind_type": 7,
    "role_type": 12,
    "info_type": 40,
    "company_type": 4,
    "link_type": 18,
    "cast_info": 60_000,
    "movie_keyword": 25_000,
    "movie_companies": 15_000,
    "movie_info": 30_000,
    "movie_info_idx": 15_000,
    "aka_name": 6_000,
    "movie_link": 4_000,
}


def _int(name: str) -> Column:
    return Column(name, DataType.INT)


def _str(name: str) -> Column:
    return Column(name, DataType.STRING)


IMDB_SCHEMA = Schema([
    TableSchema("kind_type", [_int("id"), _str("kind")], primary_key="id"),
    TableSchema("role_type", [_int("id"), _str("role")], primary_key="id"),
    TableSchema("info_type", [_int("id"), _str("info")], primary_key="id"),
    TableSchema("company_type", [_int("id"), _str("kind")], primary_key="id"),
    TableSchema("link_type", [_int("id"), _str("link")], primary_key="id"),
    TableSchema("keyword", [_int("id"), _str("keyword")], primary_key="id"),
    TableSchema("company_name", [_int("id"), _str("name"), _str("country_code")],
                primary_key="id"),
    TableSchema("name", [_int("id"), _str("name"), _str("gender")], primary_key="id"),
    TableSchema("char_name", [_int("id"), _str("name")], primary_key="id"),
    TableSchema("title",
                [_int("id"), _str("title"), _int("kind_id"), _int("production_year"),
                 _int("season_nr")],
                primary_key="id",
                foreign_keys=[ForeignKey("kind_id", "kind_type", "id")]),
    TableSchema("aka_name", [_int("id"), _int("person_id"), _str("name")],
                primary_key="id",
                foreign_keys=[ForeignKey("person_id", "name", "id")]),
    TableSchema("cast_info",
                [_int("id"), _int("person_id"), _int("movie_id"),
                 _int("person_role_id"), _int("role_id"), _str("note")],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("person_id", "name", "id"),
                    ForeignKey("movie_id", "title", "id"),
                    ForeignKey("person_role_id", "char_name", "id"),
                    ForeignKey("role_id", "role_type", "id"),
                ]),
    TableSchema("movie_keyword",
                [_int("id"), _int("movie_id"), _int("keyword_id")],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("movie_id", "title", "id"),
                    ForeignKey("keyword_id", "keyword", "id"),
                ]),
    TableSchema("movie_companies",
                [_int("id"), _int("movie_id"), _int("company_id"),
                 _int("company_type_id"), _str("note")],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("movie_id", "title", "id"),
                    ForeignKey("company_id", "company_name", "id"),
                    ForeignKey("company_type_id", "company_type", "id"),
                ]),
    TableSchema("movie_info",
                [_int("id"), _int("movie_id"), _int("info_type_id"), _str("info")],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("movie_id", "title", "id"),
                    ForeignKey("info_type_id", "info_type", "id"),
                ]),
    TableSchema("movie_info_idx",
                [_int("id"), _int("movie_id"), _int("info_type_id"), _str("info")],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("movie_id", "title", "id"),
                    ForeignKey("info_type_id", "info_type", "id"),
                ]),
    TableSchema("movie_link",
                [_int("id"), _int("movie_id"), _int("linked_movie_id"),
                 _int("link_type_id")],
                primary_key="id",
                foreign_keys=[
                    ForeignKey("movie_id", "title", "id"),
                    ForeignKey("linked_movie_id", "title", "id"),
                    ForeignKey("link_type_id", "link_type", "id"),
                ]),
])


def build_imdb_database(scale: float = 1.0,
                        index_config: IndexConfig = IndexConfig.PK_FK,
                        seed: int = 42,
                        block_size: int = DEFAULT_BLOCK_SIZE,
                        dict_encode: bool = True) -> Database:
    """Generate the synthetic IMDB database.

    Parameters
    ----------
    scale:
        Multiplier on the base table sizes (1.0 = roughly 200k total rows).
    index_config:
        Which index configuration to build (the paper evaluates PK-only and
        PK+FK).
    seed:
        Random seed; the same seed always produces the same database.
    """
    rng = np.random.default_rng(seed)
    sizes = {name: max(int(round(count * scale)), 4) for name, count in BASE_SIZES.items()}
    db = Database(IMDB_SCHEMA, index_config=index_config, block_size=block_size,
                  dict_encode=dict_encode)

    # ------------------------------------------------------------------
    # Dimension tables
    # ------------------------------------------------------------------
    kinds = ["movie", "tv series", "tv movie", "video movie", "episode",
             "video game", "short"]
    db.load_table(DataTable("kind_type", {
        "id": sequential_ids(sizes["kind_type"]),
        "kind": np.array(kinds[:sizes["kind_type"]], dtype=object),
    }))

    roles = ["actor", "actress", "producer", "writer", "director",
             "composer", "cinematographer", "editor", "costume designer",
             "production designer", "guest", "miscellaneous"]
    db.load_table(DataTable("role_type", {
        "id": sequential_ids(sizes["role_type"]),
        "role": np.array(roles[:sizes["role_type"]], dtype=object),
    }))

    info_names = ["budget", "bottom 10 rank", "genres", "languages", "rating",
                  "release dates", "runtimes", "top 250 rank", "votes",
                  "countries"] + [f"info_{i:02d}" for i in range(30)]
    db.load_table(DataTable("info_type", {
        "id": sequential_ids(sizes["info_type"]),
        "info": np.array(info_names[:sizes["info_type"]], dtype=object),
    }))

    company_kinds = ["production companies", "distributors",
                     "special effects companies", "miscellaneous companies"]
    db.load_table(DataTable("company_type", {
        "id": sequential_ids(sizes["company_type"]),
        "kind": np.array(company_kinds[:sizes["company_type"]], dtype=object),
    }))

    link_kinds = [f"link_{i:02d}" for i in range(sizes["link_type"])]
    link_kinds[:4] = ["follows", "followed by", "remake of", "features"]
    db.load_table(DataTable("link_type", {
        "id": sequential_ids(sizes["link_type"]),
        "link": np.array(link_kinds, dtype=object),
    }))

    n_keyword = sizes["keyword"]
    keyword_names = string_pool("kw", n_keyword)
    # A handful of "hot" keywords used by the query filters.
    for i, hot in enumerate(["superhero", "sequel", "based-on-novel", "murder",
                             "love", "revenge", "blood", "female-nudity"]):
        if i < n_keyword:
            keyword_names[i] = hot
    db.load_table(DataTable("keyword", {
        "id": sequential_ids(n_keyword),
        "keyword": keyword_names,
    }))

    n_company = sizes["company_name"]
    db.load_table(DataTable("company_name", {
        "id": sequential_ids(n_company),
        "name": string_pool("company", n_company),
        "country_code": categorical(
            rng, ["[us]", "[gb]", "[de]", "[fr]", "[jp]", "[in]", "[ca]", "[it]"],
            [0.38, 0.14, 0.12, 0.10, 0.09, 0.07, 0.06, 0.04], n_company),
    }))

    n_name = sizes["name"]
    db.load_table(DataTable("name", {
        "id": sequential_ids(n_name),
        "name": string_pool("person", n_name),
        "gender": categorical(rng, ["m", "f", ""], [0.62, 0.33, 0.05], n_name),
    }))

    n_char = sizes["char_name"]
    db.load_table(DataTable("char_name", {
        "id": sequential_ids(n_char),
        "name": string_pool("character", n_char),
    }))

    # ------------------------------------------------------------------
    # title: popularity-correlated production years and kinds
    # ------------------------------------------------------------------
    n_title = sizes["title"]
    title_ids = sequential_ids(n_title)
    # popularity[i] in [0, 1): 0 = most popular.  Popular titles are recent.
    popularity = rng.permutation(n_title) / n_title
    production_year = correlated_ints(rng, 1.0 - popularity, 1950, 2020,
                                      correlation=0.9)
    kind_id = 1 + zipf_choice(rng, sizes["kind_type"], n_title, skew=1.1)
    db.load_table(DataTable("title", {
        "id": title_ids,
        "title": string_pool("movie", n_title),
        "kind_id": kind_id.astype(np.int64),
        "production_year": production_year,
        "season_nr": rng.integers(0, 15, n_title),
    }))

    # Shared popularity ranking used by every fact table referencing title:
    # title_rank[k] is the title id receiving the k-th most references.
    title_rank = title_ids[np.argsort(popularity)]

    def popular_movie_ids(size: int, sigma: float) -> np.ndarray:
        # Bounded-fanout skew shared across every fact table (the shared
        # ranking is what correlates cast_info, movie_keyword, ... fan-outs).
        return title_rank[skewed_fanout_choice(rng, n_title, size, sigma=sigma,
                                                cap_factor=60.0)]

    # ------------------------------------------------------------------
    # Fact tables
    # ------------------------------------------------------------------
    n_ci = sizes["cast_info"]
    ci_movie = popular_movie_ids(n_ci, sigma=1.7)
    ci_person = 1 + skewed_fanout_choice(rng, n_name, n_ci, sigma=1.2)
    ci_role = 1 + zipf_choice(rng, sizes["role_type"], n_ci, skew=1.3)
    ci_note = categorical(
        rng, ["", "(voice)", "(uncredited)", "(producer)", "(executive producer)",
              "(as himself)", "(archive footage)"],
        [0.55, 0.12, 0.10, 0.09, 0.06, 0.05, 0.03], n_ci)
    db.load_table(DataTable("cast_info", {
        "id": sequential_ids(n_ci),
        "person_id": ci_person.astype(np.int64),
        "movie_id": ci_movie.astype(np.int64),
        "person_role_id": (1 + skewed_fanout_choice(rng, n_char, n_ci, sigma=1.1)).astype(np.int64),
        "role_id": ci_role.astype(np.int64),
        "note": ci_note,
    }))

    n_mk = sizes["movie_keyword"]
    db.load_table(DataTable("movie_keyword", {
        "id": sequential_ids(n_mk),
        "movie_id": popular_movie_ids(n_mk, sigma=1.7).astype(np.int64),
        "keyword_id": (1 + skewed_fanout_choice(rng, n_keyword, n_mk, sigma=1.3)).astype(np.int64),
    }))

    n_mc = sizes["movie_companies"]
    db.load_table(DataTable("movie_companies", {
        "id": sequential_ids(n_mc),
        "movie_id": popular_movie_ids(n_mc, sigma=1.6).astype(np.int64),
        "company_id": (1 + skewed_fanout_choice(rng, n_company, n_mc, sigma=1.3)).astype(np.int64),
        "company_type_id": (1 + zipf_choice(rng, sizes["company_type"], n_mc,
                                            skew=1.1)).astype(np.int64),
        "note": categorical(
            rng, ["", "(co-production)", "(presents)", "(as Metro-Goldwyn-Mayer)",
                  "(VHS)", "(USA)", "(worldwide)"],
            [0.40, 0.15, 0.13, 0.10, 0.09, 0.08, 0.05], n_mc),
    }))

    n_mi = sizes["movie_info"]
    mi_info_type = (1 + zipf_choice(rng, sizes["info_type"], n_mi, skew=1.05)).astype(np.int64)
    genre_pool = np.array(["Drama", "Comedy", "Action", "Thriller", "Horror",
                           "Documentary", "Romance", "Crime"], dtype=object)
    mi_info = string_pool("info", n_mi)
    genre_rows = mi_info_type == 3
    mi_info[genre_rows] = genre_pool[
        zipf_choice(rng, len(genre_pool), int(genre_rows.sum()), skew=1.2)]
    db.load_table(DataTable("movie_info", {
        "id": sequential_ids(n_mi),
        "movie_id": popular_movie_ids(n_mi, sigma=1.5).astype(np.int64),
        "info_type_id": mi_info_type,
        "info": mi_info,
    }))

    n_midx = sizes["movie_info_idx"]
    midx_info_type = (1 + zipf_choice(rng, sizes["info_type"], n_midx, skew=1.05)).astype(np.int64)
    midx_info = np.array(
        [f"{v:.1f}" for v in np.clip(rng.normal(6.5, 1.5, n_midx), 1.0, 10.0)],
        dtype=object)
    db.load_table(DataTable("movie_info_idx", {
        "id": sequential_ids(n_midx),
        "movie_id": popular_movie_ids(n_midx, sigma=1.5).astype(np.int64),
        "info_type_id": midx_info_type,
        "info": midx_info,
    }))

    n_aka = sizes["aka_name"]
    db.load_table(DataTable("aka_name", {
        "id": sequential_ids(n_aka),
        "person_id": (1 + skewed_fanout_choice(rng, n_name, n_aka, sigma=1.2)).astype(np.int64),
        "name": string_pool("aka", n_aka),
    }))

    n_ml = sizes["movie_link"]
    db.load_table(DataTable("movie_link", {
        "id": sequential_ids(n_ml),
        "movie_id": popular_movie_ids(n_ml, sigma=1.3).astype(np.int64),
        "linked_movie_id": popular_movie_ids(n_ml, sigma=1.3).astype(np.int64),
        "link_type_id": (1 + zipf_choice(rng, sizes["link_type"], n_ml,
                                         skew=1.2)).astype(np.int64),
    }))

    return db
