"""Compact query-specification helpers.

The 91 JOB-style queries (plus the TPC-H and DSB workloads) are written as
small declarative specs; :func:`build_spj` turns a spec into a validated
:class:`repro.plan.logical.SPJQuery`.

A spec uses strings of the form ``"alias.column"`` for columns and pairs of
such strings for join predicates, which keeps the query catalogues readable::

    build_spj(
        name="6d",
        relations={"t": "title", "mk": "movie_keyword", "k": "keyword"},
        joins=[("mk.movie_id", "t.id"), ("mk.keyword_id", "k.id")],
        filters=[gt("t.production_year", 2005), like("k.keyword", "marvel")],
        min_outputs=["t.title", "k.keyword"],
    )
"""

from __future__ import annotations

from repro.plan.expressions import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNotNull,
    JoinPredicate,
    OrPredicate,
    Predicate,
    StringContains,
    StringPrefix,
)
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    Query,
    RelationRef,
    SPJNode,
    SPJQuery,
    UnionNode,
)


def col(qualified: str) -> ColumnRef:
    """Parse ``"alias.column"`` into a :class:`ColumnRef`."""
    alias, _, column = qualified.partition(".")
    if not column:
        raise ValueError(f"column reference {qualified!r} must be alias-qualified")
    return ColumnRef(alias, column)


# ----------------------------------------------------------------------
# Filter-predicate shorthands
# ----------------------------------------------------------------------
def eq(column: str, value) -> Comparison:
    """``column = value``."""
    return Comparison(col(column), "=", value)


def ne(column: str, value) -> Comparison:
    """``column != value``."""
    return Comparison(col(column), "!=", value)


def gt(column: str, value) -> Comparison:
    """``column > value``."""
    return Comparison(col(column), ">", value)


def ge(column: str, value) -> Comparison:
    """``column >= value``."""
    return Comparison(col(column), ">=", value)


def lt(column: str, value) -> Comparison:
    """``column < value``."""
    return Comparison(col(column), "<", value)


def le(column: str, value) -> Comparison:
    """``column <= value``."""
    return Comparison(col(column), "<=", value)


def between(column: str, low, high) -> Between:
    """``column BETWEEN low AND high``."""
    return Between(col(column), low, high)


def isin(column: str, values) -> InList:
    """``column IN (values...)``."""
    return InList(col(column), tuple(values))


def like(column: str, needle: str) -> StringContains:
    """``column LIKE '%needle%'``."""
    return StringContains(col(column), needle)


def prefix(column: str, value: str) -> StringPrefix:
    """``column LIKE 'value%'``."""
    return StringPrefix(col(column), value)


def notnull(column: str) -> IsNotNull:
    """``column IS NOT NULL``."""
    return IsNotNull(col(column))


def any_of(*predicates: Predicate) -> OrPredicate:
    """Disjunction of predicates over the same relation."""
    return OrPredicate(tuple(predicates))


# ----------------------------------------------------------------------
# Query builders
# ----------------------------------------------------------------------
def build_spj(name: str, relations: dict[str, str],
              joins: list[tuple[str, str]],
              filters: list[Predicate] | None = None,
              min_outputs: list[str] | None = None,
              projections: list[str] | None = None,
              count_output: bool = True) -> SPJQuery:
    """Build an SPJ query from a compact spec.

    ``min_outputs`` produces JOB-style ``MIN(col) AS ...`` scalar aggregates;
    ``count_output`` additionally emits a ``COUNT(*)`` so every query has a
    deterministic, easily comparable result.
    """
    relation_refs = tuple(
        RelationRef.base(alias, table) for alias, table in relations.items())
    join_predicates = tuple(
        JoinPredicate(col(left), col(right)) for left, right in joins)
    aggregates: list[AggregateSpec] = []
    if count_output:
        aggregates.append(AggregateSpec("count", None, "row_count"))
    for output in min_outputs or []:
        ref = col(output)
        aggregates.append(AggregateSpec("min", ref, f"min_{ref.alias}_{ref.column}"))
    return SPJQuery(
        name=name,
        relations=relation_refs,
        filters=tuple(filters or ()),
        join_predicates=join_predicates,
        projections=tuple(col(p) for p in (projections or [])),
        aggregates=tuple(aggregates),
    )


def spj_query(name: str, **kwargs) -> Query:
    """Build a top-level :class:`Query` wrapping a single SPJ block."""
    return Query.from_spj(build_spj(name, **kwargs))


def grouped_query(name: str, spj: SPJQuery, group_by: list[str],
                  aggregates: list[tuple[str, str | None, str]]) -> Query:
    """A non-SPJ query: GROUP BY aggregation over an SPJ block.

    ``aggregates`` entries are ``(func, column_or_None, output_name)``.
    """
    spj = spj.with_projections(())
    specs = tuple(
        AggregateSpec(func, col(column) if column else None, output)
        for func, column, output in aggregates)
    node = AggregateNode(child=SPJNode(spj),
                         group_by=tuple(col(g) for g in group_by),
                         aggregates=specs)
    return Query(name=name, root=node)


def union_query(name: str, parts: list[Query]) -> Query:
    """A non-SPJ query: UNION ALL of the root nodes of ``parts``."""
    return Query(name=name, root=UnionNode(tuple(part.root for part in parts)))
