"""Synthetic data-generation helpers.

The generators inject the two data characteristics that make the Join Order
Benchmark hard for PostgreSQL's estimator (Section 2.1 of the paper):

* **skew** -- foreign-key fan-outs follow (truncated) Zipf distributions, so
  a few "popular" dimension rows have orders of magnitude more matching fact
  rows than the average the estimator assumes;
* **correlation** -- filter columns are generated as functions of other
  columns (popularity, id ranges), so conjunctive predicates and
  filter-then-join patterns violate the independence assumption.
"""

from __future__ import annotations

import numpy as np


def zipf_choice(rng: np.random.Generator, n_values: int, size: int,
                skew: float = 1.3) -> np.ndarray:
    """Draw ``size`` values in ``[0, n_values)`` with a Zipf-like popularity."""
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    ranks = np.arange(1, n_values + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return rng.choice(n_values, size=size, p=weights)


def skewed_fanout_choice(rng: np.random.Generator, n_values: int, size: int,
                         sigma: float = 1.4, cap_factor: float = 20.0) -> np.ndarray:
    """Draw foreign-key values with skewed but *bounded* fan-out.

    Per-value popularity weights are log-normal with parameter ``sigma`` and
    capped at ``cap_factor`` times the mean weight, so popular dimension rows
    receive many more fact rows than the average (breaking the uniformity
    assumption) while the worst-case fan-out stays bounded -- which keeps
    fact-fact join results large but materializable by a pure-Python engine.

    Value ``0`` is the most popular, ``n_values - 1`` the least.
    """
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    weights = rng.lognormal(mean=0.0, sigma=sigma, size=n_values)
    weights = np.minimum(weights, cap_factor * weights.mean())
    weights[::-1].sort()  # descending: index 0 is the hottest value
    weights /= weights.sum()
    return rng.choice(n_values, size=size, p=weights)


def correlated_ints(rng: np.random.Generator, base: np.ndarray, low: int, high: int,
                    correlation: float = 0.7) -> np.ndarray:
    """Integers in ``[low, high]`` correlated with ``base`` (rank correlation).

    ``correlation`` = 1.0 makes the output a monotone function of ``base``;
    0.0 makes it independent uniform noise.
    """
    if high <= low:
        raise ValueError("high must exceed low")
    span = high - low
    base = np.asarray(base, dtype=float)
    base_span = base.max() - base.min()
    normalized = (base - base.min()) / base_span if base_span > 0 else np.zeros_like(base)
    noise = rng.random(len(base))
    mixed = correlation * normalized + (1.0 - correlation) * noise
    return (low + np.clip(mixed, 0, 1) * span).astype(np.int64)


def string_pool(prefix: str, count: int) -> np.ndarray:
    """A deterministic pool of distinct strings (``prefix_0000`` ...)."""
    return np.array([f"{prefix}_{i:05d}" for i in range(count)], dtype=object)


def skewed_strings(rng: np.random.Generator, pool: np.ndarray, size: int,
                   skew: float = 1.2) -> np.ndarray:
    """Draw strings from ``pool`` with Zipf-like popularity."""
    idx = zipf_choice(rng, len(pool), size, skew=skew)
    return pool[idx]


def categorical(rng: np.random.Generator, values: list, probabilities: list[float],
                size: int) -> np.ndarray:
    """Draw from an explicit categorical distribution (values may be strings)."""
    probs = np.asarray(probabilities, dtype=float)
    probs = probs / probs.sum()
    idx = rng.choice(len(values), size=size, p=probs)
    arr = np.empty(size, dtype=object)
    for i, value in enumerate(values):
        arr[idx == i] = value
    return arr


def sequential_ids(count: int, start: int = 1) -> np.ndarray:
    """Primary-key column ``start .. start + count - 1``."""
    return np.arange(start, start + count, dtype=np.int64)


def popularity_ranking(rng: np.random.Generator, count: int) -> np.ndarray:
    """A random permutation assigning each id a popularity rank (0 = most popular)."""
    return rng.permutation(count)


# ----------------------------------------------------------------------
# Temporal drift (the dynamic-data subsystem's generators; see
# repro.dynamic.drift for the stream driver that applies them)
# ----------------------------------------------------------------------
def shifting_window_ints(rng: np.random.Generator, size: int, low: int,
                         high: int, step: int,
                         drift_per_step: float = 0.25) -> np.ndarray:
    """Uniform integers from a window that shifts with ``step``.

    At step 0 values are uniform in ``[low, high]``; by step *k* the window
    has moved up by ``k * drift_per_step * (high - low)``, so a growing
    fraction of the appended data lies *beyond* the range any stale
    (step-0) histogram covers -- the systematic-underestimate failure mode
    re-ANALYZE policies exist to fix.
    """
    if high <= low:
        raise ValueError("high must exceed low")
    offset = int(round(step * drift_per_step * (high - low)))
    return rng.integers(low + offset, high + offset + 1, size, dtype=np.int64)


def rotating_hotkey_choice(rng: np.random.Generator, n_values: int, size: int,
                           step: int, stride: int = 7,
                           hot_fraction: float = 0.4,
                           skew: float = 1.3) -> np.ndarray:
    """Zipf-skewed choice whose hottest value rotates with ``step``.

    A ``hot_fraction`` share of the draws hits the current hot key
    ``(step * stride) % n_values``; the rest follow the stationary Zipf
    popularity of :func:`zipf_choice`.  Stale MCV lists keep nominating the
    *old* hot keys while the live data concentrates somewhere else, which
    is the drifting hot-key skew the defio-style workloads model.
    """
    if n_values <= 0:
        raise ValueError("n_values must be positive")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be within [0, 1]")
    out = zipf_choice(rng, n_values, size, skew=skew)
    hot = (step * stride) % n_values
    out[rng.random(size) < hot_fraction] = hot
    return out


def novel_strings(prefix: str, step: int, count: int) -> np.ndarray:
    """``count`` distinct strings guaranteed unseen before ``step``.

    Deterministic (no rng) and disjoint across steps, so appending them
    exercises dictionary growth without ever colliding with the loaded
    pool (:func:`string_pool` uses a different shape).
    """
    return np.array([f"{prefix}~s{step:04d}~{i:05d}" for i in range(count)],
                    dtype=object)
