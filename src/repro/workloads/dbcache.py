"""Process-local cache of constructed benchmark databases.

Building a synthetic database (data generation + ANALYZE) dominates the
cost of a small-scale experiment run.  Within one experiment module the
database is already built once and reused across algorithms; this cache
extends that reuse across *experiments sharing a worker process* — exactly
the situation the CLI runner (:mod:`repro.cli`) creates when it fans
experiment shards over a ``multiprocessing`` pool and several shards with
the same (workload, scale, index config) land on the same worker.

The cache is opt-in (:func:`enable`) because a long-lived interactive
process should not silently pin every database it ever built.  Reuse is
safe for the same reason per-experiment reuse already is: algorithm runs
treat the :class:`~repro.storage.database.Database` as read-only and keep
materialized temporaries private.
"""

from __future__ import annotations

from typing import Callable

from repro.storage.database import Database, IndexConfig
from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE

_BUILDERS: dict[str, Callable[..., Database]] = {}
_CACHE: dict[tuple[str, float, IndexConfig, int, bool], Database] = {}
_ENABLED = False


def _builders() -> dict[str, Callable[..., Database]]:
    if not _BUILDERS:
        from repro.workloads.dsb import build_dsb_database
        from repro.workloads.imdb import build_imdb_database
        from repro.workloads.tpch import build_tpch_database
        _BUILDERS.update(imdb=build_imdb_database, tpch=build_tpch_database,
                         dsb=build_dsb_database)
    return _BUILDERS


def enable() -> None:
    """Turn on caching for this process (the pool-worker initializer)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn caching off and drop every cached database."""
    global _ENABLED
    _ENABLED = False
    _CACHE.clear()


def build(workload: str, scale: float, index_config: IndexConfig,
          block_size: int = DEFAULT_BLOCK_SIZE,
          dict_encode: bool = True) -> Database:
    """Build (or reuse) the ``workload`` database at ``scale``.

    ``workload`` is one of ``"imdb"``, ``"tpch"``, ``"dsb"``; ``block_size``
    is the storage-block width for zone-map scan pruning (0 disables it);
    ``dict_encode`` controls load-time dictionary encoding of string
    columns.  Without :func:`enable` this is a plain passthrough to the
    underlying builder.
    """
    builder = _builders()[workload]
    if not _ENABLED:
        return builder(scale=scale, index_config=index_config,
                       block_size=block_size, dict_encode=dict_encode)
    key = (workload, float(scale), index_config, int(block_size),
           bool(dict_encode))
    if key not in _CACHE:
        _CACHE[key] = builder(scale=scale, index_config=index_config,
                              block_size=block_size, dict_encode=dict_encode)
    return _CACHE[key]
