"""Process-local cache of constructed benchmark databases.

Building a synthetic database (data generation + ANALYZE) dominates the
cost of a small-scale experiment run.  Within one experiment module the
database is already built once and reused across algorithms; this cache
extends that reuse across *experiments sharing a worker process* — exactly
the situation the CLI runner (:mod:`repro.cli`) creates when it fans
experiment shards over a ``multiprocessing`` pool and several shards with
the same (workload, scale, index config) land on the same worker.

The cache is opt-in (:func:`enable`) because a long-lived interactive
process should not silently pin every database it ever built.  Reuse is
safe for the same reason per-experiment reuse already is: algorithm runs
treat the :class:`~repro.storage.database.Database` as read-only and keep
materialized temporaries private.

The cache is also **thread-safe**: the serving layer (:mod:`repro.serving`)
runs many worker threads in one process, and two of them asking for the
same database must not race to build it twice (wasted minutes of datagen)
or, worse, observe a half-registered entry.  A global lock serializes the
bookkeeping and a per-key build lock serializes construction, so exactly
one thread builds each (workload, scale, config) while later requesters
block until the built database is published — concurrent builds of
*different* keys still proceed in parallel.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.storage.database import Database, IndexConfig
from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE

_BUILDERS: dict[str, Callable[..., Database]] = {}

_CacheKey = tuple[str, float, IndexConfig, int, bool]
_CACHE: dict[_CacheKey, Database] = {}
_ENABLED = False
#: Guards ``_CACHE`` / ``_ENABLED`` / ``_BUILD_LOCKS`` bookkeeping.
_LOCK = threading.Lock()
#: One lock per cache key, so one thread builds while the rest wait.
_BUILD_LOCKS: dict[_CacheKey, threading.Lock] = {}


def _builders() -> dict[str, Callable[..., Database]]:
    if not _BUILDERS:
        from repro.workloads.dsb import build_dsb_database
        from repro.workloads.imdb import build_imdb_database
        from repro.workloads.tpch import build_tpch_database
        _BUILDERS.update(imdb=build_imdb_database, tpch=build_tpch_database,
                         dsb=build_dsb_database)
    return _BUILDERS


def enable() -> None:
    """Turn on caching for this process (the pool-worker initializer)."""
    global _ENABLED
    with _LOCK:
        _ENABLED = True


def disable() -> None:
    """Turn caching off and drop every cached database."""
    global _ENABLED
    with _LOCK:
        _ENABLED = False
        _CACHE.clear()
        _BUILD_LOCKS.clear()


def build(workload: str, scale: float, index_config: IndexConfig,
          block_size: int = DEFAULT_BLOCK_SIZE,
          dict_encode: bool = True) -> Database:
    """Build (or reuse) the ``workload`` database at ``scale``.

    ``workload`` is one of ``"imdb"``, ``"tpch"``, ``"dsb"``; ``block_size``
    is the storage-block width for zone-map scan pruning (0 disables it);
    ``dict_encode`` controls load-time dictionary encoding of string
    columns.  Without :func:`enable` this is a plain passthrough to the
    underlying builder.  Safe to call from many threads: concurrent
    first-builds of the same key are serialized behind a per-key lock, so
    every caller receives the same instance.
    """
    builder = _builders()[workload]
    key = (workload, float(scale), index_config, int(block_size),
           bool(dict_encode))
    with _LOCK:
        if not _ENABLED:
            build_lock = None
        else:
            if key in _CACHE:
                return _CACHE[key]
            build_lock = _BUILD_LOCKS.setdefault(key, threading.Lock())
    if build_lock is None:
        return builder(scale=scale, index_config=index_config,
                       block_size=block_size, dict_encode=dict_encode)
    with build_lock:
        # Double-check under the build lock: the winner of the race
        # published the database while this thread waited.
        with _LOCK:
            if key in _CACHE:
                return _CACHE[key]
        database = builder(scale=scale, index_config=index_config,
                           block_size=block_size, dict_encode=dict_encode)
        with _LOCK:
            # disable() may have raced the build; publish only while enabled
            # so a cleared cache is not silently repopulated.
            if _ENABLED:
                _CACHE[key] = database
        return database
