"""TPC-H workload: schema, scaled-down data generator, and 22 query skeletons.

TPC-H is the paper's star-schema control experiment (Figure 12): every join
is a PK-FK join, so cardinality estimation is comparatively easy,
re-optimization rarely pays off, and all algorithms should land close
together.  The generator keeps the official schema and uniform-ish value
distributions (TPC-H data is deliberately *not* skewed); the 22 queries are
SPJ/aggregation skeletons of the official queries -- the join structure and
filter shapes are preserved, while features our engine does not model
(outer/anti joins, substring arithmetic, ORDER BY) are simplified.  Dates are
encoded as ``yyyymmdd`` integers.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Column, ForeignKey, Schema, TableSchema
from repro.catalog.types import DataType
from repro.plan.logical import Query
from repro.storage.database import Database, IndexConfig
from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE
from repro.storage.table import DataTable
from repro.workloads.datagen import categorical, sequential_ids, string_pool
from repro.workloads.spec import (
    between,
    build_spj,
    eq,
    ge,
    grouped_query,
    gt,
    isin,
    le,
    lt,
    prefix,
)

#: Table sizes at scale factor 1.0 (a laptop-friendly miniature of SF 3).
BASE_SIZES = {
    "region": 5,
    "nation": 25,
    "supplier": 200,
    "customer": 1_500,
    "part": 2_000,
    "partsupp": 8_000,
    "orders": 15_000,
    "lineitem": 60_000,
}


def _int(name: str) -> Column:
    return Column(name, DataType.INT)


def _float(name: str) -> Column:
    return Column(name, DataType.FLOAT)


def _str(name: str) -> Column:
    return Column(name, DataType.STRING)


TPCH_SCHEMA = Schema([
    TableSchema("region", [_int("r_regionkey"), _str("r_name")],
                primary_key="r_regionkey"),
    TableSchema("nation", [_int("n_nationkey"), _str("n_name"), _int("n_regionkey")],
                primary_key="n_nationkey",
                foreign_keys=[ForeignKey("n_regionkey", "region", "r_regionkey")]),
    TableSchema("supplier",
                [_int("s_suppkey"), _str("s_name"), _int("s_nationkey"),
                 _float("s_acctbal")],
                primary_key="s_suppkey",
                foreign_keys=[ForeignKey("s_nationkey", "nation", "n_nationkey")]),
    TableSchema("customer",
                [_int("c_custkey"), _str("c_name"), _int("c_nationkey"),
                 _str("c_mktsegment"), _float("c_acctbal")],
                primary_key="c_custkey",
                foreign_keys=[ForeignKey("c_nationkey", "nation", "n_nationkey")]),
    TableSchema("part",
                [_int("p_partkey"), _str("p_name"), _str("p_brand"), _str("p_type"),
                 _int("p_size"), _str("p_container"), _float("p_retailprice")],
                primary_key="p_partkey"),
    TableSchema("partsupp",
                [_int("ps_id"), _int("ps_partkey"), _int("ps_suppkey"),
                 _int("ps_availqty"), _float("ps_supplycost")],
                primary_key="ps_id",
                foreign_keys=[
                    ForeignKey("ps_partkey", "part", "p_partkey"),
                    ForeignKey("ps_suppkey", "supplier", "s_suppkey"),
                ]),
    TableSchema("orders",
                [_int("o_orderkey"), _int("o_custkey"), _str("o_orderstatus"),
                 _float("o_totalprice"), _int("o_orderdate"), _str("o_orderpriority")],
                primary_key="o_orderkey",
                foreign_keys=[ForeignKey("o_custkey", "customer", "c_custkey")]),
    TableSchema("lineitem",
                [_int("l_id"), _int("l_orderkey"), _int("l_partkey"), _int("l_suppkey"),
                 _int("l_quantity"), _float("l_extendedprice"), _float("l_discount"),
                 _float("l_tax"), _str("l_returnflag"), _str("l_linestatus"),
                 _int("l_shipdate"), _str("l_shipmode")],
                primary_key="l_id",
                foreign_keys=[
                    ForeignKey("l_orderkey", "orders", "o_orderkey"),
                    ForeignKey("l_partkey", "part", "p_partkey"),
                    ForeignKey("l_suppkey", "supplier", "s_suppkey"),
                ]),
])

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIPMODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"]
_TYPES = ["STANDARD BRASS", "SMALL STEEL", "MEDIUM COPPER", "LARGE TIN",
          "ECONOMY NICKEL", "PROMO BRASS", "STANDARD STEEL", "PROMO COPPER"]
_CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX",
               "JUMBO PACK", "WRAP BAG"]


def _date(year: int, month: int, day: int) -> int:
    return year * 10_000 + month * 100 + day


def build_tpch_database(scale: float = 1.0,
                        index_config: IndexConfig = IndexConfig.PK_FK,
                        seed: int = 7,
                        block_size: int = DEFAULT_BLOCK_SIZE,
                        dict_encode: bool = True) -> Database:
    """Generate the scaled-down TPC-H database."""
    rng = np.random.default_rng(seed)
    sizes = {name: max(int(round(count * scale)), 3) for name, count in BASE_SIZES.items()}
    sizes["region"] = 5
    sizes["nation"] = 25
    db = Database(TPCH_SCHEMA, index_config=index_config, block_size=block_size,
                  dict_encode=dict_encode)

    db.load_table(DataTable("region", {
        "r_regionkey": sequential_ids(5, start=0),
        "r_name": np.array(_REGIONS, dtype=object),
    }))
    nation_names = string_pool("NATION", 25)
    db.load_table(DataTable("nation", {
        "n_nationkey": sequential_ids(25, start=0),
        "n_name": nation_names,
        "n_regionkey": np.arange(25, dtype=np.int64) % 5,
    }))

    n_supp = sizes["supplier"]
    db.load_table(DataTable("supplier", {
        "s_suppkey": sequential_ids(n_supp),
        "s_name": string_pool("Supplier", n_supp),
        "s_nationkey": rng.integers(0, 25, n_supp),
        "s_acctbal": rng.uniform(-999.0, 9999.0, n_supp),
    }))

    n_cust = sizes["customer"]
    db.load_table(DataTable("customer", {
        "c_custkey": sequential_ids(n_cust),
        "c_name": string_pool("Customer", n_cust),
        "c_nationkey": rng.integers(0, 25, n_cust),
        "c_mktsegment": categorical(rng, _SEGMENTS, [0.2] * 5, n_cust),
        "c_acctbal": rng.uniform(-999.0, 9999.0, n_cust),
    }))

    n_part = sizes["part"]
    db.load_table(DataTable("part", {
        "p_partkey": sequential_ids(n_part),
        "p_name": string_pool("part", n_part),
        "p_brand": categorical(rng, [f"Brand#{i}" for i in range(1, 6)],
                               [0.2] * 5, n_part),
        "p_type": categorical(rng, _TYPES, [1.0 / len(_TYPES)] * len(_TYPES), n_part),
        "p_size": rng.integers(1, 51, n_part),
        "p_container": categorical(rng, _CONTAINERS,
                                   [1.0 / len(_CONTAINERS)] * len(_CONTAINERS), n_part),
        "p_retailprice": rng.uniform(900.0, 2000.0, n_part),
    }))

    n_ps = sizes["partsupp"]
    db.load_table(DataTable("partsupp", {
        "ps_id": sequential_ids(n_ps),
        "ps_partkey": rng.integers(1, n_part + 1, n_ps),
        "ps_suppkey": rng.integers(1, n_supp + 1, n_ps),
        "ps_availqty": rng.integers(1, 10_000, n_ps),
        "ps_supplycost": rng.uniform(1.0, 1000.0, n_ps),
    }))

    n_orders = sizes["orders"]
    order_years = rng.integers(1992, 1999, n_orders)
    db.load_table(DataTable("orders", {
        "o_orderkey": sequential_ids(n_orders),
        "o_custkey": rng.integers(1, n_cust + 1, n_orders),
        "o_orderstatus": categorical(rng, ["F", "O", "P"], [0.49, 0.49, 0.02], n_orders),
        "o_totalprice": rng.uniform(1000.0, 400_000.0, n_orders),
        "o_orderdate": (order_years * 10_000 + rng.integers(1, 13, n_orders) * 100
                        + rng.integers(1, 29, n_orders)).astype(np.int64),
        "o_orderpriority": categorical(rng, _PRIORITIES, [0.2] * 5, n_orders),
    }))

    n_li = sizes["lineitem"]
    li_order = rng.integers(1, n_orders + 1, n_li)
    ship_years = rng.integers(1992, 1999, n_li)
    db.load_table(DataTable("lineitem", {
        "l_id": sequential_ids(n_li),
        "l_orderkey": li_order.astype(np.int64),
        "l_partkey": rng.integers(1, n_part + 1, n_li),
        "l_suppkey": rng.integers(1, n_supp + 1, n_li),
        "l_quantity": rng.integers(1, 51, n_li),
        "l_extendedprice": rng.uniform(900.0, 100_000.0, n_li),
        "l_discount": rng.uniform(0.0, 0.1, n_li).round(2),
        "l_tax": rng.uniform(0.0, 0.08, n_li).round(2),
        "l_returnflag": categorical(rng, ["A", "N", "R"], [0.25, 0.5, 0.25], n_li),
        "l_linestatus": categorical(rng, ["F", "O"], [0.5, 0.5], n_li),
        "l_shipdate": (ship_years * 10_000 + rng.integers(1, 13, n_li) * 100
                       + rng.integers(1, 29, n_li)).astype(np.int64),
        "l_shipmode": categorical(rng, _SHIPMODES,
                                  [1.0 / len(_SHIPMODES)] * len(_SHIPMODES), n_li),
    }))
    return db


#: The valid TPC-H query numbers (``families`` in the experiment CLI).
TPCH_QUERY_NUMBERS: tuple[int, ...] = tuple(range(1, 23))


def tpch_queries() -> list[Query]:
    """The 22 TPC-H query skeletons (all non-SPJ: aggregation over SPJ blocks)."""
    queries: list[Query] = []

    def add_grouped(number: int, relations, joins, filters, group_by, aggregates):
        spj = build_spj(name=f"tpch-q{number}", relations=relations, joins=joins,
                        filters=filters, count_output=False)
        queries.append(grouped_query(f"tpch-q{number}", spj, group_by, aggregates))

    # Q1: pricing summary report.
    add_grouped(1, {"l": "lineitem"}, [],
                [le("l.l_shipdate", _date(1998, 9, 2))],
                ["l.l_returnflag", "l.l_linestatus"],
                [("sum", "l.l_quantity", "sum_qty"),
                 ("sum", "l.l_extendedprice", "sum_base_price"),
                 ("avg", "l.l_discount", "avg_disc"),
                 ("count", None, "count_order")])
    # Q2: minimum cost supplier.
    add_grouped(2, {"p": "part", "ps": "partsupp", "s": "supplier", "n": "nation",
                    "r": "region"},
                [("ps.ps_partkey", "p.p_partkey"), ("ps.ps_suppkey", "s.s_suppkey"),
                 ("s.s_nationkey", "n.n_nationkey"), ("n.n_regionkey", "r.r_regionkey")],
                [eq("r.r_name", "EUROPE"), eq("p.p_size", 15),
                 prefix("p.p_type", "STANDARD")],
                ["n.n_name"],
                [("min", "ps.ps_supplycost", "min_cost"), ("count", None, "suppliers")])
    # Q3: shipping priority.
    add_grouped(3, {"c": "customer", "o": "orders", "l": "lineitem"},
                [("o.o_custkey", "c.c_custkey"), ("l.l_orderkey", "o.o_orderkey")],
                [eq("c.c_mktsegment", "BUILDING"),
                 lt("o.o_orderdate", _date(1995, 3, 15)),
                 gt("l.l_shipdate", _date(1995, 3, 15))],
                ["o.o_orderdate"],
                [("sum", "l.l_extendedprice", "revenue"), ("count", None, "lines")])
    # Q4: order priority checking.
    add_grouped(4, {"o": "orders", "l": "lineitem"},
                [("l.l_orderkey", "o.o_orderkey")],
                [between("o.o_orderdate", _date(1993, 7, 1), _date(1993, 10, 1))],
                ["o.o_orderpriority"],
                [("count", None, "order_count")])
    # Q5: local supplier volume.
    add_grouped(5, {"c": "customer", "o": "orders", "l": "lineitem", "s": "supplier",
                    "n": "nation", "r": "region"},
                [("o.o_custkey", "c.c_custkey"), ("l.l_orderkey", "o.o_orderkey"),
                 ("l.l_suppkey", "s.s_suppkey"), ("s.s_nationkey", "n.n_nationkey"),
                 ("n.n_regionkey", "r.r_regionkey")],
                [eq("r.r_name", "ASIA"),
                 between("o.o_orderdate", _date(1994, 1, 1), _date(1994, 12, 31))],
                ["n.n_name"],
                [("sum", "l.l_extendedprice", "revenue")])
    # Q6: forecasting revenue change.
    add_grouped(6, {"l": "lineitem"}, [],
                [between("l.l_shipdate", _date(1994, 1, 1), _date(1994, 12, 31)),
                 between("l.l_discount", 0.05, 0.07), lt("l.l_quantity", 24)],
                ["l.l_linestatus"],
                [("sum", "l.l_extendedprice", "revenue"), ("count", None, "lines")])
    # Q7: volume shipping between two nations.
    add_grouped(7, {"s": "supplier", "l": "lineitem", "o": "orders", "c": "customer",
                    "n1": "nation", "n2": "nation"},
                [("l.l_suppkey", "s.s_suppkey"), ("l.l_orderkey", "o.o_orderkey"),
                 ("o.o_custkey", "c.c_custkey"), ("s.s_nationkey", "n1.n_nationkey"),
                 ("c.c_nationkey", "n2.n_nationkey")],
                [eq("n1.n_name", "NATION_00003"), eq("n2.n_name", "NATION_00010"),
                 between("l.l_shipdate", _date(1995, 1, 1), _date(1996, 12, 31))],
                ["n1.n_name"],
                [("sum", "l.l_extendedprice", "revenue")])
    # Q8: national market share.
    add_grouped(8, {"p": "part", "l": "lineitem", "o": "orders", "c": "customer",
                    "n": "nation", "r": "region", "s": "supplier"},
                [("l.l_partkey", "p.p_partkey"), ("l.l_orderkey", "o.o_orderkey"),
                 ("o.o_custkey", "c.c_custkey"), ("c.c_nationkey", "n.n_nationkey"),
                 ("n.n_regionkey", "r.r_regionkey"), ("l.l_suppkey", "s.s_suppkey")],
                [eq("r.r_name", "AMERICA"), prefix("p.p_type", "ECONOMY"),
                 between("o.o_orderdate", _date(1995, 1, 1), _date(1996, 12, 31))],
                ["n.n_name"],
                [("sum", "l.l_extendedprice", "volume")])
    # Q9: product type profit measure.
    add_grouped(9, {"p": "part", "l": "lineitem", "ps": "partsupp", "s": "supplier",
                    "o": "orders", "n": "nation"},
                [("l.l_partkey", "p.p_partkey"), ("l.l_suppkey", "s.s_suppkey"),
                 ("ps.ps_partkey", "p.p_partkey"), ("ps.ps_suppkey", "s.s_suppkey"),
                 ("l.l_orderkey", "o.o_orderkey"), ("s.s_nationkey", "n.n_nationkey")],
                [prefix("p.p_name", "part_00")],
                ["n.n_name"],
                [("sum", "l.l_extendedprice", "profit")])
    # Q10: returned item reporting.
    add_grouped(10, {"c": "customer", "o": "orders", "l": "lineitem", "n": "nation"},
                [("o.o_custkey", "c.c_custkey"), ("l.l_orderkey", "o.o_orderkey"),
                 ("c.c_nationkey", "n.n_nationkey")],
                [eq("l.l_returnflag", "R"),
                 between("o.o_orderdate", _date(1993, 10, 1), _date(1994, 1, 1))],
                ["n.n_name"],
                [("sum", "l.l_extendedprice", "revenue"), ("count", None, "customers")])
    # Q11: important stock identification.
    add_grouped(11, {"ps": "partsupp", "s": "supplier", "n": "nation"},
                [("ps.ps_suppkey", "s.s_suppkey"), ("s.s_nationkey", "n.n_nationkey")],
                [eq("n.n_name", "NATION_00007")],
                ["ps.ps_partkey"],
                [("sum", "ps.ps_supplycost", "value")])
    # Q12: shipping modes and order priority.
    add_grouped(12, {"o": "orders", "l": "lineitem"},
                [("l.l_orderkey", "o.o_orderkey")],
                [isin("l.l_shipmode", ("MAIL", "SHIP")),
                 between("l.l_shipdate", _date(1994, 1, 1), _date(1994, 12, 31))],
                ["l.l_shipmode"],
                [("count", None, "order_count")])
    # Q13: customer distribution (outer join approximated by inner join).
    add_grouped(13, {"c": "customer", "o": "orders"},
                [("o.o_custkey", "c.c_custkey")],
                [],
                ["c.c_custkey"],
                [("count", None, "order_count")])
    # Q14: promotion effect.
    add_grouped(14, {"l": "lineitem", "p": "part"},
                [("l.l_partkey", "p.p_partkey")],
                [between("l.l_shipdate", _date(1995, 9, 1), _date(1995, 9, 30)),
                 prefix("p.p_type", "PROMO")],
                ["p.p_brand"],
                [("sum", "l.l_extendedprice", "promo_revenue")])
    # Q15: top supplier.
    add_grouped(15, {"l": "lineitem", "s": "supplier"},
                [("l.l_suppkey", "s.s_suppkey")],
                [between("l.l_shipdate", _date(1996, 1, 1), _date(1996, 3, 31))],
                ["s.s_name"],
                [("sum", "l.l_extendedprice", "total_revenue")])
    # Q16: parts/supplier relationship.
    add_grouped(16, {"ps": "partsupp", "p": "part"},
                [("ps.ps_partkey", "p.p_partkey")],
                [isin("p.p_size", (9, 14, 19, 23, 36, 45, 49, 3)),
                 prefix("p.p_brand", "Brand#1")],
                ["p.p_brand", "p.p_type"],
                [("count", None, "supplier_cnt")])
    # Q17: small-quantity-order revenue.
    add_grouped(17, {"l": "lineitem", "p": "part"},
                [("l.l_partkey", "p.p_partkey")],
                [eq("p.p_brand", "Brand#2"), eq("p.p_container", "MED BOX"),
                 lt("l.l_quantity", 5)],
                ["p.p_brand"],
                [("avg", "l.l_extendedprice", "avg_yearly")])
    # Q18: large volume customers.
    add_grouped(18, {"c": "customer", "o": "orders", "l": "lineitem"},
                [("o.o_custkey", "c.c_custkey"), ("l.l_orderkey", "o.o_orderkey")],
                [gt("o.o_totalprice", 300_000.0)],
                ["c.c_name"],
                [("sum", "l.l_quantity", "total_quantity")])
    # Q19: discounted revenue (disjunctive predicates).
    add_grouped(19, {"l": "lineitem", "p": "part"},
                [("l.l_partkey", "p.p_partkey")],
                [isin("p.p_container", ("SM CASE", "SM BOX", "MED BAG", "MED BOX")),
                 between("l.l_quantity", 1, 30), isin("l.l_shipmode", ("AIR", "REG AIR"))],
                ["p.p_brand"],
                [("sum", "l.l_extendedprice", "revenue")])
    # Q20: potential part promotion.
    add_grouped(20, {"s": "supplier", "n": "nation", "ps": "partsupp", "p": "part"},
                [("s.s_nationkey", "n.n_nationkey"), ("ps.ps_suppkey", "s.s_suppkey"),
                 ("ps.ps_partkey", "p.p_partkey")],
                [eq("n.n_name", "NATION_00012"), prefix("p.p_name", "part_01")],
                ["s.s_name"],
                [("count", None, "parts")])
    # Q21: suppliers who kept orders waiting.
    add_grouped(21, {"s": "supplier", "l": "lineitem", "o": "orders", "n": "nation"},
                [("l.l_suppkey", "s.s_suppkey"), ("l.l_orderkey", "o.o_orderkey"),
                 ("s.s_nationkey", "n.n_nationkey")],
                [eq("o.o_orderstatus", "F"), eq("n.n_name", "NATION_00020")],
                ["s.s_name"],
                [("count", None, "numwait")])
    # Q22: global sales opportunity.
    add_grouped(22, {"c": "customer", "o": "orders"},
                [("o.o_custkey", "c.c_custkey")],
                [gt("c.c_acctbal", 0.0),
                 isin("c.c_mktsegment", ("AUTOMOBILE", "MACHINERY"))],
                ["c.c_mktsegment"],
                [("count", None, "numcust"), ("sum", "c.c_acctbal", "totacctbal")])

    return queries
