"""Seeded random workload generation over any loaded :class:`Database`.

The fixed benchmark suites (JOB / TPC-H / DSB) exercise the re-optimization
policies on a few dozen hand-picked plans.  This module produces *unbounded*
seeded query streams instead: :class:`RandomQueryGenerator` walks the
schema's foreign-key graph to sample join trees, draws filter predicates from
the actual column value distributions recorded by ANALYZE
(:mod:`repro.catalog.statistics`), and optionally wraps the result in a
GROUP BY aggregation -- emitting valid :class:`~repro.plan.logical.Query`
logical-plan objects directly, with no SQL text or parsing in between.

Determinism is a hard guarantee: the stream is a pure function of
``(database schema + statistics, seed, sampler configs)``.  Query ``i`` is
sampled from ``numpy.random.default_rng([seed, i])``, so the stream can be
regenerated, sliced, or extended without replaying a shared RNG state --
``generate(50)`` twice, or ``generate(10)`` followed by
``generate(40, start=10)``, produce identical queries.

Typical use (see ``examples/generated_stream.py``)::

    generator = RandomQueryGenerator(
        database,
        seed=1,
        join_config=JoinSamplerConfig(max_joins=6, fk_only=False),
        predicate_config=PredicateSamplerConfig(max_predicates=4),
        aggregate_config=AggregateSamplerConfig(group_by_probability=0.25),
    )
    result = run_generated(generator, 100, "QuerySplit")
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.catalog.statistics import ColumnStats
from repro.catalog.types import DataType
from repro.plan.expressions import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    JoinPredicate,
    Predicate,
    StringPrefix,
)
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    Query,
    QueryPlanNode,
    RelationRef,
    SPJNode,
    SPJQuery,
)
from repro.storage.database import Database


# ----------------------------------------------------------------------
# Sampler configurations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JoinSamplerConfig:
    """Knobs of the join-tree sampler.

    Parameters
    ----------
    max_joins, min_joins:
        The number of join predicates is drawn uniformly from
        ``[min_joins, max_joins]`` (fewer if the FK graph runs out of
        reachable tables first).
    fk_only:
        When True (default) only PK-FK edges declared in the schema are
        sampled, so every join is the non-expanding kind QuerySplit favours.
        When False, *cross-FK* edges are also eligible: two tables that both
        reference the same primary key may be joined directly on their
        foreign-key columns (an implied join through a shared dimension,
        which is exactly the expanding fk-fk case the paper's DSB queries
        stress).
    """

    max_joins: int = 4
    min_joins: int = 0
    fk_only: bool = True

    def __post_init__(self) -> None:
        if self.min_joins < 0 or self.max_joins < self.min_joins:
            raise ValueError("need 0 <= min_joins <= max_joins")


@dataclass(frozen=True)
class PredicateSamplerConfig:
    """Knobs of the filter-predicate sampler.

    The number of filters is drawn uniformly from ``[0, max_predicates]``;
    each filter picks a column of a joined table (join-key columns are
    excluded) and a predicate shape compatible with that column's statistics:

    * numeric columns: a selectivity-targeted range (``BETWEEN`` with bounds
      from the histogram's inverse CDF), a point lookup, or an IN-list;
    * string columns: a point lookup, an IN-list, or a ``LIKE 'prefix%'``,
      all drawn from the most-common-value list.

    ``selectivity`` bounds the target fraction of rows a range predicate
    selects; the shape weights need not sum to one (they are normalized over
    the shapes actually available for the chosen column).

    ``point_drop_rate`` is the defio-style point-query drop knob: a sampled
    equality predicate whose statistics-estimated match count is at most
    ``point_drop_rows`` rows is *discarded* with this probability (the
    filter slot stays empty).  Drifted streams over growing fact tables
    otherwise degenerate into single-row point lookups -- every hot MCV is
    near-unique against a table that has doubled since ANALYZE.  The knob
    defaults to 0.0, in which case no extra random draw happens and
    existing seeded streams are byte-identical to before.
    """

    max_predicates: int = 3
    selectivity: tuple[float, float] = (0.05, 0.5)
    range_weight: float = 0.5
    point_weight: float = 0.25
    in_weight: float = 0.15
    prefix_weight: float = 0.1
    max_in_values: int = 4
    point_drop_rate: float = 0.0
    point_drop_rows: float = 2.0

    def __post_init__(self) -> None:
        low, high = self.selectivity
        if not (0.0 <= low <= high <= 1.0):
            raise ValueError("selectivity bounds must satisfy 0 <= low <= high <= 1")
        if self.max_predicates < 0:
            raise ValueError("max_predicates must be >= 0")
        if self.max_in_values < 2:
            raise ValueError("max_in_values must be >= 2 (an IN-list needs "
                             "at least two values)")
        if not 0.0 <= self.point_drop_rate <= 1.0:
            raise ValueError("point_drop_rate must be within [0, 1]")
        if self.point_drop_rows < 0:
            raise ValueError("point_drop_rows must be >= 0")


@dataclass(frozen=True)
class AggregateSamplerConfig:
    """Knobs of the aggregate sampler.

    Every generated query carries a ``COUNT(*)`` output (queries then always
    have a deterministic, easily comparable result, mirroring the fixed
    suites) plus up to ``max_aggregates`` extra aggregates over sampled
    columns.  With probability ``group_by_probability`` the query becomes a
    non-SPJ GROUP BY tree over a column with at most ``max_group_ndv``
    distinct values (keeping result sizes bounded).
    """

    max_aggregates: int = 2
    functions: tuple[str, ...] = ("min", "max", "sum", "avg")
    group_by_probability: float = 0.0
    max_group_ndv: int = 50

    def __post_init__(self) -> None:
        unknown = set(self.functions) - {"min", "max", "sum", "avg"}
        if unknown:
            raise ValueError(f"unsupported aggregate functions: {sorted(unknown)}")
        if not (0.0 <= self.group_by_probability <= 1.0):
            raise ValueError("group_by_probability must be in [0, 1]")


# ----------------------------------------------------------------------
# FK-graph join edges
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JoinEdge:
    """An undirected joinable column pair derived from the schema's FK graph."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str
    kind: str  # "pk-fk" or "fk-fk"

    def other(self, table: str) -> tuple[str, str]:
        """The ``(table, column)`` endpoint that is not ``table``."""
        if table == self.left_table:
            return self.right_table, self.right_column
        return self.left_table, self.left_column

    def column_of(self, table: str) -> str:
        """The join column on the ``table`` side."""
        return self.left_column if table == self.left_table else self.right_column


def join_edges(database: Database, fk_only: bool = True) -> tuple[JoinEdge, ...]:
    """All joinable column pairs between the *loaded* base tables.

    PK-FK edges come straight from the schema's foreign-key declarations;
    with ``fk_only=False``, fk-fk edges additionally connect every pair of
    tables referencing the same primary key.  The result is sorted so edge
    order (and therefore the sampled stream) is independent of dict/set
    iteration order.
    """
    loaded = set(database.base_table_names)
    edges: list[JoinEdge] = []
    referencing: dict[tuple[str, str], list[tuple[str, str]]] = {}
    for table_name in sorted(loaded):
        for fk in database.schema.table(table_name).foreign_keys:
            if fk.ref_table not in loaded or fk.ref_table == table_name:
                continue
            edges.append(JoinEdge(table_name, fk.column,
                                  fk.ref_table, fk.ref_column, kind="pk-fk"))
            referencing.setdefault((fk.ref_table, fk.ref_column), []).append(
                (table_name, fk.column))
    if not fk_only:
        for (_, _), referrers in sorted(referencing.items()):
            for (t1, c1), (t2, c2) in itertools.combinations(sorted(referrers), 2):
                if t1 != t2:
                    edges.append(JoinEdge(t1, c1, t2, c2, kind="fk-fk"))
    return tuple(sorted(
        edges, key=lambda e: (e.left_table, e.left_column,
                              e.right_table, e.right_column, e.kind)))


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------
class RandomQueryGenerator:
    """Seeded generator of random, valid queries over a loaded database.

    Parameters
    ----------
    database:
        The database whose schema, loaded tables, and ANALYZE statistics
        drive the sampling.  Generated queries are guaranteed to reference
        only loaded tables and existing columns, so they plan and execute
        without error under every algorithm.
    seed:
        Stream seed.  The same ``(database, seed, configs)`` always produces
        the identical query stream.
    join_config, predicate_config, aggregate_config:
        Sampler knobs; defaults give FK-only joins of depth <= 4 with up to
        three filters and scalar aggregates only.
    name_prefix:
        Generated queries are named ``f"{name_prefix}-{seed}-{index}"``.
    """

    def __init__(self, database: Database, seed: int = 0,
                 join_config: JoinSamplerConfig | None = None,
                 predicate_config: PredicateSamplerConfig | None = None,
                 aggregate_config: AggregateSamplerConfig | None = None,
                 name_prefix: str = "gen"):
        if not database.base_table_names:
            raise ValueError("database has no loaded base tables to sample from")
        self.database = database
        self.seed = int(seed)
        self.join_config = join_config or JoinSamplerConfig()
        self.predicate_config = predicate_config or PredicateSamplerConfig()
        self.aggregate_config = aggregate_config or AggregateSamplerConfig()
        self.name_prefix = name_prefix
        self._edges = join_edges(database, fk_only=self.join_config.fk_only)
        self._tables = tuple(sorted(database.base_table_names))
        self._connected = tuple(sorted(
            {e.left_table for e in self._edges} | {e.right_table for e in self._edges}))

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------
    def generate(self, n: int, start: int = 0) -> list[Query]:
        """The ``n`` queries at stream positions ``start .. start + n - 1``."""
        return [self.query_at(index) for index in range(start, start + n)]

    def __iter__(self) -> Iterator[Query]:
        """Iterate the unbounded stream from position 0."""
        return (self.query_at(index) for index in itertools.count())

    def query_at(self, index: int) -> Query:
        """Sample the query at stream position ``index`` (a pure function)."""
        rng = np.random.default_rng([self.seed, int(index)])
        relations, join_predicates = self._sample_joins(rng)
        join_key_columns = {
            (pred.left.alias, pred.left.column) for pred in join_predicates
        } | {(pred.right.alias, pred.right.column) for pred in join_predicates}
        tables = tuple(rel.table_name for rel in relations)
        filters = self._sample_filters(rng, tables, join_key_columns)
        aggregates = self._sample_aggregates(rng, tables)
        group_by = self._sample_group_by(rng, tables, join_key_columns)

        name = f"{self.name_prefix}-{self.seed}-{index}"
        metadata = {
            "generated": True,
            "seed": self.seed,
            "index": index,
            "num_joins": len(join_predicates),
        }
        if group_by is None:
            spj = SPJQuery(name=name, relations=relations, filters=filters,
                           join_predicates=join_predicates, aggregates=aggregates)
            return Query.from_spj(spj, **metadata)
        spj = SPJQuery(name=name, relations=relations, filters=filters,
                       join_predicates=join_predicates)
        root: QueryPlanNode = AggregateNode(
            child=SPJNode(spj), group_by=(group_by,), aggregates=aggregates)
        return Query(name=name, root=root, metadata=metadata)

    # ------------------------------------------------------------------
    # Join sampling: a random connected walk of the FK graph
    # ------------------------------------------------------------------
    def _sample_joins(self, rng: np.random.Generator
                      ) -> tuple[tuple[RelationRef, ...], tuple[JoinPredicate, ...]]:
        config = self.join_config
        num_joins = int(rng.integers(config.min_joins, config.max_joins + 1))
        if num_joins > 0 and self._connected:
            start = self._connected[int(rng.integers(len(self._connected)))]
        else:
            start = self._tables[int(rng.integers(len(self._tables)))]
        joined = [start]
        predicates: list[JoinPredicate] = []
        for _ in range(num_joins):
            member = set(joined)
            candidates = [
                edge for edge in self._edges
                if sum(t in member for t in (edge.left_table, edge.right_table)) == 1
            ]
            if not candidates:
                break
            edge = candidates[int(rng.integers(len(candidates)))]
            inner = edge.left_table if edge.left_table in member else edge.right_table
            outer, outer_column = edge.other(inner)
            joined.append(outer)
            predicates.append(JoinPredicate(
                ColumnRef(inner, edge.column_of(inner)),
                ColumnRef(outer, outer_column)))
        # Aliases are the table names themselves (each table appears at most
        # once per query), matching the readable style of the fixed suites.
        relations = tuple(RelationRef.base(t, t) for t in sorted(joined))
        return relations, tuple(predicates)

    # ------------------------------------------------------------------
    # Predicate sampling: shapes and literals from ANALYZE statistics
    # ------------------------------------------------------------------
    def _analyzed_columns(self, tables: tuple[str, ...]
                          ) -> Iterator[tuple[str, str, ColumnStats]]:
        """Every ``(table, column, stats)`` with usable ANALYZE statistics."""
        for table in tables:
            stats = self.database.stats(table)
            for column in self.database.schema.table(table).column_names:
                column_stats = stats.column(column)
                if column_stats is not None and column_stats.analyzed:
                    yield table, column, column_stats

    def _filter_candidates(self, tables: tuple[str, ...],
                           join_key_columns: set[tuple[str, str]]
                           ) -> list[tuple[str, str, ColumnStats, tuple[str, ...]]]:
        """``(table, column, stats, applicable shapes)`` per filterable column."""
        candidates = []
        for table, column, column_stats in self._analyzed_columns(tables):
            pk = self.database.schema.table(table).primary_key
            if (table, column) in join_key_columns or column == pk:
                continue
            shapes = self._applicable_shapes(column_stats)
            if shapes:
                candidates.append((table, column, column_stats, shapes))
        return candidates

    def _applicable_shapes(self, stats: ColumnStats) -> tuple[str, ...]:
        shapes = []
        if stats.dtype.is_numeric:
            if stats.histogram is not None or (
                    stats.min_value is not None and stats.max_value is not None
                    and stats.max_value > stats.min_value):
                shapes.append("range")
        if stats.mcv_values or stats.dtype.is_numeric:
            shapes.append("point")
        if len(stats.mcv_values) >= 2:
            shapes.append("in")
        if stats.dtype is DataType.STRING and any(
                isinstance(v, str) and v for v in stats.mcv_values):
            shapes.append("prefix")
        return tuple(shapes)

    def _sample_filters(self, rng: np.random.Generator, tables: tuple[str, ...],
                        join_key_columns: set[tuple[str, str]]
                        ) -> tuple[Predicate, ...]:
        config = self.predicate_config
        count = int(rng.integers(0, config.max_predicates + 1))
        if count == 0:
            return ()
        candidates = self._filter_candidates(tables, join_key_columns)
        if not candidates:
            return ()
        picked = rng.choice(len(candidates), size=min(count, len(candidates)),
                            replace=False)
        weights = {"range": config.range_weight, "point": config.point_weight,
                   "in": config.in_weight, "prefix": config.prefix_weight}
        filters: list[Predicate] = []
        for i in sorted(int(p) for p in picked):
            table, column, stats, shapes = candidates[i]
            shape_weights = np.asarray([weights[s] for s in shapes], dtype=float)
            if shape_weights.sum() <= 0:
                continue
            shape = shapes[int(rng.choice(len(shapes),
                                          p=shape_weights / shape_weights.sum()))]
            predicate = self._build_filter(rng, ColumnRef(table, column), stats, shape)
            if predicate is not None:
                filters.append(predicate)
        return tuple(filters)

    def _build_filter(self, rng: np.random.Generator, ref: ColumnRef,
                      stats: ColumnStats, shape: str) -> Predicate | None:
        config = self.predicate_config
        if shape == "range":
            target = float(rng.uniform(*config.selectivity))
            bounds = stats.sample_range(rng, target)
            if bounds is None:
                return None
            return Between(ref, bounds[0], bounds[1])
        if shape == "point":
            value = stats.sample_value(rng)
            if value is None:
                return None
            if config.point_drop_rate > 0.0:
                # Drop near-unique point lookups (estimated <= point_drop_rows
                # matches) with the configured probability.  The rate>0 guard
                # keeps default-config streams byte-identical: no extra rng
                # draw unless the knob is turned on.
                expected = stats.equality_selectivity(value) * stats.num_rows
                if (expected <= config.point_drop_rows
                        and rng.random() < config.point_drop_rate):
                    return None
            return Comparison(ref, "=", value)
        if shape == "in":
            values = stats.sample_in_values(rng, config.max_in_values)
            if values is None:
                return None
            return InList(ref, values)
        # shape == "prefix"
        strings = [v for v in stats.mcv_values if isinstance(v, str) and v]
        if not strings:
            return None
        value = strings[int(rng.integers(len(strings)))]
        length = int(rng.integers(1, min(len(value), 4) + 1))
        return StringPrefix(ref, value[:length])

    # ------------------------------------------------------------------
    # Aggregate sampling
    # ------------------------------------------------------------------
    def _sample_aggregates(self, rng: np.random.Generator,
                           tables: tuple[str, ...]) -> tuple[AggregateSpec, ...]:
        config = self.aggregate_config
        specs = [AggregateSpec("count", None, "row_count")]
        extra = int(rng.integers(0, config.max_aggregates + 1))
        if extra == 0:
            return tuple(specs)
        candidates = [(table, column, column_stats.dtype)
                      for table, column, column_stats
                      in self._analyzed_columns(tables)]
        if not candidates:
            return tuple(specs)
        picked = rng.choice(len(candidates), size=min(extra, len(candidates)),
                            replace=False)
        for i in sorted(int(p) for p in picked):
            table, column, dtype = candidates[i]
            allowed = (config.functions if dtype.is_numeric else
                       tuple(f for f in config.functions if f in ("min", "max")))
            if not allowed:
                continue
            func = allowed[int(rng.integers(len(allowed)))]
            specs.append(AggregateSpec(
                func, ColumnRef(table, column), f"{func}_{table}_{column}"))
        return tuple(specs)

    def _sample_group_by(self, rng: np.random.Generator, tables: tuple[str, ...],
                         join_key_columns: set[tuple[str, str]]) -> ColumnRef | None:
        config = self.aggregate_config
        if config.group_by_probability <= 0.0:
            return None
        if rng.random() >= config.group_by_probability:
            return None
        candidates = [
            ColumnRef(table, column)
            for table, column, column_stats in self._analyzed_columns(tables)
            if (table, column) not in join_key_columns
            and column_stats.ndv is not None
            and 1 <= column_stats.ndv <= config.max_group_ndv
        ]
        if not candidates:
            return None
        return candidates[int(rng.integers(len(candidates)))]
