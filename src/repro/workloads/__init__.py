"""Benchmark workloads.

The paper evaluates on three workloads; since the original data sets are not
available offline, each one is rebuilt as a synthetic generator that
preserves the characteristics the evaluation depends on:

* :mod:`repro.workloads.imdb` + :mod:`repro.workloads.job_queries` -- an
  IMDB-like schema with skewed, correlated data and 91 JOB-style join
  queries (2-10 joins, inverse star patterns, string filters);
* :mod:`repro.workloads.tpch` -- the TPC-H schema, a scaled-down generator,
  and SPJ/aggregate skeletons of the 22 queries (the star-schema "worst
  case" for re-optimization);
* :mod:`repro.workloads.dsb` -- a skewed TPC-DS subset with both SPJ and
  non-SPJ queries.

Beyond the fixed suites, :mod:`repro.workloads.sqlgen` generates unbounded
seeded random query streams over any loaded database by walking the schema's
FK graph and sampling predicates from the ANALYZE statistics.
"""

from repro.workloads.imdb import build_imdb_database, IMDB_SCHEMA
from repro.workloads.job_queries import job_queries
from repro.workloads.tpch import build_tpch_database, tpch_queries, TPCH_SCHEMA
from repro.workloads.dsb import build_dsb_database, dsb_queries, DSB_SCHEMA
from repro.workloads.sqlgen import (
    AggregateSamplerConfig,
    JoinSamplerConfig,
    PredicateSamplerConfig,
    RandomQueryGenerator,
)

__all__ = [
    "build_imdb_database",
    "IMDB_SCHEMA",
    "job_queries",
    "build_tpch_database",
    "tpch_queries",
    "TPCH_SCHEMA",
    "build_dsb_database",
    "dsb_queries",
    "DSB_SCHEMA",
    "RandomQueryGenerator",
    "JoinSamplerConfig",
    "PredicateSamplerConfig",
    "AggregateSamplerConfig",
]
