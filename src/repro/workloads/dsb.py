"""DSB workload: a skewed TPC-DS subset with SPJ and non-SPJ queries.

DSB (Ding et al., VLDB 2021) extends TPC-DS with data skew so that the
optimizer's uniformity assumptions break even on a star schema.  The paper
uses 52 DSB queries (15 SPJ, 37 non-SPJ) at scale factor 5; this module
rebuilds the sales-channel core of the schema (store / catalog / web sales
facts around item, customer, date and demographic dimensions), injects Zipf
skew into the fact foreign keys and correlated dimension attributes, and
provides 15 SPJ queries plus 10 representative non-SPJ queries.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Column, ForeignKey, Schema, TableSchema
from repro.catalog.types import DataType
from repro.plan.logical import Query
from repro.storage.database import Database, IndexConfig
from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE
from repro.storage.table import DataTable
from repro.workloads.datagen import (
    categorical,
    correlated_ints,
    sequential_ids,
    skewed_fanout_choice,
    string_pool,
    zipf_choice,
)
from repro.workloads.spec import (
    between,
    build_spj,
    eq,
    ge,
    grouped_query,
    gt,
    isin,
    le,
    lt,
    union_query,
)

#: Table sizes at scale factor 1.0.
BASE_SIZES = {
    "date_dim": 1_200,
    "item": 2_000,
    "customer": 3_000,
    "customer_demographics": 600,
    "customer_address": 1_000,
    "household_demographics": 150,
    "store": 20,
    "promotion": 100,
    "store_sales": 50_000,
    "catalog_sales": 25_000,
    "web_sales": 15_000,
    "store_returns": 8_000,
}


def _int(name: str) -> Column:
    return Column(name, DataType.INT)


def _float(name: str) -> Column:
    return Column(name, DataType.FLOAT)


def _str(name: str) -> Column:
    return Column(name, DataType.STRING)


DSB_SCHEMA = Schema([
    TableSchema("date_dim", [_int("d_date_sk"), _int("d_year"), _int("d_moy"),
                             _int("d_dom")],
                primary_key="d_date_sk"),
    TableSchema("item", [_int("i_item_sk"), _str("i_category"), _str("i_brand"),
                         _float("i_current_price")],
                primary_key="i_item_sk"),
    TableSchema("customer_demographics",
                [_int("cd_demo_sk"), _str("cd_gender"), _str("cd_marital_status"),
                 _str("cd_education_status")],
                primary_key="cd_demo_sk"),
    TableSchema("customer_address",
                [_int("ca_address_sk"), _str("ca_state"), _int("ca_gmt_offset")],
                primary_key="ca_address_sk"),
    TableSchema("household_demographics",
                [_int("hd_demo_sk"), _int("hd_income_band_sk"), _int("hd_dep_count")],
                primary_key="hd_demo_sk"),
    TableSchema("store", [_int("s_store_sk"), _str("s_state"),
                          _int("s_number_employees")],
                primary_key="s_store_sk"),
    TableSchema("promotion", [_int("p_promo_sk"), _str("p_channel_email"),
                              _str("p_channel_tv")],
                primary_key="p_promo_sk"),
    TableSchema("customer",
                [_int("c_customer_sk"), _int("c_current_cdemo_sk"),
                 _int("c_current_addr_sk"), _int("c_birth_year")],
                primary_key="c_customer_sk",
                foreign_keys=[
                    ForeignKey("c_current_cdemo_sk", "customer_demographics",
                               "cd_demo_sk"),
                    ForeignKey("c_current_addr_sk", "customer_address",
                               "ca_address_sk"),
                ]),
    TableSchema("store_sales",
                [_int("ss_id"), _int("ss_sold_date_sk"), _int("ss_item_sk"),
                 _int("ss_customer_sk"), _int("ss_cdemo_sk"), _int("ss_hdemo_sk"),
                 _int("ss_addr_sk"), _int("ss_store_sk"), _int("ss_promo_sk"),
                 _int("ss_quantity"), _float("ss_sales_price"),
                 _float("ss_ext_sales_price")],
                primary_key="ss_id",
                foreign_keys=[
                    ForeignKey("ss_sold_date_sk", "date_dim", "d_date_sk"),
                    ForeignKey("ss_item_sk", "item", "i_item_sk"),
                    ForeignKey("ss_customer_sk", "customer", "c_customer_sk"),
                    ForeignKey("ss_cdemo_sk", "customer_demographics", "cd_demo_sk"),
                    ForeignKey("ss_hdemo_sk", "household_demographics", "hd_demo_sk"),
                    ForeignKey("ss_addr_sk", "customer_address", "ca_address_sk"),
                    ForeignKey("ss_store_sk", "store", "s_store_sk"),
                    ForeignKey("ss_promo_sk", "promotion", "p_promo_sk"),
                ]),
    TableSchema("catalog_sales",
                [_int("cs_id"), _int("cs_sold_date_sk"), _int("cs_item_sk"),
                 _int("cs_bill_customer_sk"), _int("cs_quantity"),
                 _float("cs_sales_price")],
                primary_key="cs_id",
                foreign_keys=[
                    ForeignKey("cs_sold_date_sk", "date_dim", "d_date_sk"),
                    ForeignKey("cs_item_sk", "item", "i_item_sk"),
                    ForeignKey("cs_bill_customer_sk", "customer", "c_customer_sk"),
                ]),
    TableSchema("web_sales",
                [_int("ws_id"), _int("ws_sold_date_sk"), _int("ws_item_sk"),
                 _int("ws_bill_customer_sk"), _int("ws_quantity"),
                 _float("ws_sales_price")],
                primary_key="ws_id",
                foreign_keys=[
                    ForeignKey("ws_sold_date_sk", "date_dim", "d_date_sk"),
                    ForeignKey("ws_item_sk", "item", "i_item_sk"),
                    ForeignKey("ws_bill_customer_sk", "customer", "c_customer_sk"),
                ]),
    TableSchema("store_returns",
                [_int("sr_id"), _int("sr_item_sk"), _int("sr_customer_sk"),
                 _int("sr_returned_date_sk"), _float("sr_return_amt")],
                primary_key="sr_id",
                foreign_keys=[
                    ForeignKey("sr_item_sk", "item", "i_item_sk"),
                    ForeignKey("sr_customer_sk", "customer", "c_customer_sk"),
                    ForeignKey("sr_returned_date_sk", "date_dim", "d_date_sk"),
                ]),
])

_CATEGORIES = ["Books", "Electronics", "Home", "Jewelry", "Men", "Music",
               "Shoes", "Sports", "Toys", "Women"]
_STATES = ["CA", "TX", "NY", "FL", "WA", "IL", "OH", "GA", "NC", "MI"]


def build_dsb_database(scale: float = 1.0,
                       index_config: IndexConfig = IndexConfig.PK_FK,
                       seed: int = 11,
                       block_size: int = DEFAULT_BLOCK_SIZE,
                       dict_encode: bool = True) -> Database:
    """Generate the skewed DSB database."""
    rng = np.random.default_rng(seed)
    sizes = {name: max(int(round(count * scale)), 4) for name, count in BASE_SIZES.items()}
    db = Database(DSB_SCHEMA, index_config=index_config, block_size=block_size,
                  dict_encode=dict_encode)

    n_date = sizes["date_dim"]
    years = 1998 + (np.arange(n_date) // 366)
    db.load_table(DataTable("date_dim", {
        "d_date_sk": sequential_ids(n_date),
        "d_year": years.astype(np.int64),
        "d_moy": (1 + (np.arange(n_date) // 30) % 12).astype(np.int64),
        "d_dom": (1 + np.arange(n_date) % 28).astype(np.int64),
    }))

    n_item = sizes["item"]
    item_popularity = rng.permutation(n_item) / n_item
    db.load_table(DataTable("item", {
        "i_item_sk": sequential_ids(n_item),
        "i_category": categorical(rng, _CATEGORIES,
                                  [0.28, 0.18, 0.12, 0.10, 0.08, 0.07, 0.06, 0.05,
                                   0.04, 0.02], n_item),
        "i_brand": string_pool("brand", 50)[zipf_choice(rng, 50, n_item, skew=1.2)],
        "i_current_price": rng.uniform(1.0, 300.0, n_item).round(2),
    }))

    n_cd = sizes["customer_demographics"]
    db.load_table(DataTable("customer_demographics", {
        "cd_demo_sk": sequential_ids(n_cd),
        "cd_gender": categorical(rng, ["M", "F"], [0.5, 0.5], n_cd),
        "cd_marital_status": categorical(rng, ["M", "S", "D", "W", "U"],
                                         [0.4, 0.3, 0.15, 0.1, 0.05], n_cd),
        "cd_education_status": categorical(
            rng, ["Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree",
                  "Advanced Degree"],
            [0.1, 0.25, 0.25, 0.15, 0.15, 0.1], n_cd),
    }))

    n_ca = sizes["customer_address"]
    db.load_table(DataTable("customer_address", {
        "ca_address_sk": sequential_ids(n_ca),
        "ca_state": categorical(rng, _STATES,
                                [0.30, 0.16, 0.12, 0.10, 0.08, 0.07, 0.06, 0.05,
                                 0.04, 0.02], n_ca),
        "ca_gmt_offset": rng.choice([-8, -7, -6, -5], n_ca).astype(np.int64),
    }))

    n_hd = sizes["household_demographics"]
    db.load_table(DataTable("household_demographics", {
        "hd_demo_sk": sequential_ids(n_hd),
        "hd_income_band_sk": rng.integers(1, 21, n_hd),
        "hd_dep_count": rng.integers(0, 10, n_hd),
    }))

    n_store = sizes["store"]
    db.load_table(DataTable("store", {
        "s_store_sk": sequential_ids(n_store),
        "s_state": categorical(rng, _STATES[:5], [0.4, 0.25, 0.15, 0.12, 0.08], n_store),
        "s_number_employees": rng.integers(50, 300, n_store),
    }))

    n_promo = sizes["promotion"]
    db.load_table(DataTable("promotion", {
        "p_promo_sk": sequential_ids(n_promo),
        "p_channel_email": categorical(rng, ["Y", "N"], [0.3, 0.7], n_promo),
        "p_channel_tv": categorical(rng, ["Y", "N"], [0.2, 0.8], n_promo),
    }))

    n_cust = sizes["customer"]
    cust_popularity = rng.permutation(n_cust) / n_cust
    db.load_table(DataTable("customer", {
        "c_customer_sk": sequential_ids(n_cust),
        "c_current_cdemo_sk": (1 + zipf_choice(rng, n_cd, n_cust, skew=1.1)).astype(np.int64),
        "c_current_addr_sk": (1 + zipf_choice(rng, n_ca, n_cust, skew=1.2)).astype(np.int64),
        "c_birth_year": correlated_ints(rng, cust_popularity, 1930, 2000,
                                        correlation=0.5),
    }))

    item_rank = sequential_ids(n_item)[np.argsort(item_popularity)]
    cust_rank = sequential_ids(n_cust)[np.argsort(cust_popularity)]

    def fact_columns(size: int, item_skew: float, cust_skew: float):
        return {
            "date": (1 + zipf_choice(rng, n_date, size, skew=1.05)).astype(np.int64),
            "item": item_rank[skewed_fanout_choice(rng, n_item, size, sigma=item_skew)].astype(np.int64),
            "cust": cust_rank[skewed_fanout_choice(rng, n_cust, size, sigma=cust_skew)].astype(np.int64),
        }

    n_ss = sizes["store_sales"]
    ss = fact_columns(n_ss, item_skew=1.35, cust_skew=1.25)
    db.load_table(DataTable("store_sales", {
        "ss_id": sequential_ids(n_ss),
        "ss_sold_date_sk": ss["date"],
        "ss_item_sk": ss["item"],
        "ss_customer_sk": ss["cust"],
        "ss_cdemo_sk": (1 + skewed_fanout_choice(rng, n_cd, n_ss, sigma=1.2)).astype(np.int64),
        "ss_hdemo_sk": (1 + zipf_choice(rng, n_hd, n_ss, skew=1.1)).astype(np.int64),
        "ss_addr_sk": (1 + skewed_fanout_choice(rng, n_ca, n_ss, sigma=1.2)).astype(np.int64),
        "ss_store_sk": (1 + zipf_choice(rng, n_store, n_ss, skew=1.2)).astype(np.int64),
        "ss_promo_sk": (1 + zipf_choice(rng, n_promo, n_ss, skew=1.3)).astype(np.int64),
        "ss_quantity": rng.integers(1, 100, n_ss),
        "ss_sales_price": rng.uniform(1.0, 200.0, n_ss).round(2),
        "ss_ext_sales_price": rng.uniform(1.0, 20_000.0, n_ss).round(2),
    }))

    n_cs = sizes["catalog_sales"]
    cs = fact_columns(n_cs, item_skew=1.3, cust_skew=1.2)
    db.load_table(DataTable("catalog_sales", {
        "cs_id": sequential_ids(n_cs),
        "cs_sold_date_sk": cs["date"],
        "cs_item_sk": cs["item"],
        "cs_bill_customer_sk": cs["cust"],
        "cs_quantity": rng.integers(1, 100, n_cs),
        "cs_sales_price": rng.uniform(1.0, 300.0, n_cs).round(2),
    }))

    n_ws = sizes["web_sales"]
    ws = fact_columns(n_ws, item_skew=1.25, cust_skew=1.3)
    db.load_table(DataTable("web_sales", {
        "ws_id": sequential_ids(n_ws),
        "ws_sold_date_sk": ws["date"],
        "ws_item_sk": ws["item"],
        "ws_bill_customer_sk": ws["cust"],
        "ws_quantity": rng.integers(1, 100, n_ws),
        "ws_sales_price": rng.uniform(1.0, 300.0, n_ws).round(2),
    }))

    n_sr = sizes["store_returns"]
    sr = fact_columns(n_sr, item_skew=1.4, cust_skew=1.3)
    db.load_table(DataTable("store_returns", {
        "sr_id": sequential_ids(n_sr),
        "sr_item_sk": sr["item"],
        "sr_customer_sk": sr["cust"],
        "sr_returned_date_sk": sr["date"],
        "sr_return_amt": rng.uniform(1.0, 500.0, n_sr).round(2),
    }))

    return db


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
#: Valid DSB query numbers (``families`` in the experiment CLI).
DSB_SPJ_NUMBERS: tuple[int, ...] = tuple(range(1, 16))
DSB_NONSPJ_NUMBERS: tuple[int, ...] = tuple(range(1, 11))


def dsb_spj_queries() -> list[Query]:
    """The 15 SPJ queries of the DSB reproduction (Figure 13)."""
    specs = [
        # 1: store sales of a category in a year
        dict(relations={"ss": "store_sales", "i": "item", "d": "date_dim"},
             joins=[("ss.ss_item_sk", "i.i_item_sk"),
                    ("ss.ss_sold_date_sk", "d.d_date_sk")],
             filters=[eq("i.i_category", "Books"), eq("d.d_year", 1999)],
             min_outputs=["ss.ss_sales_price"]),
        # 2: customers from a state buying electronics
        dict(relations={"ss": "store_sales", "i": "item", "c": "customer",
                        "ca": "customer_address"},
             joins=[("ss.ss_item_sk", "i.i_item_sk"),
                    ("ss.ss_customer_sk", "c.c_customer_sk"),
                    ("c.c_current_addr_sk", "ca.ca_address_sk")],
             filters=[eq("i.i_category", "Electronics"), eq("ca.ca_state", "CA")],
             min_outputs=["ss.ss_sales_price", "i.i_current_price"]),
        # 3: demographic slice of store sales
        dict(relations={"ss": "store_sales", "cd": "customer_demographics",
                        "d": "date_dim"},
             joins=[("ss.ss_cdemo_sk", "cd.cd_demo_sk"),
                    ("ss.ss_sold_date_sk", "d.d_date_sk")],
             filters=[eq("cd.cd_gender", "F"), eq("cd.cd_marital_status", "M"),
                      eq("d.d_year", 2000)],
             min_outputs=["ss.ss_quantity"]),
        # 4: promoted store sales in specific stores
        dict(relations={"ss": "store_sales", "p": "promotion", "s": "store",
                        "d": "date_dim"},
             joins=[("ss.ss_promo_sk", "p.p_promo_sk"),
                    ("ss.ss_store_sk", "s.s_store_sk"),
                    ("ss.ss_sold_date_sk", "d.d_date_sk")],
             filters=[eq("p.p_channel_tv", "Y"), eq("s.s_state", "CA"),
                      between("d.d_moy", 11, 12)],
             min_outputs=["ss.ss_ext_sales_price"]),
        # 5: catalog and store sales of the same item (fact-fact join)
        dict(relations={"ss": "store_sales", "cs": "catalog_sales", "i": "item"},
             joins=[("ss.ss_item_sk", "i.i_item_sk"),
                    ("cs.cs_item_sk", "i.i_item_sk")],
             filters=[eq("i.i_category", "Jewelry"), gt("i.i_current_price", 100.0)],
             min_outputs=["ss.ss_sales_price", "cs.cs_sales_price"]),
        # 6: returned items and original sales (fact-fact via item & customer)
        dict(relations={"ss": "store_sales", "sr": "store_returns", "i": "item"},
             joins=[("ss.ss_item_sk", "i.i_item_sk"),
                    ("sr.sr_item_sk", "i.i_item_sk")],
             filters=[eq("i.i_category", "Shoes"), gt("sr.sr_return_amt", 200.0)],
             min_outputs=["sr.sr_return_amt"]),
        # 7: web and store customers (fact-fact via customer)
        dict(relations={"ss": "store_sales", "ws": "web_sales", "c": "customer"},
             joins=[("ss.ss_customer_sk", "c.c_customer_sk"),
                    ("ws.ws_bill_customer_sk", "c.c_customer_sk")],
             filters=[gt("c.c_birth_year", 1980), gt("ws.ws_quantity", 50)],
             min_outputs=["ss.ss_sales_price", "ws.ws_sales_price"]),
        # 8: household demographics and address slice
        dict(relations={"ss": "store_sales", "hd": "household_demographics",
                        "ca": "customer_address", "d": "date_dim"},
             joins=[("ss.ss_hdemo_sk", "hd.hd_demo_sk"),
                    ("ss.ss_addr_sk", "ca.ca_address_sk"),
                    ("ss.ss_sold_date_sk", "d.d_date_sk")],
             filters=[gt("hd.hd_dep_count", 5), eq("ca.ca_state", "TX"),
                      eq("d.d_year", 1999)],
             min_outputs=["ss.ss_quantity"]),
        # 9: five-dimension slice of store sales
        dict(relations={"ss": "store_sales", "i": "item", "c": "customer",
                        "cd": "customer_demographics", "d": "date_dim"},
             joins=[("ss.ss_item_sk", "i.i_item_sk"),
                    ("ss.ss_customer_sk", "c.c_customer_sk"),
                    ("c.c_current_cdemo_sk", "cd.cd_demo_sk"),
                    ("ss.ss_sold_date_sk", "d.d_date_sk")],
             filters=[eq("i.i_category", "Sports"), eq("cd.cd_gender", "M"),
                      ge("d.d_year", 2000)],
             min_outputs=["ss.ss_sales_price"]),
        # 10: catalog sales to young customers in certain states
        dict(relations={"cs": "catalog_sales", "c": "customer",
                        "ca": "customer_address", "d": "date_dim"},
             joins=[("cs.cs_bill_customer_sk", "c.c_customer_sk"),
                    ("c.c_current_addr_sk", "ca.ca_address_sk"),
                    ("cs.cs_sold_date_sk", "d.d_date_sk")],
             filters=[gt("c.c_birth_year", 1985), isin("ca.ca_state", ("NY", "FL")),
                      eq("d.d_year", 2001)],
             min_outputs=["cs.cs_sales_price"]),
        # 11: cross-channel item movement (three facts around item)
        dict(relations={"ss": "store_sales", "cs": "catalog_sales",
                        "ws": "web_sales", "i": "item"},
             joins=[("ss.ss_item_sk", "i.i_item_sk"),
                    ("cs.cs_item_sk", "i.i_item_sk"),
                    ("ws.ws_item_sk", "i.i_item_sk")],
             filters=[eq("i.i_category", "Music"), lt("i.i_current_price", 20.0)],
             min_outputs=["i.i_current_price"]),
        # 12: store sales with promotion and demographics
        dict(relations={"ss": "store_sales", "p": "promotion",
                        "cd": "customer_demographics", "i": "item"},
             joins=[("ss.ss_promo_sk", "p.p_promo_sk"),
                    ("ss.ss_cdemo_sk", "cd.cd_demo_sk"),
                    ("ss.ss_item_sk", "i.i_item_sk")],
             filters=[eq("p.p_channel_email", "Y"), eq("cd.cd_education_status", "College"),
                      eq("i.i_category", "Toys")],
             min_outputs=["ss.ss_sales_price"]),
        # 13: returns of web-bought items (returns + web sales via item/customer)
        dict(relations={"ws": "web_sales", "sr": "store_returns", "c": "customer",
                        "d": "date_dim"},
             joins=[("ws.ws_bill_customer_sk", "c.c_customer_sk"),
                    ("sr.sr_customer_sk", "c.c_customer_sk"),
                    ("ws.ws_sold_date_sk", "d.d_date_sk")],
             filters=[gt("sr.sr_return_amt", 100.0), eq("d.d_year", 2000)],
             min_outputs=["ws.ws_sales_price", "sr.sr_return_amt"]),
        # 14: store and store sales in a holiday month
        dict(relations={"ss": "store_sales", "s": "store", "d": "date_dim",
                        "i": "item"},
             joins=[("ss.ss_store_sk", "s.s_store_sk"),
                    ("ss.ss_sold_date_sk", "d.d_date_sk"),
                    ("ss.ss_item_sk", "i.i_item_sk")],
             filters=[eq("d.d_moy", 12), eq("s.s_state", "TX"),
                      isin("i.i_category", ("Toys", "Electronics"))],
             min_outputs=["ss.ss_ext_sales_price"]),
        # 15: wide slice across six relations
        dict(relations={"ss": "store_sales", "i": "item", "c": "customer",
                        "ca": "customer_address", "d": "date_dim", "s": "store"},
             joins=[("ss.ss_item_sk", "i.i_item_sk"),
                    ("ss.ss_customer_sk", "c.c_customer_sk"),
                    ("c.c_current_addr_sk", "ca.ca_address_sk"),
                    ("ss.ss_sold_date_sk", "d.d_date_sk"),
                    ("ss.ss_store_sk", "s.s_store_sk")],
             filters=[eq("i.i_category", "Women"), eq("ca.ca_state", "CA"),
                      eq("d.d_year", 1999), eq("s.s_state", "CA")],
             min_outputs=["ss.ss_sales_price"]),
    ]
    return [Query.from_spj(build_spj(name=f"dsb-spj-{i}", **spec), kind="spj")
            for i, spec in enumerate(specs, start=1)]


def dsb_nonspj_queries() -> list[Query]:
    """Ten representative non-SPJ DSB queries (Figure 14)."""
    queries: list[Query] = []

    def add(number: int, relations, joins, filters, group_by, aggregates):
        spj = build_spj(name=f"dsb-agg-{number}", relations=relations, joins=joins,
                        filters=filters, count_output=False)
        queries.append(grouped_query(f"dsb-nonspj-{number}", spj, group_by, aggregates))

    add(1, {"ss": "store_sales", "i": "item", "d": "date_dim"},
        [("ss.ss_item_sk", "i.i_item_sk"), ("ss.ss_sold_date_sk", "d.d_date_sk")],
        [eq("d.d_year", 1999)],
        ["i.i_category"],
        [("sum", "ss.ss_ext_sales_price", "total_sales"), ("count", None, "sales")])
    add(2, {"ss": "store_sales", "s": "store", "d": "date_dim"},
        [("ss.ss_store_sk", "s.s_store_sk"), ("ss.ss_sold_date_sk", "d.d_date_sk")],
        [between("d.d_moy", 6, 8)],
        ["s.s_state"],
        [("sum", "ss.ss_sales_price", "summer_sales")])
    add(3, {"cs": "catalog_sales", "c": "customer", "cd": "customer_demographics"},
        [("cs.cs_bill_customer_sk", "c.c_customer_sk"),
         ("c.c_current_cdemo_sk", "cd.cd_demo_sk")],
        [eq("cd.cd_gender", "F")],
        ["cd.cd_education_status"],
        [("avg", "cs.cs_sales_price", "avg_price"), ("count", None, "orders")])
    add(4, {"ws": "web_sales", "i": "item", "d": "date_dim"},
        [("ws.ws_item_sk", "i.i_item_sk"), ("ws.ws_sold_date_sk", "d.d_date_sk")],
        [gt("i.i_current_price", 50.0)],
        ["i.i_brand"],
        [("sum", "ws.ws_sales_price", "brand_revenue")])
    add(5, {"ss": "store_sales", "sr": "store_returns", "i": "item"},
        [("ss.ss_item_sk", "i.i_item_sk"), ("sr.sr_item_sk", "i.i_item_sk")],
        [eq("i.i_category", "Electronics")],
        ["i.i_brand"],
        [("sum", "sr.sr_return_amt", "returned"), ("count", None, "events")])
    add(6, {"ss": "store_sales", "hd": "household_demographics", "s": "store"},
        [("ss.ss_hdemo_sk", "hd.hd_demo_sk"), ("ss.ss_store_sk", "s.s_store_sk")],
        [gt("hd.hd_income_band_sk", 15)],
        ["s.s_state"],
        [("avg", "ss.ss_quantity", "avg_quantity")])
    add(7, {"cs": "catalog_sales", "i": "item", "d": "date_dim"},
        [("cs.cs_item_sk", "i.i_item_sk"), ("cs.cs_sold_date_sk", "d.d_date_sk")],
        [eq("d.d_year", 2001), isin("i.i_category", ("Books", "Music"))],
        ["i.i_category", "d.d_moy"],
        [("sum", "cs.cs_sales_price", "monthly_revenue")])
    add(8, {"ss": "store_sales", "c": "customer", "ca": "customer_address",
            "d": "date_dim"},
        [("ss.ss_customer_sk", "c.c_customer_sk"),
         ("c.c_current_addr_sk", "ca.ca_address_sk"),
         ("ss.ss_sold_date_sk", "d.d_date_sk")],
        [eq("d.d_year", 2000)],
        ["ca.ca_state"],
        [("sum", "ss.ss_ext_sales_price", "state_revenue"), ("count", None, "sales")])

    # 9: cross-channel union: revenue per item category from store and web sales.
    store_part = grouped_query(
        "dsb-nonspj-9-store",
        build_spj(name="dsb-agg-9s",
                  relations={"ss": "store_sales", "i": "item"},
                  joins=[("ss.ss_item_sk", "i.i_item_sk")],
                  filters=[gt("ss.ss_quantity", 10)],
                  count_output=False),
        ["i.i_category"],
        [("sum", "ss.ss_sales_price", "revenue")])
    web_part = grouped_query(
        "dsb-nonspj-9-web",
        build_spj(name="dsb-agg-9w",
                  relations={"ws": "web_sales", "i": "item"},
                  joins=[("ws.ws_item_sk", "i.i_item_sk")],
                  filters=[gt("ws.ws_quantity", 10)],
                  count_output=False),
        ["i.i_category"],
        [("sum", "ws.ws_sales_price", "revenue")])
    # Rename the aggregate columns so the union branches line up.
    queries.append(union_query("dsb-nonspj-9", [store_part, web_part]))

    add(10, {"ss": "store_sales", "i": "item", "c": "customer",
             "cd": "customer_demographics", "d": "date_dim"},
        [("ss.ss_item_sk", "i.i_item_sk"),
         ("ss.ss_customer_sk", "c.c_customer_sk"),
         ("c.c_current_cdemo_sk", "cd.cd_demo_sk"),
         ("ss.ss_sold_date_sk", "d.d_date_sk")],
        [eq("cd.cd_marital_status", "S"), ge("d.d_year", 2000)],
        ["i.i_category", "cd.cd_gender"],
        [("sum", "ss.ss_sales_price", "revenue")])

    return queries


def dsb_queries() -> list[Query]:
    """All DSB queries: 15 SPJ followed by 10 non-SPJ."""
    return dsb_spj_queries() + dsb_nonspj_queries()
