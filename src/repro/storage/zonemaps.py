"""Per-block zone maps for block-partitioned columnar tables.

A loaded :class:`~repro.storage.table.DataTable` is logically partitioned
into fixed-size **blocks** of :data:`DEFAULT_BLOCK_SIZE` rows.  For every
``(column, block)`` pair a :class:`BlockZone` records the summary the scan
pruner needs:

* ``min_value`` / ``max_value`` over the block's *non-null* values
  (``None`` when the block holds no non-null value at all);
* ``null_count`` (``None`` for strings, ``NaN`` for floats);
* ``single_value`` -- the distinct-ness flag: every non-null value in the
  block is identical (true for constant runs and for clustered
  low-cardinality columns, and what lets ``!=`` prune).

:class:`TableZoneMaps` bundles the zones of every column and answers the
one question the :class:`~repro.executor.operators.Scan` operator asks:
*which blocks can possibly contain a row satisfying these predicates?*
(:meth:`TableZoneMaps.candidate_blocks`).  The answer is **conservative by
construction**: a block is only pruned when the zone summary *proves* no
row in it can satisfy the predicate; any predicate shape the pruner does
not understand keeps the block.  Null semantics follow the executor's
vectorized evaluation exactly: ``NaN``/``None`` never satisfy ``=``, ``<``,
``BETWEEN``, ``IN`` or prefix predicates, but *do* satisfy ``!=``.

See ARCHITECTURE.md ("Block-partitioned storage") for how pruning slots
into the scan -> prune -> filter dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.plan.expressions import (
    Between,
    Comparison,
    InList,
    IsNotNull,
    OrPredicate,
    Predicate,
    StringPrefix,
)

#: Default number of rows per storage block (a power of two near the size
#: where numpy kernel launch overhead stops dominating the per-row work).
DEFAULT_BLOCK_SIZE = 4096


@dataclass(frozen=True)
class BlockZone:
    """Zone-map summary of one column over one block of rows."""

    #: Smallest / largest non-null value in the block (``None`` when the
    #: block contains no non-null value).
    min_value: object
    max_value: object
    #: Number of null values (``NaN`` for floats, ``None`` for strings).
    null_count: int
    #: Rows in the block (the last block of a table may be short).
    num_rows: int
    #: Distinct-ness flag: all non-null values in the block are equal.
    single_value: bool

    @property
    def non_null_count(self) -> int:
        return self.num_rows - self.null_count


class TableZoneMaps:
    """Zone maps of every column of one table at a fixed block size."""

    __slots__ = ("block_size", "num_rows", "num_blocks", "columns",
                 "_vector_zones")

    def __init__(self, block_size: int, num_rows: int,
                 columns: dict[str, tuple[BlockZone, ...]]):
        self.block_size = block_size
        self.num_rows = num_rows
        self.num_blocks = _num_blocks(num_rows, block_size)
        self.columns = columns
        #: Lazily built per-column arrays for the vectorized numeric checks.
        self._vector_zones: dict[str, "_VectorZones | None"] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, columns: dict[str, np.ndarray],
              block_size: int = DEFAULT_BLOCK_SIZE) -> "TableZoneMaps":
        """Build zone maps for a column dict (all arrays the same length)."""
        if block_size <= 0:
            raise ValueError("block_size must be positive to build zone maps")
        num_rows = len(next(iter(columns.values()))) if columns else 0
        zones = {name: _column_zones(np.asarray(array), block_size)
                 for name, array in columns.items()}
        return cls(block_size=block_size, num_rows=num_rows, columns=zones)

    def extended(self, columns: dict[str, np.ndarray],
                 rebuild: frozenset[str] | set[str] = frozenset()
                 ) -> "TableZoneMaps":
        """Zone maps covering ``columns`` after rows were appended.

        The incremental maintenance path of ``DataTable.append_rows``:
        zones of blocks that were already **full** are carried over
        untouched, and only the previously partial tail block plus every
        new block are recomputed from the data.  Columns named in
        ``rebuild`` (whose stored representation changed wholesale, e.g. a
        dictionary-code remap) and columns this map has never seen are
        recomputed in full.  Returns a fresh :class:`TableZoneMaps` (the
        vectorized-zone cache restarts empty).
        """
        num_rows = len(next(iter(columns.values()))) if columns else 0
        if num_rows < self.num_rows:
            raise ValueError("extended() requires appended rows, not fewer")
        keep = self.num_rows // self.block_size
        start = keep * self.block_size
        zones: dict[str, tuple[BlockZone, ...]] = {}
        for name, array in columns.items():
            array = np.asarray(array)
            if name in rebuild or name not in self.columns:
                zones[name] = _column_zones(array, self.block_size)
                continue
            # start is block-aligned, so the recomputed tail zones line up
            # with the retained full-block prefix.
            tail = _column_zones(array[start:], self.block_size)
            zones[name] = self.columns[name][:keep] + tail
        return TableZoneMaps(block_size=self.block_size, num_rows=num_rows,
                             columns=zones)

    def block_bounds(self, block: int) -> tuple[int, int]:
        """The ``[start, stop)`` row range of ``block``."""
        start = block * self.block_size
        return start, min(start + self.block_size, self.num_rows)

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------
    def candidate_blocks(self, predicates, name_of) -> np.ndarray:
        """Boolean mask over blocks: True = the block must still be scanned.

        ``predicates`` is the conjunction of a scan's pushed-down filters;
        ``name_of`` maps each predicate's :class:`ColumnRef` to the column
        name under which the table stores it (bare for base tables,
        qualified for temporaries).  A block survives only if *every*
        conjunct can possibly be satisfied inside it.
        """
        mask = np.ones(self.num_blocks, dtype=bool)
        for predicate in predicates:
            vector = self._vector_maybe(predicate, name_of)
            if vector is not None:
                mask &= vector
                continue
            for block in np.nonzero(mask)[0]:
                if not self._maybe(predicate, int(block), name_of):
                    mask[block] = False
        return mask

    def pruned_fraction(self, predicates, name_of) -> float:
        """Fraction of blocks the given conjunction prunes (0.0 when empty)."""
        if self.num_blocks == 0:
            return 0.0
        mask = self.candidate_blocks(predicates, name_of)
        return 1.0 - float(mask.sum()) / self.num_blocks

    # ------------------------------------------------------------------
    # Vectorized zone tests for numeric columns (the hot path: one numpy
    # expression over all blocks instead of a Python loop per block)
    # ------------------------------------------------------------------
    def _vectors_for(self, name: str) -> "_VectorZones | None":
        if name not in self._vector_zones:
            zones = self.columns.get(name)
            self._vector_zones[name] = (
                _VectorZones.build(zones)
                if zones is not None and all(
                    not isinstance(z.min_value, str) for z in zones)
                else None)
        return self._vector_zones[name]

    def _vector_maybe(self, predicate: Predicate, name_of) -> np.ndarray | None:
        """Vectorized block mask for ``predicate``, or None to use the loop."""
        if not isinstance(predicate, (Comparison, Between, InList, IsNotNull)):
            return None
        vectors = self._vectors_for(name_of(predicate.column))
        if vectors is None:
            return None
        try:
            return vectors.maybe(predicate)
        except TypeError:
            # Mixed-type literal (e.g. string against a numeric zone): fall
            # back to the per-block path, which keeps the block.
            return None

    # ------------------------------------------------------------------
    # Per-predicate zone tests (conservative: unknown shapes keep the block)
    # ------------------------------------------------------------------
    def _maybe(self, predicate: Predicate, block: int, name_of) -> bool:
        try:
            if isinstance(predicate, OrPredicate):
                return any(self._maybe(child, block, name_of)
                           for child in predicate.children)
            if isinstance(predicate, (Comparison, Between, InList, IsNotNull,
                                      StringPrefix)):
                zones = self.columns.get(name_of(predicate.column))
                if zones is None:
                    return True
                return _zone_maybe(zones[block], predicate)
        except TypeError:
            # Mixed-type comparison (e.g. a string literal against a numeric
            # zone): the vectorized evaluation decides, we keep the block.
            return True
        return True


def _zone_maybe(zone: BlockZone, predicate: Predicate) -> bool:
    """Can any row of ``zone``'s block satisfy ``predicate``?"""
    if isinstance(predicate, IsNotNull):
        return zone.non_null_count > 0
    if isinstance(predicate, Comparison):
        return _comparison_maybe(zone, predicate.op, predicate.value)
    if isinstance(predicate, Between):
        if _lt(predicate.high, predicate.low):  # unsatisfiable range
            return False
        return (zone.non_null_count > 0
                and not _lt(zone.max_value, predicate.low)
                and not _lt(predicate.high, zone.min_value))
    if isinstance(predicate, InList):
        return zone.non_null_count > 0 and any(
            not _lt(value, zone.min_value) and not _lt(zone.max_value, value)
            for value in predicate.values)
    if isinstance(predicate, StringPrefix):
        # s.startswith(p)  =>  s >= p, so max < p proves no match; and
        # min <= s  =>  min[:len(p)] <= s[:len(p)] == p, so a truncated
        # minimum above p proves no match either.
        if zone.non_null_count == 0:
            return False
        if not isinstance(zone.min_value, str) or not isinstance(zone.max_value, str):
            return True
        prefix = predicate.prefix
        return (zone.max_value >= prefix
                and zone.min_value[:len(prefix)] <= prefix)
    return True


def _comparison_maybe(zone: BlockZone, op: str, value: object) -> bool:
    if op == "!=":
        # Nulls satisfy ``!=`` under the executor's semantics (NaN != v and
        # None != v are both True), so only a fully-single-valued,
        # null-free block equal to the literal can be pruned.
        if zone.null_count > 0:
            return True
        return zone.non_null_count > 0 and not (
            zone.single_value and _eq(zone.min_value, value))
    if zone.non_null_count == 0:
        return False
    if op == "=":
        return not _lt(value, zone.min_value) and not _lt(zone.max_value, value)
    if op == "<":
        return _lt(zone.min_value, value)
    if op == "<=":
        return not _lt(value, zone.min_value)
    if op == ">":
        return _lt(value, zone.max_value)
    # op == ">="
    return not _lt(zone.max_value, value)


def _lt(a, b) -> bool:
    """``a < b`` with NaN behaving like the vectorized kernels (never True)."""
    result = a < b
    return bool(result)


def _eq(a, b) -> bool:
    return bool(a == b)


class _VectorZones:
    """Array-of-structs view of one numeric column's zones.

    ``mins``/``maxs`` are NaN for blocks with no non-null value, so every
    range comparison is automatically False there (exactly the scalar
    rules).  Integer columns keep ``int64`` bounds — converting to float
    would lose precision above 2**53 and could prune a matching block.
    """

    __slots__ = ("mins", "maxs", "null_counts", "num_rows", "single")

    def __init__(self, mins, maxs, null_counts, num_rows, single):
        self.mins = mins
        self.maxs = maxs
        self.null_counts = null_counts
        self.num_rows = num_rows
        self.single = single

    @classmethod
    def build(cls, zones: tuple[BlockZone, ...]) -> "_VectorZones":
        min_values = [z.min_value for z in zones]
        max_values = [z.max_value for z in zones]
        if any(v is None for v in min_values) or any(
                isinstance(v, float) for v in min_values):
            nan = float("nan")
            mins = np.array([nan if v is None else float(v) for v in min_values])
            maxs = np.array([nan if v is None else float(v) for v in max_values])
        else:
            mins = np.array(min_values, dtype=np.int64)
            maxs = np.array(max_values, dtype=np.int64)
        return cls(mins, maxs,
                   np.array([z.null_count for z in zones], dtype=np.int64),
                   np.array([z.num_rows for z in zones], dtype=np.int64),
                   np.array([z.single_value for z in zones], dtype=bool))

    def maybe(self, predicate: Predicate) -> np.ndarray:
        """Block mask mirroring :func:`_zone_maybe` for supported shapes."""
        if isinstance(predicate, IsNotNull):
            return self.null_counts < self.num_rows
        if isinstance(predicate, Between):
            if _lt(predicate.high, predicate.low):
                return np.zeros(len(self.mins), dtype=bool)
            return (self.maxs >= predicate.low) & (self.mins <= predicate.high)
        if isinstance(predicate, InList):
            mask = np.zeros(len(self.mins), dtype=bool)
            for value in predicate.values:
                mask |= (self.mins <= value) & (self.maxs >= value)
            return mask
        op, value = predicate.op, predicate.value
        if op == "=":
            return (self.mins <= value) & (self.maxs >= value)
        if op == "!=":
            return (self.null_counts > 0) | (
                ~np.isnan(self.mins.astype(np.float64, copy=False))
                & ~(self.single & (self.mins == value)))
        if op == "<":
            return self.mins < value
        if op == "<=":
            return self.mins <= value
        if op == ">":
            return self.maxs > value
        return self.maxs >= value


# ----------------------------------------------------------------------
# Zone construction
# ----------------------------------------------------------------------
def _num_blocks(num_rows: int, block_size: int) -> int:
    return -(-num_rows // block_size) if num_rows else 0


def _column_zones(array: np.ndarray,
                  block_size: int) -> tuple[BlockZone, ...]:
    zones = []
    for start in range(0, len(array), block_size):
        block = array[start:start + block_size]
        zones.append(_block_zone(block))
    return tuple(zones)


def _block_zone(block: np.ndarray) -> BlockZone:
    num_rows = len(block)
    if block.dtype == object:
        non_null = [v for v in block if v is not None]
        null_count = num_rows - len(non_null)
        if not non_null:
            return BlockZone(None, None, null_count, num_rows, False)
        lo, hi = min(non_null), max(non_null)
        return BlockZone(lo, hi, null_count, num_rows,
                         single_value=_eq(lo, hi))
    if block.dtype.kind == "f":
        null_mask = np.isnan(block)
        non_null = block[~null_mask]
        null_count = int(null_mask.sum())
        if len(non_null) == 0:
            return BlockZone(None, None, null_count, num_rows, False)
        lo, hi = float(non_null.min()), float(non_null.max())
        return BlockZone(lo, hi, null_count, num_rows, single_value=lo == hi)
    if num_rows == 0:
        return BlockZone(None, None, 0, 0, False)
    lo, hi = block.min().item(), block.max().item()
    return BlockZone(lo, hi, 0, num_rows, single_value=lo == hi)
