"""Storage subsystem: in-memory columnar tables, indexes, and the database.

This replaces the PostgreSQL storage layer used in the paper.  Tables are
columnar (one numpy array per column) and block-partitioned (per-block zone
maps drive scan pruning, see :mod:`repro.storage.zonemaps`), indexes are
sorted permutations that support vectorized equality probes (the analogue of
B+tree index lookups), and a :class:`~repro.storage.database.Database`
bundles the schema, the base tables, their statistics, the configured
indexes, and any temporary tables materialized during re-optimization.
"""

from repro.storage.table import DataTable
from repro.storage.index import SortedIndex
from repro.storage.database import Database, IndexConfig
from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE, BlockZone, TableZoneMaps

__all__ = ["DataTable", "SortedIndex", "Database", "IndexConfig",
           "DEFAULT_BLOCK_SIZE", "BlockZone", "TableZoneMaps"]
