"""Columnar in-memory tables.

A :class:`DataTable` stores one numpy array per column.  Base tables use bare
column names (``id``, ``movie_id``); intermediate results produced by the
executor use qualified names (``t.id``, ``mk.movie_id``) so that columns from
different relations never collide after a join.

Loaded base tables are additionally **block-partitioned**: at load time
(:meth:`Database.load_table <repro.storage.database.Database.load_table>`
calls :meth:`DataTable.build_zone_maps`) the table is split into fixed-size
row blocks and a per-block :class:`~repro.storage.zonemaps.BlockZone`
summary (min/max, null count, distinct-ness flag) is recorded for every
column.  The :class:`~repro.executor.operators.Scan` operator uses those
zone maps to skip whole blocks whose summary proves no row can satisfy the
pushed-down filters; tables without zone maps (temporaries, or a database
loaded with ``block_size=0``) are scanned in full exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE, TableZoneMaps


@dataclass
class DataTable:
    """An immutable, columnar, in-memory table.

    Parameters
    ----------
    name:
        Table name (base table name or a generated temporary-table name).
    columns:
        Mapping of column name to numpy array.  All arrays must have the same
        length.
    """

    name: str
    columns: dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-block zone maps (built by :meth:`build_zone_maps`; ``None`` until
    #: then).  Excluded from equality: two tables with the same data are the
    #: same table regardless of how they are partitioned.
    zone_maps: TableZoneMaps | None = field(default=None, compare=False,
                                            repr=False)

    def __post_init__(self) -> None:
        lengths = {len(arr) for arr in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"columns of table {self.name!r} have differing lengths: {lengths}")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> list[str]:
        """Names of all columns."""
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        """Return the array for column ``name``."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """True if the table has a column called ``name``."""
        return name in self.columns

    def gather(self, name: str, row_ids: np.ndarray) -> np.ndarray:
        """Materialize column ``name`` at the given row ids.

        This is the single point where the late-materialization executor
        turns a selection vector back into real column data; chunks call it
        exactly once per (column, plan-root) instead of once per operator.
        """
        return self.column(name)[row_ids]

    # ------------------------------------------------------------------
    # Block partitioning (zone maps)
    # ------------------------------------------------------------------
    def build_zone_maps(self, block_size: int = DEFAULT_BLOCK_SIZE
                        ) -> TableZoneMaps | None:
        """Partition the table into ``block_size``-row blocks with zone maps.

        Called once at load time; ``block_size <= 0`` disables partitioning
        (zone maps are cleared and every scan reads the full columns).
        Returns the built :class:`TableZoneMaps` (or ``None`` when disabled).
        """
        if block_size is None or block_size <= 0:
            self.zone_maps = None
        else:
            self.zone_maps = TableZoneMaps.build(self.columns, block_size)
        return self.zone_maps

    # ------------------------------------------------------------------
    # Row-level operations (vectorized)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray, name: str | None = None) -> "DataTable":
        """Return a new table containing the rows selected by ``indices``."""
        if not self.columns and len(indices):
            # A zero-column table has no rows (num_rows is necessarily 0), so
            # any non-empty selection refers to rows that do not exist.
            # Failing loudly here beats silently producing a 0-row result
            # downstream of a Scan/Aggregate that believed rows were selected.
            raise ValueError(
                f"cannot select {len(indices)} row(s) from zero-column table "
                f"{self.name!r}")
        return DataTable(
            name=name or self.name,
            columns={col: arr[indices] for col, arr in self.columns.items()},
        )

    def filter(self, mask: np.ndarray, name: str | None = None) -> "DataTable":
        """Return a new table containing only rows where ``mask`` is True."""
        if not self.columns and np.any(mask):
            raise ValueError(
                f"cannot select rows from zero-column table {self.name!r}")
        return DataTable(
            name=name or self.name,
            columns={col: arr[mask] for col, arr in self.columns.items()},
        )

    def project(self, names: list[str], name: str | None = None) -> "DataTable":
        """Return a new table containing only the listed columns."""
        return DataTable(
            name=name or self.name,
            columns={col: self.columns[col] for col in names},
        )

    def rename_columns(self, mapping: dict[str, str], name: str | None = None) -> "DataTable":
        """Return a new table with columns renamed according to ``mapping``."""
        return DataTable(
            name=name or self.name,
            columns={mapping.get(col, col): arr for col, arr in self.columns.items()},
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, name: str, column_names: list[str], rows: list[tuple]) -> "DataTable":
        """Build a table from a list of row tuples (convenience for tests)."""
        if not rows:
            return cls(name=name, columns={c: np.array([]) for c in column_names})
        columns = {}
        for i, col in enumerate(column_names):
            values = [row[i] for row in rows]
            if all(isinstance(v, (int, np.integer)) for v in values):
                columns[col] = np.array(values, dtype=np.int64)
            elif all(isinstance(v, (int, float, np.integer, np.floating)) for v in values):
                columns[col] = np.array(values, dtype=np.float64)
            else:
                columns[col] = np.array(values, dtype=object)
        return cls(name=name, columns=columns)

    def to_rows(self) -> list[tuple]:
        """Return the table contents as a list of row tuples (tests only)."""
        names = self.column_names
        arrays = [self.columns[c] for c in names]
        return [tuple(arr[i] for arr in arrays) for i in range(self.num_rows)]

    # ------------------------------------------------------------------
    # Memory accounting (for the Table 4 reproduction)
    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the table in bytes."""
        total = 0
        for arr in self.columns.values():
            if arr.dtype == object:
                # Assume an average of 24 bytes per string payload plus the
                # 8-byte pointer stored in the array itself.
                total += arr.nbytes + 24 * len(arr)
            else:
                total += arr.nbytes
        return total

    def __repr__(self) -> str:
        return f"DataTable({self.name!r}, rows={self.num_rows}, cols={len(self.columns)})"
