"""Columnar in-memory tables.

A :class:`DataTable` stores one numpy array per column.  Base tables use bare
column names (``id``, ``movie_id``); intermediate results produced by the
executor use qualified names (``t.id``, ``mk.movie_id``) so that columns from
different relations never collide after a join.

Loaded base tables are additionally **block-partitioned**: at load time
(:meth:`Database.load_table <repro.storage.database.Database.load_table>`
calls :meth:`DataTable.build_zone_maps`) the table is split into fixed-size
row blocks and a per-block :class:`~repro.storage.zonemaps.BlockZone`
summary (min/max, null count, distinct-ness flag) is recorded for every
column.  The :class:`~repro.executor.operators.Scan` operator uses those
zone maps to skip whole blocks whose summary proves no row can satisfy the
pushed-down filters; tables without zone maps (temporaries, or a database
loaded with ``block_size=0``) are scanned in full exactly as before.

Base tables are additionally **mutable** through the dynamic-data subsystem
(see ARCHITECTURE.md "Dynamic data"): :meth:`DataTable.append_rows` grows
the table (incrementally extending zone maps and dictionaries) and
:meth:`DataTable.delete_rows` marks rows dead in a valid-row mask without
rewriting any block.  Every mutation bumps :attr:`DataTable.data_epoch`,
the counter the executor's subplan cache and the statistics-staleness
machinery key invalidation on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.dictionary import decode_lookup, encode_append, encode_column
from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE, TableZoneMaps


@dataclass
class DataTable:
    """A columnar, in-memory table.

    Temporaries produced by the executor are immutable; loaded base tables
    may additionally be mutated through :meth:`append_rows` /
    :meth:`delete_rows` (normally via the
    :class:`~repro.storage.database.Database` entry points, which also
    maintain indexes and fence serving sessions).

    Parameters
    ----------
    name:
        Table name (base table name or a generated temporary-table name).
    columns:
        Mapping of column name to numpy array.  All arrays must have the same
        length.  Dictionary-encoded string columns (see
        :meth:`encode_strings`) store ``int32`` code arrays here, with the
        sorted value dictionary in :attr:`dictionaries`.
    """

    name: str
    columns: dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-block zone maps (built by :meth:`build_zone_maps`; ``None`` until
    #: then).  Excluded from equality: two tables with the same data are the
    #: same table regardless of how they are partitioned.
    zone_maps: TableZoneMaps | None = field(default=None, compare=False,
                                            repr=False)
    #: Sorted value dictionary per dictionary-encoded column: the stored
    #: array holds ``int32`` codes into it (``-1`` = NULL).  Excluded from
    #: equality for the same reason as zone maps: encoding is a storage
    #: representation, not data.
    dictionaries: dict[str, np.ndarray] = field(default_factory=dict,
                                                compare=False, repr=False)

    def __post_init__(self) -> None:
        lengths = {len(arr) for arr in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"columns of table {self.name!r} have differing lengths: {lengths}")
        #: Lazily cached decoded columns (query-time identity gathers).
        self._decoded: dict[str, np.ndarray] = {}
        #: Valid-row mask (``None`` = every physical row is live).  Deletes
        #: never rewrite column data or zones; this mask is the single
        #: source of truth that every scan path intersects.
        self.valid_mask: np.ndarray | None = None
        #: Mutation counter: bumped once per append/delete batch.
        self.data_epoch: int = 0
        self._num_deleted: int = 0
        self._valid_ids: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> list[str]:
        """Names of all columns."""
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        """Return the array for column ``name``."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """True if the table has a column called ``name``."""
        return name in self.columns

    def gather(self, name: str, row_ids: np.ndarray) -> np.ndarray:
        """Materialize column ``name`` at the given row ids.

        This is the single point where the late-materialization executor
        turns a selection vector back into real column data; chunks call it
        exactly once per (column, plan-root) instead of once per operator.
        Dictionary-encoded columns are decoded here -- i.e. only for the
        rows that actually survive to a gather point.
        """
        selected = self.column(name)[row_ids]
        if name in self.dictionaries:
            return decode_lookup(self.dictionaries[name])[selected]
        return selected

    # ------------------------------------------------------------------
    # Dictionary encoding
    # ------------------------------------------------------------------
    def is_encoded(self, name: str) -> bool:
        """True if column ``name`` is stored as dictionary codes."""
        return name in self.dictionaries

    def dictionary(self, name: str) -> np.ndarray:
        """The sorted value dictionary of an encoded column."""
        return self.dictionaries[name]

    def column_values(self, name: str, cache: bool = True) -> np.ndarray:
        """The full *decoded* column (the stored array when unencoded).

        Whole-column consumers that need real values (ANALYZE, the
        cardinality oracle, identity-selection gathers) funnel through
        here.  ``cache=True`` keeps the decoded array for reuse across
        queries; one-shot consumers pass ``cache=False``.
        """
        if name not in self.dictionaries:
            return self.column(name)
        if name in self._decoded:
            return self._decoded[name]
        values = decode_lookup(self.dictionaries[name])[self.columns[name]]
        if cache:
            self._decoded[name] = values
        return values

    def encode_strings(self, skip: set[str] | frozenset[str] = frozenset()
                       ) -> list[str]:
        """Dictionary-encode every eligible object column in place.

        Eligible means: object dtype, every non-null value a plain string,
        and not listed in ``skip`` (indexed columns stay raw so sorted
        indexes keep operating on values).  Returns the encoded names.
        """
        encoded = []
        for name, values in list(self.columns.items()):
            if name in skip or name in self.dictionaries:
                continue
            result = encode_column(values)
            if result is None:
                continue
            codes, dictionary = result
            self.columns[name] = codes
            self.dictionaries[name] = dictionary
            self._decoded.pop(name, None)
            encoded.append(name)
        return encoded

    # ------------------------------------------------------------------
    # Block partitioning (zone maps)
    # ------------------------------------------------------------------
    def build_zone_maps(self, block_size: int = DEFAULT_BLOCK_SIZE
                        ) -> TableZoneMaps | None:
        """Partition the table into ``block_size``-row blocks with zone maps.

        Called once at load time; ``block_size <= 0`` disables partitioning
        (zone maps are cleared and every scan reads the full columns).
        Returns the built :class:`TableZoneMaps` (or ``None`` when disabled).
        """
        if block_size is None or block_size <= 0:
            self.zone_maps = None
        else:
            self.zone_maps = TableZoneMaps.build(self.columns, block_size)
        return self.zone_maps

    # ------------------------------------------------------------------
    # Mutations (the dynamic-data subsystem; see ARCHITECTURE.md)
    # ------------------------------------------------------------------
    @property
    def has_deletes(self) -> bool:
        """True once any row has been deleted (a valid-row mask exists)."""
        return self.valid_mask is not None

    @property
    def num_valid_rows(self) -> int:
        """Number of live rows (physical rows minus deleted ones)."""
        return self.num_rows - self._num_deleted

    def valid_row_ids(self) -> np.ndarray:
        """Physical row ids of the live rows, in order (cached)."""
        if self.valid_mask is None:
            return np.arange(self.num_rows, dtype=np.int64)
        if self._valid_ids is None:
            self._valid_ids = np.nonzero(self.valid_mask)[0].astype(
                np.int64, copy=False)
        return self._valid_ids

    def append_rows(self, rows: dict[str, np.ndarray]) -> int:
        """Append a batch of rows; returns the number of rows appended.

        ``rows`` must provide exactly this table's columns.  Dictionary-
        encoded columns take raw string-or-``None`` values: unseen strings
        grow the dictionary through the monotone sorted-union remap of
        :func:`~repro.storage.dictionary.encode_append`, so order-preserving
        predicate translation keeps working.  Zone maps are maintained
        incrementally -- existing full blocks keep their zones, only the
        partial tail block and the new blocks are recomputed (columns whose
        codes were remapped are re-zoned in full).  Bumps
        :attr:`data_epoch`.
        """
        if set(rows) != set(self.columns):
            raise ValueError(
                f"append to {self.name!r} must provide exactly columns "
                f"{sorted(self.columns)}, got {sorted(rows)}")
        counts = {len(np.asarray(values)) for values in rows.values()}
        if len(counts) > 1:
            raise ValueError(
                f"appended columns for {self.name!r} have differing "
                f"lengths: {counts}")
        count = counts.pop() if counts else 0
        if count == 0:
            return 0
        remapped: set[str] = set()
        for name, stored in list(self.columns.items()):
            incoming = np.asarray(rows[name])
            if name in self.dictionaries:
                old_codes, new_codes, dictionary, grew = encode_append(
                    stored, self.dictionaries[name], incoming)
                if grew:
                    remapped.add(name)
                    self.dictionaries[name] = dictionary
                self.columns[name] = np.concatenate([old_codes, new_codes])
            else:
                # Pin the column's dtype: silently promoting (say) int64 to
                # float64 would change predicate semantics table-wide.
                if stored.dtype == object:
                    incoming = incoming.astype(object)
                else:
                    incoming = incoming.astype(stored.dtype, copy=False)
                self.columns[name] = np.concatenate([stored, incoming])
        if self.valid_mask is not None:
            self.valid_mask = np.concatenate(
                [self.valid_mask, np.ones(count, dtype=bool)])
        self._decoded.clear()
        self._valid_ids = None
        if self.zone_maps is not None:
            self.zone_maps = self.zone_maps.extended(self.columns,
                                                     rebuild=remapped)
        self.data_epoch += 1
        return count

    def delete_rows(self, row_ids: np.ndarray) -> int:
        """Mark physical rows deleted; returns the number of newly dead rows.

        Deletes are conservative by design: column data, dictionaries, and
        zone maps are left untouched (a zone proving "no row in this block
        matches" over a superset of the live rows still proves it for the
        subset), and every scan path intersects its selection with
        :attr:`valid_mask`.  Deleting an already-deleted row is a no-op.
        Bumps :attr:`data_epoch`.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0:
            return 0
        if row_ids.min() < 0 or row_ids.max() >= self.num_rows:
            raise IndexError(
                f"delete from {self.name!r}: row ids out of range "
                f"[0, {self.num_rows})")
        if self.valid_mask is None:
            self.valid_mask = np.ones(self.num_rows, dtype=bool)
        self.valid_mask[row_ids] = False
        live = int(self.valid_mask.sum())
        newly_deleted = self.num_valid_rows - live
        self._num_deleted = self.num_rows - live
        self._valid_ids = None
        self.data_epoch += 1
        return newly_deleted

    # ------------------------------------------------------------------
    # Row-level operations (vectorized)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray, name: str | None = None) -> "DataTable":
        """Return a new table containing the rows selected by ``indices``."""
        if not self.columns and len(indices):
            # A zero-column table has no rows (num_rows is necessarily 0), so
            # any non-empty selection refers to rows that do not exist.
            # Failing loudly here beats silently producing a 0-row result
            # downstream of a Scan/Aggregate that believed rows were selected.
            raise ValueError(
                f"cannot select {len(indices)} row(s) from zero-column table "
                f"{self.name!r}")
        return DataTable(
            name=name or self.name,
            columns={col: arr[indices] for col, arr in self.columns.items()},
            dictionaries=dict(self.dictionaries),
        )

    def filter(self, mask: np.ndarray, name: str | None = None) -> "DataTable":
        """Return a new table containing only rows where ``mask`` is True."""
        if not self.columns and np.any(mask):
            raise ValueError(
                f"cannot select rows from zero-column table {self.name!r}")
        return DataTable(
            name=name or self.name,
            columns={col: arr[mask] for col, arr in self.columns.items()},
            dictionaries=dict(self.dictionaries),
        )

    def project(self, names: list[str], name: str | None = None) -> "DataTable":
        """Return a new table containing only the listed columns."""
        return DataTable(
            name=name or self.name,
            columns={col: self.columns[col] for col in names},
            dictionaries={col: d for col, d in self.dictionaries.items()
                          if col in names},
        )

    def rename_columns(self, mapping: dict[str, str], name: str | None = None) -> "DataTable":
        """Return a new table with columns renamed according to ``mapping``."""
        return DataTable(
            name=name or self.name,
            columns={mapping.get(col, col): arr for col, arr in self.columns.items()},
            dictionaries={mapping.get(col, col): d
                          for col, d in self.dictionaries.items()},
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, name: str, column_names: list[str], rows: list[tuple]) -> "DataTable":
        """Build a table from a list of row tuples (convenience for tests)."""
        if not rows:
            return cls(name=name, columns={c: np.array([]) for c in column_names})
        columns = {}
        for i, col in enumerate(column_names):
            values = [row[i] for row in rows]
            if all(isinstance(v, (int, np.integer)) for v in values):
                columns[col] = np.array(values, dtype=np.int64)
            elif all(isinstance(v, (int, float, np.integer, np.floating)) for v in values):
                columns[col] = np.array(values, dtype=np.float64)
            else:
                columns[col] = np.array(values, dtype=object)
        return cls(name=name, columns=columns)

    def to_rows(self) -> list[tuple]:
        """Return the live rows as a list of row tuples (tests only)."""
        names = self.column_names
        arrays = [self.column_values(c, cache=False) for c in names]
        return [tuple(arr[i] for arr in arrays) for i in self.valid_row_ids()]

    # ------------------------------------------------------------------
    # Memory accounting (for the Table 4 reproduction)
    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Approximate memory footprint of the table in bytes."""
        total = 0
        for name, arr in self.columns.items():
            if name in self.dictionaries:
                # int32 codes plus the dictionary payload (pointer + assumed
                # 24-byte average string per distinct value).
                dictionary = self.dictionaries[name]
                total += arr.nbytes + dictionary.nbytes + 24 * len(dictionary)
            elif arr.dtype == object:
                # Assume an average of 24 bytes per string payload plus the
                # 8-byte pointer stored in the array itself.
                total += arr.nbytes + 24 * len(arr)
            else:
                total += arr.nbytes
        if self.valid_mask is not None:
            total += self.valid_mask.nbytes
        return total

    def __repr__(self) -> str:
        return f"DataTable({self.name!r}, rows={self.num_rows}, cols={len(self.columns)})"
