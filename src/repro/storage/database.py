"""The in-memory database: schema + tables + statistics + indexes + temporaries.

A :class:`Database` is the single object the optimizer and the executor share.
It corresponds to a loaded PostgreSQL instance in the paper's experiments: the
base tables of a benchmark (JOB / TPC-H / DSB), their ANALYZE statistics, the
B+tree indexes built on primary-key (and optionally foreign-key) columns, and
the temporary tables created while a re-optimization algorithm runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.catalog.analyze import analyze_table
from repro.catalog.schema import Schema
from repro.catalog.statistics import TableStats
from repro.storage.index import SortedIndex
from repro.storage.table import DataTable
from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE


class IndexConfig(enum.Enum):
    """Which columns get indexes (the paper evaluates both settings)."""

    PK_ONLY = "pk"
    PK_FK = "pk+fk"
    NONE = "none"


class MutationError(RuntimeError):
    """A base-table mutation was attempted in a state that forbids it.

    Raised when mutating through a :meth:`Database.session_view` (views
    share tables by reference; mutations must go through the origin) or
    while serving sessions are live (:meth:`Database.begin_serving` /
    :meth:`Database.end_serving` fence the window in which shared-by-
    reference tables would be silently corrupted under in-flight scans).
    """


@dataclass
class TempTableEntry:
    """A materialized intermediate result registered in the database."""

    table: DataTable
    stats: TableStats
    covered_aliases: frozenset[str]


class Database:
    """In-memory database instance shared by the optimizer and executor.

    ``block_size`` is the storage-block width (rows) used when loading base
    tables: every loaded table is partitioned into blocks of that size with
    per-block zone maps, which the scan operator uses to skip blocks that
    cannot satisfy its filters.  ``block_size=0`` disables partitioning (the
    pre-zone-map behaviour: every filtered scan reads the full columns).

    ``dict_encode`` (default on) dictionary-encodes eligible string columns
    at load time (:mod:`repro.storage.dictionary`): the stored array becomes
    ``int32`` codes into a sorted value dictionary, scans evaluate string
    predicates in code space, and zone maps over the codes prune blocks for
    string predicates too.  Indexed columns are never encoded.
    """

    def __init__(self, schema: Schema, index_config: IndexConfig = IndexConfig.PK_FK,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 dict_encode: bool = True):
        self.schema = schema
        self.index_config = index_config
        self.block_size = int(block_size)
        self.dict_encode = bool(dict_encode)
        self._tables: dict[str, DataTable] = {}
        self._stats: dict[str, TableStats] = {}
        self._indexes: dict[tuple[str, str], SortedIndex] = {}
        self._temp_tables: dict[str, TempTableEntry] = {}
        self._temp_counter = 0
        #: Live serving sessions (see :meth:`begin_serving`): while > 0,
        #: base-table mutations raise :class:`MutationError`.
        self._serving_sessions = 0
        #: Callbacks ``listener(table_name)`` fired after every mutation
        #: batch (the re-ANALYZE policies hook in here).
        self._mutation_listeners: list = []
        #: The database whose loaded data this instance exposes.  For a
        #: directly loaded database this is ``self``; a :meth:`session_view`
        #: shares its parent's origin, so consumers that must not be shared
        #: across *data* (e.g. :class:`~repro.executor.subplan_cache
        #: .SubplanCache`) can compare origins instead of instances.
        self.origin: "Database" = self

    # ------------------------------------------------------------------
    # Base table management
    # ------------------------------------------------------------------
    def load_table(self, table: DataTable, analyze: bool = True) -> None:
        """Register a base table, analyze it, and build indexes + zone maps.

        With ``dict_encode`` on, eligible string columns are re-stored as
        dictionary codes first, so statistics run over decoded values while
        zone maps are built over the (numeric) code arrays.
        """
        if not self.schema.has_table(table.name):
            raise KeyError(f"table {table.name!r} is not declared in the schema")
        if self.dict_encode:
            table.encode_strings(skip=self._indexed_columns(table.name))
        self._tables[table.name] = table
        if analyze:
            self._stats[table.name] = analyze_table(table)
        else:
            self._stats[table.name] = TableStats.row_count_only(table.num_rows)
        self._stats[table.name].analyzed_epoch = table.data_epoch
        self._build_indexes(table)
        table.build_zone_maps(self.block_size)

    def _indexed_columns(self, table_name: str) -> set[str]:
        """Columns the current :class:`IndexConfig` mandates indexes on."""
        if self.index_config is IndexConfig.NONE:
            return set()
        schema = self.schema.table(table_name)
        columns: set[str] = set()
        if schema.primary_key is not None:
            columns.add(schema.primary_key)
        if self.index_config is IndexConfig.PK_FK:
            columns.update(schema.foreign_key_columns())
        return columns

    def _build_indexes(self, table: DataTable) -> None:
        """Build the indexes mandated by the current :class:`IndexConfig`."""
        for column in self._indexed_columns(table.name):
            if table.has_column(column) and not table.is_encoded(column):
                if table.has_deletes:
                    valid = table.valid_row_ids()
                    self._indexes[(table.name, column)] = SortedIndex(
                        table.name, column, table.column(column)[valid],
                        row_ids=valid)
                else:
                    self._indexes[(table.name, column)] = SortedIndex(
                        table.name, column, table.column(column))

    def table(self, name: str) -> DataTable:
        """Look up a base or temporary table by name."""
        if name in self._tables:
            return self._tables[name]
        if name in self._temp_tables:
            return self._temp_tables[name].table
        raise KeyError(f"no table named {name!r} is loaded")

    def has_table(self, name: str) -> bool:
        """True if a base or temporary table called ``name`` exists."""
        return name in self._tables or name in self._temp_tables

    def stats(self, name: str) -> TableStats:
        """Statistics for a base or temporary table."""
        if name in self._stats:
            return self._stats[name]
        if name in self._temp_tables:
            return self._temp_tables[name].stats
        raise KeyError(f"no statistics for table {name!r}")

    def is_temp(self, name: str) -> bool:
        """True if ``name`` refers to a temporary (materialized) table."""
        return name in self._temp_tables

    @property
    def base_table_names(self) -> list[str]:
        """Names of all loaded base tables."""
        return list(self._tables)

    # ------------------------------------------------------------------
    # Mutations + statistics staleness (the dynamic-data subsystem; see
    # ARCHITECTURE.md "Dynamic data")
    # ------------------------------------------------------------------
    def append_rows(self, table_name: str, rows, analyze: bool = False) -> int:
        """Append a batch of rows to a loaded base table.

        Delegates to :meth:`DataTable.append_rows
        <repro.storage.table.DataTable.append_rows>` (incremental zone maps
        + dictionary growth), rebuilds the table's sorted indexes over its
        live rows, and fires the mutation listeners.  Statistics are **not**
        refreshed unless ``analyze=True`` -- going stale is the point of the
        subsystem; re-ANALYZE is a policy decision
        (:class:`~repro.dynamic.staleness.StalenessController`).  Raises
        :class:`MutationError` through a session view or while serving.
        """
        table = self._mutable_table(table_name)
        count = table.append_rows(rows)
        self._after_mutation(table, analyze)
        return count

    def delete_rows(self, table_name: str, row_ids, analyze: bool = False) -> int:
        """Mark rows of a loaded base table deleted (valid-row mask).

        Same maintenance and fencing contract as :meth:`append_rows`.
        """
        table = self._mutable_table(table_name)
        count = table.delete_rows(row_ids)
        self._after_mutation(table, analyze)
        return count

    def _mutable_table(self, table_name: str) -> DataTable:
        if self.origin is not self:
            raise MutationError(
                "base-table mutations must go through the origin database, "
                "not a session view (views share loaded tables by reference)")
        if self._serving_sessions:
            raise MutationError(
                f"cannot mutate base table {table_name!r} while "
                f"{self._serving_sessions} serving session(s) are live; shut "
                "the server down (EngineServer.shutdown) before mutating")
        if table_name not in self._tables:
            raise KeyError(f"no base table named {table_name!r} is loaded")
        return self._tables[table_name]

    def _after_mutation(self, table: DataTable, analyze: bool) -> None:
        self._rebuild_indexes(table)
        if analyze:
            self.analyze(table.name)
        for listener in list(self._mutation_listeners):
            listener(table.name)

    def _rebuild_indexes(self, table: DataTable) -> None:
        """Rebuild the table's existing sorted indexes over its live rows."""
        for column in self._indexed_columns(table.name):
            if (table.name, column) not in self._indexes:
                continue
            if table.has_deletes:
                valid = table.valid_row_ids()
                self._indexes[(table.name, column)] = SortedIndex(
                    table.name, column, table.column(column)[valid],
                    row_ids=valid)
            else:
                self._indexes[(table.name, column)] = SortedIndex(
                    table.name, column, table.column(column))

    def analyze(self, table_name: str) -> TableStats:
        """Re-ANALYZE one base table over its live rows.

        The refreshed statistics are stamped with the table's current
        :attr:`~repro.storage.table.DataTable.data_epoch`, which is what
        makes staleness (:meth:`stats_staleness`) observable per table.
        """
        if self.origin is not self:
            raise MutationError(
                "ANALYZE must go through the origin database, not a "
                "session view")
        if table_name not in self._tables:
            raise KeyError(f"no base table named {table_name!r} is loaded")
        table = self._tables[table_name]
        stats = analyze_table(table)
        stats.analyzed_epoch = table.data_epoch
        self._stats[table_name] = stats
        return stats

    def table_epoch(self, name: str) -> int:
        """Mutation counter of one base table (0 for unknown/temp names)."""
        table = self._tables.get(name)
        return 0 if table is None else table.data_epoch

    @property
    def data_epoch(self) -> int:
        """Total mutation batches applied across all loaded base tables.

        Consistent across session views and index-config clones because
        the counter lives on the shared :class:`DataTable` objects.
        """
        return sum(table.data_epoch for table in self._tables.values())

    def stats_staleness(self, table_name: str) -> int:
        """Mutation batches applied to ``table_name`` since its last ANALYZE."""
        if table_name not in self._tables:
            raise KeyError(f"no base table named {table_name!r} is loaded")
        return (self._tables[table_name].data_epoch
                - self._stats[table_name].analyzed_epoch)

    def add_mutation_listener(self, listener) -> None:
        """Register ``listener(table_name)`` to run after every mutation."""
        self.origin._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener) -> None:
        """Unregister a mutation listener (no-op when absent)."""
        try:
            self.origin._mutation_listeners.remove(listener)
        except ValueError:
            pass

    def begin_serving(self) -> None:
        """Mark one serving session live: mutations raise until it ends."""
        self.origin._serving_sessions += 1

    def end_serving(self) -> None:
        """Release one serving session taken by :meth:`begin_serving`."""
        if self.origin._serving_sessions <= 0:
            raise RuntimeError("end_serving() without a matching begin_serving()")
        self.origin._serving_sessions -= 1

    # ------------------------------------------------------------------
    # Index access
    # ------------------------------------------------------------------
    def index(self, table_name: str, column: str) -> SortedIndex | None:
        """Return the index on ``table_name.column`` if one exists."""
        return self._indexes.get((table_name, column))

    def has_index(self, table_name: str, column: str) -> bool:
        """True if ``table_name.column`` is indexed (temporary tables never are)."""
        return (table_name, column) in self._indexes

    # ------------------------------------------------------------------
    # Temporary tables (materialized intermediate results)
    # ------------------------------------------------------------------
    def register_temp(self, table: DataTable, stats: TableStats,
                      covered_aliases: frozenset[str]) -> str:
        """Register a materialized intermediate result and return its name."""
        self._temp_counter += 1
        name = f"__temp_{self._temp_counter}"
        table = DataTable(name=name, columns=table.columns)
        self._temp_tables[name] = TempTableEntry(
            table=table, stats=stats, covered_aliases=covered_aliases)
        return name

    def temp_entry(self, name: str) -> TempTableEntry:
        """Return the bookkeeping entry of a temporary table."""
        return self._temp_tables[name]

    def drop_temp_tables(self) -> None:
        """Drop every temporary table (called between queries)."""
        self._temp_tables.clear()
        self._temp_counter = 0

    @property
    def temp_table_names(self) -> list[str]:
        """Names of all registered temporary tables."""
        return list(self._temp_tables)

    def temp_memory_bytes(self) -> int:
        """Total memory used by all live temporary tables."""
        return sum(entry.table.memory_bytes for entry in self._temp_tables.values())

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def session_view(self) -> "Database":
        """A per-session view: shared base data, private temporary tables.

        Re-optimization algorithms mutate the database while they run —
        they :meth:`register_temp` materialized intermediates and
        :meth:`drop_temp_tables` *all* of them when a query finishes.  Two
        queries running concurrently against the same instance would
        therefore drop each other's temporaries mid-flight.  A session view
        shares the loaded base tables, statistics, and indexes **by
        reference** but keeps its own temporary namespace, so each serving
        worker executes against its own view while paying zero data-copy
        cost.  The sharing is safe because mutations are fenced: views
        refuse :meth:`append_rows` / :meth:`delete_rows` outright, and the
        origin refuses them while serving sessions are live
        (:class:`MutationError` in both cases).

        Views share :attr:`origin` with their parent, which is how the
        (lock-protected) subplan cache recognizes that chunks cached through
        one view are valid for every sibling view.  Do not load further base
        tables through a view or its parent once views exist.
        """
        view = Database.__new__(Database)
        view.schema = self.schema
        view.index_config = self.index_config
        view.block_size = self.block_size
        view.dict_encode = self.dict_encode
        view._tables = self._tables
        view._stats = self._stats
        view._indexes = self._indexes
        view._temp_tables = {}
        view._temp_counter = 0
        # Mutation state lives on the origin: views reject mutations
        # outright (see MutationError), so these stay inert.
        view._serving_sessions = 0
        view._mutation_listeners = []
        view.origin = self.origin
        return view

    def with_index_config(self, index_config: IndexConfig) -> "Database":
        """Return a new database over the same data with a different index setup."""
        clone = Database(self.schema, index_config=index_config,
                         block_size=self.block_size,
                         dict_encode=self.dict_encode)
        for name, table in self._tables.items():
            clone._tables[name] = table
            clone._stats[name] = self._stats[name]
            clone._build_indexes(table)
        return clone

    def __repr__(self) -> str:
        return (f"Database(tables={len(self._tables)}, temps={len(self._temp_tables)}, "
                f"indexes={len(self._indexes)}, config={self.index_config.value})")
