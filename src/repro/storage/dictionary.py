"""Dictionary encoding for string columns + code-space predicate translation.

At load time (:meth:`Database.load_table
<repro.storage.database.Database.load_table>` with ``dict_encode=True``)
every eligible object-dtype column of a base table is re-stored as

* an ``int32`` **code** array (``-1`` encodes NULL), and
* a sorted, duplicate-free **dictionary** of the column's distinct non-null
  string values.

Because the dictionary is sorted, the mapping is *order-preserving*: value
comparisons translate to integer comparisons on codes.  That buys the scan
hot path three things at once:

1. predicate evaluation happens on ``int32`` arrays instead of Python-level
   object comparisons (:func:`translate_filters` rewrites a scan's
   conjunction into code space);
2. zone maps built over the code arrays are numeric, so string predicates
   participate in vectorized block pruning exactly like integer ones;
3. predicates with no representable match (an equality literal absent from
   the dictionary, an empty prefix range) are recognized as unsatisfiable
   *before* touching any data.

Decoding happens only where real values must surface: ``DataTable.gather``
(the late-materialization points) and :meth:`DataTable.column_values
<repro.storage.table.DataTable.column_values>` for whole-column consumers
(ANALYZE, the true-cardinality oracle, the differential-test oracle).

The :func:`null_mask` helper is the single dtype-aware null test shared by
the encoder and by ANALYZE (``None`` for object columns, ``NaN`` for
floats), replacing the float-only ``np.isnan(...astype(float))`` path that
crashed on string columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.plan.expressions import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNotNull,
    OrPredicate,
    Predicate,
    StringContains,
    StringPrefix,
)

#: Sentinels returned by :func:`translate_predicate` for conjuncts the
#: dictionary proves unsatisfiable / tautological over the whole column.
ALWAYS_FALSE = object()
ALWAYS_TRUE = object()

#: Code reserved for NULL (``None``) values.
NULL_CODE = -1


# ----------------------------------------------------------------------
# Shared null handling
# ----------------------------------------------------------------------
def null_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of NULL entries, per the engine's dtype conventions.

    ``None`` (and a stray ``float('nan')``) are null in object columns,
    ``NaN`` is null in float columns, and integer/bool columns have no
    null representation at all.
    """
    values = np.asarray(values)
    if values.dtype == object:
        return np.fromiter(
            (v is None or (isinstance(v, float) and np.isnan(v))
             for v in values),
            dtype=bool, count=len(values))
    if values.dtype.kind == "f":
        return np.isnan(values)
    return np.zeros(len(values), dtype=bool)


# ----------------------------------------------------------------------
# Encoding / decoding
# ----------------------------------------------------------------------
def encode_column(values: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
    """Dictionary-encode one object column: ``(int32 codes, sorted dict)``.

    Returns ``None`` when the column is not eligible (any non-null value
    is not a plain string -- a mixed-type object column has no total order
    the sorted dictionary could preserve).
    """
    values = np.asarray(values)
    if values.dtype != object:
        return None
    nulls = null_mask(values)
    non_null = values[~nulls]
    if len(non_null) and not all(isinstance(v, str) for v in non_null):
        return None
    dictionary, inverse = np.unique(non_null, return_inverse=True)
    dictionary = dictionary.astype(object)
    codes = np.full(len(values), NULL_CODE, dtype=np.int32)
    codes[~nulls] = inverse.astype(np.int32, copy=False)
    return codes, dictionary


def decode_lookup(dictionary: np.ndarray) -> np.ndarray:
    """Decode table for a code array: ``lookup[codes]`` restores values.

    One extra ``None`` slot is appended so the NULL code (``-1``) indexes
    it via numpy's negative-index semantics.
    """
    lookup = np.empty(len(dictionary) + 1, dtype=object)
    lookup[:len(dictionary)] = dictionary
    lookup[len(dictionary)] = None
    return lookup


def encode_append(codes: np.ndarray, dictionary: np.ndarray,
                  values: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
    """Encode appended ``values`` against an existing sorted dictionary.

    Returns ``(old_codes, new_codes, dictionary, remapped)``.  When every
    appended non-null value is already in the dictionary, ``old_codes`` and
    ``dictionary`` come back unchanged (``remapped`` is False) and only the
    appended batch is encoded.  Unseen strings grow the dictionary: the new
    dictionary is the sorted union of old and new values, and ``old_codes``
    are rewritten through the old-to-new position map.  Because both
    dictionaries are sorted, that map is **monotone**, so every code-space
    property the scan path relies on (order-preserving comparisons, numeric
    zone pruning) survives the growth; zone maps over the code array must
    still be rebuilt by the caller since the stored codes changed.

    Appended non-null values that are not plain strings raise ``TypeError``
    (they would break the dictionary's total order).
    """
    values = np.asarray(values, dtype=object)
    nulls = null_mask(values)
    non_null = values[~nulls]
    if len(non_null) and not all(isinstance(v, str) for v in non_null):
        raise TypeError(
            "appended values for a dictionary-encoded column must be "
            "strings or None")
    distinct = np.unique(non_null).astype(object)
    pos = np.searchsorted(dictionary, distinct, side="left")
    present = np.array(
        [p < len(dictionary) and dictionary[p] == v
         for p, v in zip(pos, distinct)], dtype=bool)

    def _encode(target: np.ndarray) -> np.ndarray:
        out = np.full(len(values), NULL_CODE, dtype=np.int32)
        if len(non_null):
            out[~nulls] = np.searchsorted(target, non_null).astype(np.int32)
        return out

    if bool(present.all()):
        return codes, _encode(dictionary), dictionary, False
    merged = np.unique(
        np.concatenate([dictionary, distinct[~present]])).astype(object)
    mapping = np.searchsorted(merged, dictionary).astype(np.int32)
    # One extra slot so the NULL code (-1) maps to itself.
    remap = np.empty(len(mapping) + 1, dtype=np.int32)
    remap[:len(mapping)] = mapping
    remap[len(mapping)] = NULL_CODE
    return remap[codes], _encode(merged), merged, True


# ----------------------------------------------------------------------
# Code-space predicates
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class CodeMaskPredicate(Between):
    """Membership in a per-dictionary-entry boolean mask, over code arrays.

    The general translation target: the original predicate is evaluated
    once over the (small) dictionary, yielding one bit per distinct value;
    evaluating the column is then a single fancy-index into that table.
    The inherited :class:`Between` bounds are the first/last matching code,
    which is what lets zone maps prune blocks for arbitrary string
    predicates (contains, IN, prefix) through the existing numeric path.

    ``mask`` has one trailing ``False`` slot so the NULL code (``-1``)
    never matches (nulls fail every shape this class translates).
    """

    mask: np.ndarray = None  # bool, len(dictionary) + 1

    def evaluate(self, resolve) -> np.ndarray:
        codes = resolve(self.column)
        return self.mask[codes]

    @property
    def match_fraction(self) -> float:
        """Fraction of dictionary entries matching (a selectivity hint)."""
        if len(self.mask) <= 1:
            return 0.0
        return float(self.mask[:-1].mean())


def _code_mask_predicate(predicate: Predicate, ref: ColumnRef,
                         dictionary: np.ndarray):
    """Evaluate ``predicate`` over the dictionary into a code-mask predicate."""
    matches = np.asarray(predicate.evaluate(lambda _ref: dictionary),
                         dtype=bool)
    hits = np.nonzero(matches)[0]
    if len(hits) == 0:
        return ALWAYS_FALSE
    if len(hits) == len(dictionary):
        # Every distinct value matches -- but nulls never match IN / prefix
        # / contains, so this is "IS NOT NULL" in code space, not a
        # tautology (code >= 0 excludes the NULL code).
        return Comparison(ref, ">=", 0)
    mask = np.zeros(len(dictionary) + 1, dtype=bool)
    mask[hits] = True
    return CodeMaskPredicate(column=ref, low=int(hits[0]), high=int(hits[-1]),
                             mask=mask)


def _code_range(ref: ColumnRef, low: int, high: int):
    """``Between`` over codes in ``[low, high]`` (or the unsatisfiable sentinel)."""
    if low > high:
        return ALWAYS_FALSE
    return Between(ref, int(low), int(high))


def _translate_comparison(pred: Comparison, dictionary: np.ndarray):
    ref, op, value = pred.column, pred.op, pred.value
    if op in ("=", "!="):
        try:
            pos = int(np.searchsorted(dictionary, value, side="left"))
            present = pos < len(dictionary) and bool(dictionary[pos] == value)
        except TypeError:
            # Non-string literal: never equal to any dictionary value.
            present = False
        if op == "=":
            return (Comparison(ref, "=", pos) if present else ALWAYS_FALSE)
        # Nulls (code -1) satisfy "!=", matching the value-space semantics.
        return (Comparison(ref, "!=", pos) if present else ALWAYS_TRUE)
    # Ordering comparisons: map the literal to a code range.  A TypeError
    # (non-string literal against a string dictionary) propagates, exactly
    # like the value-space object-array comparison would.
    size = len(dictionary)
    if op == "<":
        return _code_range(ref, 0, int(np.searchsorted(dictionary, value, "left")) - 1)
    if op == "<=":
        return _code_range(ref, 0, int(np.searchsorted(dictionary, value, "right")) - 1)
    if op == ">":
        return _code_range(ref, int(np.searchsorted(dictionary, value, "right")), size - 1)
    # op == ">="
    return _code_range(ref, int(np.searchsorted(dictionary, value, "left")), size - 1)


def translate_predicate(predicate: Predicate, table, storage_name):
    """Rewrite one conjunct into code space where its column is encoded.

    Returns the predicate unchanged for unencoded columns / unknown shapes,
    a code-space replacement otherwise, or one of :data:`ALWAYS_FALSE` /
    :data:`ALWAYS_TRUE` when the dictionary decides the conjunct outright.
    """
    if isinstance(predicate, OrPredicate):
        children = []
        for child in predicate.children:
            translated = translate_predicate(child, table, storage_name)
            if translated is ALWAYS_TRUE:
                return ALWAYS_TRUE
            if translated is ALWAYS_FALSE:
                continue
            children.append(translated)
        if not children:
            return ALWAYS_FALSE
        if len(children) == 1:
            return children[0]
        return OrPredicate(tuple(children))

    refs = predicate.column_refs()
    if len(refs) != 1:
        return predicate
    ref = refs[0]
    name = storage_name(ref)
    if not table.is_encoded(name):
        return predicate
    dictionary = table.dictionary(name)

    if isinstance(predicate, Comparison):
        return _translate_comparison(predicate, dictionary)
    if isinstance(predicate, Between):
        # A TypeError (non-string bound) propagates like the value-space one.
        low = int(np.searchsorted(dictionary, predicate.low, "left"))
        high = int(np.searchsorted(dictionary, predicate.high, "right")) - 1
        return _code_range(ref, low, high)
    if isinstance(predicate, IsNotNull):
        # Non-null rows are exactly those with a real code.
        return Comparison(ref, ">=", 0)
    if isinstance(predicate, (InList, StringPrefix, StringContains)):
        return _code_mask_predicate(predicate, ref, dictionary)
    return predicate


def translate_filters(filters, table, storage_name
                      ) -> tuple[tuple, bool, int]:
    """Translate a scan conjunction: ``(predicates, impossible, translated)``.

    ``impossible`` is True when any conjunct is provably unsatisfiable (the
    scan can return the empty selection without reading data); tautological
    conjuncts are dropped.  ``translated`` counts predicates rewritten into
    code space (the ``dict_predicates`` execution counter).
    """
    if not getattr(table, "dictionaries", None):
        return tuple(filters), False, 0
    out = []
    translated = 0
    for predicate in filters:
        result = translate_predicate(predicate, table, storage_name)
        if result is ALWAYS_FALSE:
            return (), True, translated + 1
        if result is ALWAYS_TRUE:
            translated += 1
            continue
        if result is not predicate:
            translated += 1
        out.append(result)
    return tuple(out), False, translated
