"""Sorted indexes supporting vectorized equality probes.

This is the stand-in for the B+tree indexes the paper builds on every primary
key (and optionally every foreign key) column of the JOB / TPC-H / DSB
schemas.  An index is a sorted copy of the key column together with the
permutation that maps sorted positions back to row ids; a batch of probe keys
is answered with two ``searchsorted`` calls, which is the vectorized analogue
of repeated B+tree descents.
"""

from __future__ import annotations

import numpy as np


class SortedIndex:
    """A sorted secondary index over one column of a table.

    ``row_ids`` optionally maps positions of ``values`` back to physical
    row ids -- the dynamic-data path rebuilds indexes over only the *live*
    rows of a mutated table (``values = column[valid]``,
    ``row_ids = valid``), so probes never surface deleted rows.
    """

    def __init__(self, table_name: str, column: str, values: np.ndarray,
                 row_ids: np.ndarray | None = None):
        self.table_name = table_name
        self.column = column
        order = np.argsort(values, kind="stable")
        self._sorted_values = values[order]
        self._row_ids = (order.astype(np.int64, copy=False) if row_ids is None
                         else np.asarray(row_ids, dtype=np.int64)[order])

    @property
    def num_keys(self) -> int:
        """Number of indexed rows."""
        return len(self._sorted_values)

    def lookup(self, key) -> np.ndarray:
        """Row ids of all rows whose key equals ``key``."""
        lo = np.searchsorted(self._sorted_values, key, side="left")
        hi = np.searchsorted(self._sorted_values, key, side="right")
        return self._row_ids[lo:hi]

    def lookup_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Probe the index with a batch of keys.

        Returns ``(probe_positions, row_ids)`` where ``probe_positions[i]`` is
        the position in ``keys`` that matched and ``row_ids[i]`` is the
        matching row in the indexed table.  A probe key with *k* matches
        contributes *k* entries.
        """
        from repro.executor.joins import JoinOverflowError, MAX_JOIN_RESULT_ROWS

        lo = np.searchsorted(self._sorted_values, keys, side="left")
        hi = np.searchsorted(self._sorted_values, keys, side="right")
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        if total > MAX_JOIN_RESULT_ROWS:
            raise JoinOverflowError(
                f"index probe would produce {total} rows "
                f"(cap {MAX_JOIN_RESULT_ROWS}); aborting the query")
        probe_positions = np.repeat(np.arange(len(keys), dtype=np.int64), counts)
        # Build the flattened list of matched sorted-positions.
        offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
        sorted_positions = np.repeat(lo, counts) + within
        return probe_positions, self._row_ids[sorted_positions]

    def range_lookup(self, low=None, high=None) -> np.ndarray:
        """Row ids of all rows with ``low <= key <= high`` (bounds optional)."""
        lo = 0 if low is None else int(np.searchsorted(self._sorted_values, low, side="left"))
        hi = (len(self._sorted_values) if high is None
              else int(np.searchsorted(self._sorted_values, high, side="right")))
        return self._row_ids[lo:hi]

    def __repr__(self) -> str:
        return f"SortedIndex({self.table_name}.{self.column}, keys={self.num_keys})"
