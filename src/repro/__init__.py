"""QuerySplit reproduction: efficient query re-optimization with judicious subquery selections.

This package is a from-scratch, pure-Python reproduction of the SIGMOD 2023
paper *"Efficient Query Re-optimization with Judicious Subquery Selections"*
(Zhao, Zhang, Gao).  It contains:

* an in-memory columnar database engine (catalog, statistics, indexes,
  late-materializing vectorized executor with a cross-policy subplan cache)
  standing in for PostgreSQL -- see ARCHITECTURE.md for the
  storage -> plan -> operator-pipeline -> re-optimization layering and the
  SubplanCache keying rules;
* a PostgreSQL-style cost-based optimizer with pluggable cardinality
  estimators (default, true-cardinality oracle, noise-injected, learned,
  pessimistic);
* the **QuerySplit** algorithm (:mod:`repro.core`) -- the paper's
  contribution -- plus the four re-optimization baselines and the robust /
  learned-CE baselines it is compared against (:mod:`repro.reopt`);
* synthetic JOB / TPC-H / DSB workloads (:mod:`repro.workloads`);
* experiment drivers reproducing every table and figure of the paper's
  evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro.workloads import build_imdb_database, job_queries
    from repro.reopt import make_algorithm

    database = build_imdb_database(scale=0.5)
    query = job_queries(families=[6])[0]
    report = make_algorithm("QuerySplit", database).run(query)
    print(report.total_time, report.final_table.to_rows())
"""

from repro.report import ExecutionReport, IterationRecord, WorkloadResult

__version__ = "1.0.0"

__all__ = ["ExecutionReport", "IterationRecord", "WorkloadResult", "__version__"]
