"""Execution reports shared by QuerySplit and all baseline algorithms.

Every algorithm produces an :class:`ExecutionReport` per query: the total
measured execution time, one :class:`IterationRecord` per executed unit
(subquery / subplan), and bookkeeping about materializations and statistics
collection.  These records directly feed the paper's evaluation artifacts:

* total time            -> Figures 11-15, Tables 3 and 5;
* materialization count and memory -> Table 4;
* per-iteration result sizes and times -> the timelines of Figures 16-19 and
  the per-query categories of Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.table import DataTable


@dataclass
class IterationRecord:
    """One executed unit (subquery or subplan) of a re-optimization run."""

    index: int
    description: str
    aliases: frozenset[str]
    result_rows: int
    wall_time: float
    memory_bytes: int
    materialized: bool
    replanned: bool
    stats_collected: bool = False


@dataclass
class ExecutionReport:
    """Outcome of running one query under one algorithm."""

    query_name: str
    algorithm: str
    total_time: float
    iterations: list[IterationRecord] = field(default_factory=list)
    final_table: DataTable | None = None
    final_rows: int = 0
    timed_out: bool = False
    planner_invocations: int = 0
    stats_collections: int = 0

    # ------------------------------------------------------------------
    # Derived metrics used by the experiments
    # ------------------------------------------------------------------
    @property
    def num_iterations(self) -> int:
        """Number of executed units."""
        return len(self.iterations)

    @property
    def materializations(self) -> int:
        """Number of intermediate results materialized into temporary tables."""
        return sum(1 for it in self.iterations if it.materialized)

    @property
    def materialized_bytes(self) -> int:
        """Total bytes written to temporary tables."""
        return sum(it.memory_bytes for it in self.iterations if it.materialized)

    @property
    def avg_memory_per_materialization(self) -> float:
        """Average temporary-table size in bytes (0 if nothing materialized)."""
        count = self.materializations
        if count == 0:
            return 0.0
        return self.materialized_bytes / count

    @property
    def max_intermediate_rows(self) -> int:
        """Largest intermediate result produced across all iterations."""
        if not self.iterations:
            return 0
        return max(it.result_rows for it in self.iterations)

    def timeline(self) -> list[tuple[int, int, float]]:
        """``(iteration, result_rows, wall_time)`` tuples (Figures 16-19)."""
        return [(it.index, it.result_rows, it.wall_time) for it in self.iterations]


@dataclass
class WorkloadResult:
    """Aggregated outcome of running a whole workload under one algorithm."""

    algorithm: str
    reports: list[ExecutionReport] = field(default_factory=list)

    @property
    def total_time(self) -> float:
        """Sum of per-query execution times (timed-out queries count their cap)."""
        return sum(r.total_time for r in self.reports)

    @property
    def timeouts(self) -> int:
        """Number of queries that hit the per-query timeout."""
        return sum(1 for r in self.reports if r.timed_out)

    def report_for(self, query_name: str) -> ExecutionReport:
        """The report of a specific query."""
        for report in self.reports:
            if report.query_name == query_name:
                return report
        raise KeyError(f"no report for query {query_name!r}")
