"""Admission control: a bounded, thread-safe queue with shed/block policies.

The admission queue sits between the workload driver (producer) and the
engine worker pool (consumers).  It is deliberately small-surface:

* :meth:`AdmissionQueue.offer` applies the admission policy.  Under
  :attr:`AdmissionPolicy.SHED` a full queue rejects the request
  immediately (the driver records a shed outcome — load shedding keeps
  tail latency of *admitted* queries bounded).  Under
  :attr:`AdmissionPolicy.BLOCK` the producer waits for a slot
  (back-pressure: arrival times behind a slow engine slip, modelling a
  blocking client library).
* :meth:`AdmissionQueue.take` blocks consumers until an item or shutdown.

Counters (``admitted`` / ``shed`` / ``max_depth``) are maintained under
the same lock as the queue itself, so reporter reads are consistent.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import Any


class AdmissionPolicy(str, enum.Enum):
    """What to do with an arrival when the admission queue is full."""

    #: Reject immediately; the request counts as shed, never executes.
    SHED = "shed"
    #: Apply back-pressure: the submitter blocks until a slot frees.
    BLOCK = "block"


class AdmissionQueue:
    """Bounded FIFO between the workload driver and the worker pool."""

    def __init__(self, capacity: int,
                 policy: AdmissionPolicy = AdmissionPolicy.SHED):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.policy = AdmissionPolicy(policy)
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self.admitted = 0
        self.shed = 0
        self.max_depth = 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def offer(self, item: Any) -> bool:
        """Submit one request; False means it was shed (SHED policy only)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot offer to a closed AdmissionQueue")
            if len(self._items) >= self.capacity:
                if self.policy is AdmissionPolicy.SHED:
                    self.shed += 1
                    return False
                while len(self._items) >= self.capacity and not self._closed:
                    self._not_full.wait()
                if self._closed:
                    raise RuntimeError("AdmissionQueue closed while blocking")
            self._items.append(item)
            self.admitted += 1
            self.max_depth = max(self.max_depth, len(self._items))
            self._not_empty.notify()
            return True

    def close(self) -> None:
        """No more offers; wakes every waiting consumer once drained."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def take(self) -> Any | None:
        """Next admitted request, or ``None`` once closed and drained."""
        with self._lock:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if not self._items:
                return None  # closed and drained
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __repr__(self) -> str:
        with self._lock:
            return (f"AdmissionQueue(depth={len(self._items)}/{self.capacity}, "
                    f"policy={self.policy.value}, admitted={self.admitted}, "
                    f"shed={self.shed})")
