"""Workload drivers: the wall-clock runner and the virtual-clock simulator.

Two drivers share the schedule/admission vocabulary:

* :func:`run_served` actually executes queries — it starts an
  :class:`~repro.serving.server.EngineServer`, paces the merged arrival
  stream against the wall clock (``time_scale`` compresses or stretches
  the schedule's virtual seconds), and returns outcomes + reporter
  aggregates.  This is what ``bench_serving`` and ``python -m repro.cli
  serve`` run.
* :func:`simulate_served` executes nothing — it replays the same arrival
  stream through a deterministic discrete-event model of the admission
  queue, worker pool, and per-query timeout under a **virtual clock** (no
  threads, no sleeps, no wall time).  Given a pure ``service_time``
  function it is a pure function of its inputs, which is what the
  schedule/timeout property tests rely on.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.plan.logical import Query
from repro.report import WorkloadResult
from repro.serving.admission import AdmissionPolicy
from repro.serving.reporter import latency_summary
from repro.serving.schedule import Arrival
from repro.serving.server import (
    EngineServer,
    QueryOutcome,
    QueryTicket,
    ServingConfig,
)
from repro.storage.database import Database


@dataclass
class ServingResult:
    """Everything one served run produced."""

    outcomes: list[QueryOutcome]
    summary: dict[str, Any]
    wall_seconds: float

    def workload_result(self, algorithm: str) -> WorkloadResult:
        """The executed queries as a harness-shaped :class:`WorkloadResult`.

        Shed arrivals never executed, so they carry no report and are not
        included; the serving ``summary`` accounts for them separately.
        """
        result = WorkloadResult(algorithm=algorithm)
        result.reports = [o.report for o in self.outcomes
                          if o.report is not None]
        return result


def run_served(database: Database, queries: Sequence[Query],
               arrivals: Sequence[Arrival],
               config: ServingConfig | None = None,
               time_scale: float = 1.0) -> ServingResult:
    """Serve ``queries[arrival.index]`` for every arrival, under load.

    The driver thread submits each arrival at ``arrival.time * time_scale``
    wall seconds after the run starts (never early; an overloaded engine
    makes it late, which the open-loop latency accounting charges to the
    engine).  Arrival/latency fields in the outcomes are reported in
    *schedule* seconds — wall timestamps are divided by ``time_scale`` —
    so summaries from runs at different compressions stay comparable.
    """
    config = config or ServingConfig()
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    for arrival in arrivals:
        if not 0 <= arrival.index < len(queries):
            raise IndexError(
                f"arrival index {arrival.index} outside the "
                f"{len(queries)}-query stream")
    server = EngineServer(database, config)
    server.start()
    server.mark_epoch()
    for arrival in sorted(arrivals, key=lambda a: (a.time, a.user_id)):
        delay = arrival.time * time_scale - server.now()
        if delay > 0:
            time.sleep(delay)
        server.submit(QueryTicket(
            index=arrival.index, query=queries[arrival.index],
            user_id=arrival.user_id, arrival_time=arrival.time))
    outcomes = server.shutdown()
    wall = server.now()
    # Rescale wall-clock timestamps back onto the schedule's time axis so
    # latency percentiles are independent of the compression factor.
    for outcome in outcomes:
        for attr in ("start_time", "finish_time"):
            value = getattr(outcome, attr)
            if value is not None:
                setattr(outcome, attr, value / time_scale)
    return ServingResult(outcomes=outcomes, summary=latency_summary(outcomes),
                         wall_seconds=wall)


# ----------------------------------------------------------------------
# Deterministic virtual-clock simulation (no threads, no sleeps)
# ----------------------------------------------------------------------

@dataclass
class SimOutcome:
    """What the simulator decided for one arrival."""

    index: int
    user_id: int
    arrival_time: float
    shed: bool = False
    admit_time: float | None = None
    start_time: float | None = None
    finish_time: float | None = None
    timed_out: bool = False
    error: str | None = field(default=None, repr=False)

    @property
    def query_name(self) -> str:
        return f"sim-{self.index}"


def simulate_served(arrivals: Sequence[Arrival], *,
                    workers: int,
                    queue_capacity: int,
                    policy: AdmissionPolicy = AdmissionPolicy.SHED,
                    service_time: Callable[[Arrival], float],
                    timeout_seconds: float | None = None,
                    ) -> tuple[list[SimOutcome], list[int]]:
    """Discrete-event replay of admission + pool + timeout semantics.

    Returns ``(outcomes, admission_order)`` where ``admission_order`` lists
    arrival indices in the order admission control accepted them.  The
    model mirrors the real server: a bounded FIFO of ``queue_capacity``
    waiting requests, ``workers`` identical servers that each take the
    queue head when free, SHED rejecting on a full queue, BLOCK delaying
    the submitter (and therefore every later arrival) until a slot frees,
    and a per-query timeout that caps service time at ``timeout_seconds``
    (the cooperative engine deadline, measured from dequeue).  With a
    deterministic ``service_time`` the entire trajectory — admission
    order, sheds, start/finish times, which queries time out — is a pure
    function of the inputs.
    """
    if workers < 1:
        raise ValueError(f"need >= 1 worker, got {workers}")
    if queue_capacity < 1:
        raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
    policy = AdmissionPolicy(policy)

    free: list[float] = [0.0] * workers  # min-heap of worker-free times
    heapq.heapify(free)
    pending: deque[SimOutcome] = deque()
    outcomes: list[SimOutcome] = []
    admission_order: list[int] = []
    by_index = {arrival.index: arrival for arrival in arrivals}

    def start_one() -> float:
        """Start the queue head on the earliest-free worker.

        Returns the start time, i.e. the moment the queue slot frees.
        """
        worker_free = heapq.heappop(free)
        item = pending.popleft()
        item.start_time = max(worker_free, item.admit_time)
        service = service_time(by_index[item.index])
        if timeout_seconds is not None and service > timeout_seconds:
            item.timed_out = True
            service = timeout_seconds
        item.finish_time = item.start_time + service
        heapq.heappush(free, item.finish_time)
        return item.start_time

    def drain(upto: float) -> None:
        """Run every queue-head start whose worker frees by ``upto``."""
        while pending and free[0] <= upto:
            start_one()

    submit_ready = 0.0  # BLOCK back-pressure: when the submitter is free
    for arrival in sorted(arrivals, key=lambda a: (a.time, a.user_id)):
        now = max(arrival.time, submit_ready)
        drain(now)
        if len(pending) >= queue_capacity:
            if policy is AdmissionPolicy.SHED:
                outcomes.append(SimOutcome(index=arrival.index,
                                           user_id=arrival.user_id,
                                           arrival_time=arrival.time,
                                           shed=True))
                continue
            while len(pending) >= queue_capacity:
                now = max(now, start_one())
            submit_ready = now
        item = SimOutcome(index=arrival.index, user_id=arrival.user_id,
                          arrival_time=arrival.time, admit_time=now)
        pending.append(item)
        outcomes.append(item)
        admission_order.append(arrival.index)
        drain(now)
    drain(float("inf"))
    outcomes.sort(key=lambda o: o.index)
    return outcomes, admission_order
