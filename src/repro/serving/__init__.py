"""Concurrent query-serving layer: schedules, admission control, server.

This package turns the single-threaded bench harness into a *served*
engine: many simulated users submit queries concurrently according to
seeded arrival schedules, a bounded admission queue sheds or blocks
excess load, a pool of worker threads executes queries (each against its
own :meth:`~repro.storage.database.Database.session_view`, sharing one
lock-protected :class:`~repro.executor.subplan_cache.SubplanCache`), and
a reporter aggregates p50/p95/p99 latency and throughput.

Layers (see ARCHITECTURE.md, "Serving"):

* :mod:`repro.serving.schedule`  -- seeded per-user arrival schedules and
  the pure ``build_arrivals`` event-stream function;
* :mod:`repro.serving.admission` -- the bounded, thread-safe admission
  queue with shed-or-block policies;
* :mod:`repro.serving.server`    -- the worker-pool engine server;
* :mod:`repro.serving.driver`    -- the wall-clock workload driver
  (``run_served``) and the deterministic virtual-clock discrete-event
  simulator (``simulate_served``) used by the property tests;
* :mod:`repro.serving.reporter`  -- latency/throughput aggregation.
"""

from repro.serving.admission import AdmissionPolicy, AdmissionQueue
from repro.serving.driver import ServingResult, run_served, simulate_served
from repro.serving.reporter import latency_summary, percentile
from repro.serving.schedule import (
    Arrival,
    Once,
    Repeat,
    UserSpec,
    build_arrivals,
    uniform_users,
)
from repro.serving.server import EngineServer, QueryOutcome, ServingConfig

__all__ = [
    "AdmissionPolicy", "AdmissionQueue", "Arrival", "EngineServer", "Once",
    "QueryOutcome", "Repeat", "ServingConfig", "ServingResult", "UserSpec",
    "build_arrivals", "latency_summary", "percentile", "run_served",
    "simulate_served", "uniform_users",
]
