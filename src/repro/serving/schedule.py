"""Seeded per-user arrival schedules (the workload side of serving).

A served workload is a set of simulated users, each owning a
:class:`Schedule` that says *when* that user submits queries on a shared
virtual-time axis (seconds since the run started).  Two schedule shapes
cover the usual driver patterns:

* :class:`Once`   -- submit a single query at a fixed offset (a batch of
  ``Once(0)`` users models a closed burst);
* :class:`Repeat` -- submit a stream of queries at a target rate, either
  with exponential (Poisson-process) gaps or fixed gaps.

:func:`build_arrivals` merges every user's schedule into one globally
ordered event stream and assigns each event its query: arrival ``i`` in
global order executes stream position ``i`` of a seeded
:class:`~repro.workloads.sqlgen.RandomQueryGenerator` stream.  The whole
event stream is a **pure function of ``(users, seed)``**: per-user gaps
are drawn from ``numpy``'s counter-based ``default_rng([seed, user_id])``,
and ties are broken deterministically, so the same inputs always yield
the identical admission-relevant ordering — the property
``tests/test_serving.py`` locks in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Hard per-user event cap so a misconfigured unbounded schedule cannot
#: spin forever while materializing the stream.
MAX_EVENTS_PER_USER = 1_000_000


@dataclass(frozen=True)
class Once:
    """Submit exactly one query, ``at`` seconds into the run."""

    at: float = 0.0

    def arrival_times(self, rng: np.random.Generator,
                      max_events: int) -> list[float]:
        if max_events <= 0:
            return []
        return [float(self.at)]


@dataclass(frozen=True)
class Repeat:
    """Submit ``count`` queries at ``rate`` per (virtual) second.

    ``jitter="poisson"`` draws exponential inter-arrival gaps with mean
    ``1/rate`` (an open-loop Poisson stream, the standard load-driver
    model); ``jitter="none"`` uses fixed ``1/rate`` gaps (a metronome).
    """

    rate: float
    count: int
    start: float = 0.0
    jitter: str = "poisson"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"Repeat.rate must be positive, got {self.rate}")
        if self.count < 0:
            raise ValueError(f"Repeat.count must be >= 0, got {self.count}")
        if self.jitter not in ("poisson", "none"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")

    def arrival_times(self, rng: np.random.Generator,
                      max_events: int) -> list[float]:
        n = min(self.count, max_events)
        if n <= 0:
            return []
        if self.jitter == "poisson":
            gaps = rng.exponential(1.0 / self.rate, n)
        else:
            gaps = np.full(n, 1.0 / self.rate)
        return list(self.start + np.cumsum(gaps))


@dataclass(frozen=True)
class UserSpec:
    """One simulated user: an id (also the per-user RNG key) + a schedule."""

    user_id: int
    schedule: Once | Repeat


@dataclass(frozen=True)
class Arrival:
    """One event of the merged stream.

    ``index`` is the event's position in global arrival order — and, by
    convention, the query-stream position it executes (the served run on a
    seeded generator runs ``generator.query_at(arrival.index)``), which is
    what makes served and sequential runs directly comparable per query.
    ``user_seq`` is the event's position within its own user's schedule.
    """

    time: float
    user_id: int
    user_seq: int
    index: int


def build_arrivals(users: list[UserSpec] | tuple[UserSpec, ...], seed: int,
                   max_events: int | None = None) -> tuple[Arrival, ...]:
    """Merge every user's schedule into one deterministic event stream.

    Events are sorted by ``(time, user_id, user_seq)`` — the tie-break on
    the user id keeps simultaneous arrivals (e.g. many ``Once(0)`` users)
    in a reproducible order — then truncated to ``max_events`` and given
    their global ``index``.  Pure function of ``(users, seed,
    max_events)``; no clock, no global RNG state.
    """
    if len({user.user_id for user in users}) != len(users):
        raise ValueError("user_ids must be unique (they key the per-user RNG)")
    per_user_cap = MAX_EVENTS_PER_USER if max_events is None else max_events
    events: list[tuple[float, int, int]] = []
    for user in users:
        rng = np.random.default_rng([int(seed), int(user.user_id)])
        for seq, t in enumerate(user.schedule.arrival_times(rng, per_user_cap)):
            events.append((float(t), user.user_id, seq))
    events.sort()
    if max_events is not None:
        events = events[:max_events]
    return tuple(Arrival(time=t, user_id=uid, user_seq=seq, index=i)
                 for i, (t, uid, seq) in enumerate(events))


def uniform_users(num_users: int, rate_per_user: float,
                  queries_per_user: int) -> tuple[UserSpec, ...]:
    """A homogeneous open-loop population (the bench_serving sweep shape)."""
    return tuple(
        UserSpec(user_id=uid,
                 schedule=Repeat(rate=rate_per_user, count=queries_per_user))
        for uid in range(num_users))
