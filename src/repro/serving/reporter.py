"""Latency/throughput aggregation for served runs.

Works over any sequence of outcome-like objects exposing
``arrival_time`` / ``start_time`` / ``finish_time`` / ``shed`` /
``timed_out`` — both the real server's
:class:`~repro.serving.server.QueryOutcome` and the virtual-clock
simulator's :class:`~repro.serving.driver.SimOutcome` qualify, so the
same reporter summarizes wall-clock benches and deterministic tests.

Latency is **arrival-to-completion** (queue wait included), measured
against the *scheduled* arrival time: an open-loop driver that falls
behind still charges the delay to the engine, avoiding coordinated
omission.  Throughput counts completed queries over the span from first
arrival to last completion.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

#: The percentiles every serving artifact reports.
PERCENTILES = (50, 95, 99)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy semantics); 0.0 when empty."""
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


def latency_summary(outcomes: Sequence[Any]) -> dict[str, Any]:
    """Aggregate one served run into the JSON-safe reporter shape."""
    completed = [o for o in outcomes
                 if not o.shed and o.finish_time is not None
                 and getattr(o, "error", None) is None]
    latencies = [o.finish_time - o.arrival_time for o in completed]
    waits = [o.start_time - o.arrival_time for o in completed
             if o.start_time is not None]
    shed = sum(1 for o in outcomes if o.shed)
    errors = sum(1 for o in outcomes if getattr(o, "error", None))
    timeouts = sum(1 for o in completed if o.timed_out)

    if completed:
        first_arrival = min(o.arrival_time for o in completed)
        last_finish = max(o.finish_time for o in completed)
        span = max(last_finish - first_arrival, 1e-9)
        throughput = len(completed) / span
    else:
        span = 0.0
        throughput = 0.0

    summary: dict[str, Any] = {
        "offered": len(outcomes),
        "completed": len(completed),
        "shed": shed,
        "errors": errors,
        "timeouts": timeouts,
        "span_seconds": span,
        "throughput_qps": throughput,
        "mean_latency": float(np.mean(latencies)) if latencies else 0.0,
        "max_latency": float(np.max(latencies)) if latencies else 0.0,
        "mean_queue_wait": float(np.mean(waits)) if waits else 0.0,
    }
    for q in PERCENTILES:
        summary[f"p{q}_latency"] = percentile(latencies, q)
    summary["p95_queue_wait"] = percentile(waits, 95)
    return summary
