"""The engine server: a worker-thread pool executing admitted queries.

Each worker owns a *session view* of the shared database
(:meth:`~repro.storage.database.Database.session_view`) and its own
algorithm runner built by :func:`~repro.reopt.registry.make_algorithm` —
base tables, statistics, and indexes are shared read-only across the
pool, while materialized temporaries (the one thing re-optimization
policies mutate) stay private per worker.  The only *shared mutable*
engine state is the optional
:class:`~repro.executor.subplan_cache.SubplanCache`, which is internally
lock-protected and bound by origin so every session view hits the same
entries.

Per-query timeouts reuse the engine's cooperative deadline
(:class:`~repro.reopt.base.AlgorithmBase` checks it between execution
steps and unwinds with a clean ``QueryTimeout``): the budget starts when
a worker *dequeues* the request, queue wait excluded, and a timed-out
query releases its worker and its session temporaries like any other
completion.  Nothing is killed mid-operator, so a cancelled query can
never leave shared state torn.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.executor.morsels import DEFAULT_MORSEL_ROWS, MorselScheduler
from repro.executor.subplan_cache import SubplanCache
from repro.plan.logical import Query
from repro.report import ExecutionReport
from repro.reopt.registry import make_algorithm
from repro.serving.admission import AdmissionPolicy, AdmissionQueue
from repro.storage.database import Database


@dataclass
class ServingConfig:
    """Knobs of one served run (the bench_serving sweep axes live here)."""

    algorithm: str = "QuerySplit"
    workers: int = 4
    queue_capacity: int = 16
    admission: AdmissionPolicy = AdmissionPolicy.SHED
    #: Per-query execution budget, measured from dequeue (queue wait is
    #: reported separately).  ``None`` disables timeouts.
    timeout_seconds: float | None = 30.0
    collect_statistics: bool = True
    subplan_cache: SubplanCache | None = None
    fused_kernels: bool = True
    semijoin_pruning: bool = True
    #: Retain each query's final table on its outcome (differential tests
    #: compare served results against the sequential harness); off by
    #: default so large served runs do not pin every result.
    keep_results: bool = False
    #: Requested intra-query (morsel) parallelism per running query.  The
    #: server builds ONE shared :class:`~repro.executor.morsels.MorselScheduler`
    #: for the whole pool, capped so serving workers x morsel workers
    #: never exceeds :attr:`max_total_threads` -- inter- and intra-query
    #: parallelism draw from the same budget instead of multiplying.
    morsel_workers: int = 1
    #: Rows per morsel for the shared scheduler.  Tests shrink it so the
    #: small fixture tables still fan out into many morsels.
    morsel_rows: int = DEFAULT_MORSEL_ROWS
    #: Thread budget the cap divides between the serving workers.
    #: ``None`` uses ``max(os.cpu_count(), workers)``; tests override it
    #: to force a real morsel pool on small machines.
    max_total_threads: int | None = None


@dataclass
class QueryTicket:
    """One admitted unit of work: a query plus its scheduled arrival."""

    index: int
    query: Query
    user_id: int
    arrival_time: float
    submit_time: float = 0.0


@dataclass
class QueryOutcome:
    """What happened to one arrival (admitted *or* shed)."""

    index: int
    user_id: int
    query_name: str
    arrival_time: float
    shed: bool = False
    start_time: float | None = None
    finish_time: float | None = None
    worker: int | None = None
    timed_out: bool = False
    report: ExecutionReport | None = None
    error: str | None = None

    @property
    def latency(self) -> float | None:
        """Arrival-to-completion seconds (None for shed requests)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def queue_wait(self) -> float | None:
        """Seconds between arrival and a worker picking the query up."""
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time


class EngineServer:
    """Admission queue + worker threads over one shared database."""

    def __init__(self, database: Database, config: ServingConfig | None = None):
        self.config = config or ServingConfig()
        if self.config.workers < 1:
            raise ValueError(f"need >= 1 worker, got {self.config.workers}")
        if self.config.morsel_workers < 1:
            raise ValueError(
                f"need >= 1 morsel worker, got {self.config.morsel_workers}")
        self.database = database
        # One shared morsel pool for the whole serving pool: every
        # worker's executor fans intra-query work into the same
        # scheduler, so total threads stay at workers + morsel_workers
        # and serving x morsel parallelism cannot oversubscribe the box.
        budget = self.config.max_total_threads
        if budget is None:
            budget = max(os.cpu_count() or 1, self.config.workers)
        self.morsel_workers = max(
            1, min(self.config.morsel_workers, budget // self.config.workers))
        self.morsels = (MorselScheduler(self.morsel_workers,
                                        morsel_rows=self.config.morsel_rows)
                        if self.morsel_workers > 1 else None)
        self.queue = AdmissionQueue(self.config.queue_capacity,
                                    self.config.admission)
        self.outcomes: list[QueryOutcome] = []
        self._outcome_lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self._serving_marked = False
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the epoch mark (the run's shared time axis)."""
        return time.perf_counter() - self._epoch

    def mark_epoch(self) -> None:
        """Reset the time axis to *now* (the driver calls this at t=0)."""
        self._epoch = time.perf_counter()

    def start(self) -> None:
        """Spawn the worker pool.

        Marks the database as serving first: base-table mutations raise
        :class:`~repro.storage.database.MutationError` until
        :meth:`shutdown`, since in-flight workers hold row-id selections
        into the shared column arrays.
        """
        if self._threads:
            raise RuntimeError("EngineServer already started")
        self.database.begin_serving()
        self._serving_marked = True
        for worker_id in range(self.config.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      args=(worker_id,),
                                      name=f"serving-worker-{worker_id}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)

    def submit(self, ticket: QueryTicket) -> bool:
        """Offer one request to admission control; False means shed."""
        ticket.submit_time = self.now()
        if self.queue.offer(ticket):
            return True
        self._record(QueryOutcome(
            index=ticket.index, user_id=ticket.user_id,
            query_name=ticket.query.name, arrival_time=ticket.arrival_time,
            shed=True))
        return False

    def shutdown(self) -> list[QueryOutcome]:
        """Close admission, drain the queue, join workers, return outcomes.

        Releases the serving fence taken by :meth:`start` once every
        worker has exited (idempotent: a second shutdown is a no-op for
        the fence).
        """
        self.queue.close()
        for thread in self._threads:
            thread.join()
        if self.morsels is not None:
            self.morsels.shutdown()
        if getattr(self, "_serving_marked", False):
            self._serving_marked = False
            self.database.end_serving()
        with self._outcome_lock:
            return sorted(self.outcomes, key=lambda o: o.index)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _record(self, outcome: QueryOutcome) -> None:
        with self._outcome_lock:
            self.outcomes.append(outcome)

    def _worker_loop(self, worker_id: int) -> None:
        config = self.config
        session = self.database.session_view()
        runner = make_algorithm(
            config.algorithm, session,
            collect_statistics=config.collect_statistics,
            timeout_seconds=config.timeout_seconds,
            subplan_cache=config.subplan_cache,
            fused_kernels=config.fused_kernels,
            semijoin_pruning=config.semijoin_pruning,
            morsel_scheduler=self.morsels)
        while True:
            ticket = self.queue.take()
            if ticket is None:
                return
            outcome = QueryOutcome(
                index=ticket.index, user_id=ticket.user_id,
                query_name=ticket.query.name,
                arrival_time=ticket.arrival_time, worker=worker_id)
            outcome.start_time = self.now()
            try:
                report = runner.run(ticket.query)
                outcome.report = report
                outcome.timed_out = report.timed_out
                if not config.keep_results:
                    report.final_table = None
            except Exception as exc:  # noqa: BLE001 — a query must not kill the pool
                outcome.error = f"{type(exc).__name__}: {exc}"
            outcome.finish_time = self.now()
            self._record(outcome)
