"""Experiment runner CLI: ``python -m repro.cli {list,run,report}``.

The runner is the orchestration layer on top of the experiment registry
(:mod:`repro.experiments.registry`) and the artifact store
(:mod:`repro.bench.artifacts`):

* ``list``   — enumerate registered experiments and their paper artifacts;
* ``run``    — execute experiments, fanning independent work across a
  ``multiprocessing`` process pool: whole experiments run concurrently,
  and experiments that declare a shard parameter (``families``) are
  additionally split into per-family shards whose per-query records are
  merged back into a single artifact.  Each worker process keeps a cache
  of constructed databases (:mod:`repro.workloads.dbcache`), so shards of
  the same (workload, scale) pay the build cost once per worker.  Every
  completed experiment is persisted as a schema-versioned JSON artifact
  under ``--results-dir`` and **skipped on re-run** (unless ``--force`` or
  the pinned knobs changed), which makes large sweeps resumable;
* ``report`` — merge the persisted artifacts into ``BENCH_summary.json``;
* ``serve``  — one served run through the concurrent engine server
  (:mod:`repro.serving`): simulated users on seeded arrival schedules,
  bounded-queue admission control, a worker-thread pool, and a printed
  p50/p95/p99 latency + throughput report.  The registered
  ``bench_serving`` experiment sweeps the same axes and persists
  artifacts like every other experiment.

See EXPERIMENTS.md for per-experiment invocations and the artifact schema.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from inspect import signature
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.bench import artifacts
from repro.bench.reporting import format_seconds, format_table
from repro.experiments import registry
from repro.workloads import dbcache

#: Default directory for persisted per-experiment artifacts.
DEFAULT_RESULTS_DIR = "results"

#: Default path of the merged summary (the bench trajectory file).
DEFAULT_SUMMARY = "BENCH_summary.json"


@dataclass(frozen=True)
class Task:
    """One unit of pool work: an experiment run, possibly a single shard."""

    experiment: str
    kwargs: dict[str, Any]
    shard_index: int = 0


@dataclass
class RunStatus:
    """Outcome of one experiment within a ``run`` invocation."""

    name: str
    status: str  # "written" | "skipped" | "failed"
    path: Path | None = None
    message: str = ""
    elapsed: float = 0.0
    queries: int = 0
    shards: int = 0
    errors: list[str] = field(default_factory=list)


def _worker_init() -> None:
    dbcache.enable()


def _run_task(task: Task) -> dict[str, Any]:
    """Execute one task and return the picklable per-shard payload."""
    spec = registry.get(task.experiment)
    start = time.perf_counter()
    result = spec.runner(verbose=False, **task.kwargs)
    return artifacts.partial_artifact(result, time.perf_counter() - start)


def _accepted_kwargs(spec: registry.ExperimentSpec,
                     requested: Mapping[str, Any]) -> dict[str, Any]:
    """Filter ``requested`` down to parameters the experiment's run() takes.

    Shared flags (``--scale``, ``--families``, ``--timeout``, ``--seed``) and
    ``--set`` knobs degrade gracefully: an experiment that lacks the
    parameter simply does not receive it, so one invocation can span
    experiments with different signatures.
    """
    params = signature(spec.runner).parameters
    return {key: value for key, value in requested.items() if key in params}


def plan_tasks(spec: registry.ExperimentSpec, kwargs: Mapping[str, Any],
               jobs: int) -> list[Task]:
    """Split one experiment into pool tasks (per-family shards when possible)."""
    kwargs = dict(kwargs)
    if jobs > 1 and spec.shard_param is not None and spec.shard_param in \
            signature(spec.runner).parameters:
        values = spec.shard_values(kwargs.get(spec.shard_param))
        if values and len(values) > 1:
            return [Task(spec.name, {**kwargs, spec.shard_param: [value]}, index)
                    for index, value in enumerate(values)]
    return [Task(spec.name, kwargs)]


def run_experiments(names: Sequence[str], *,
                    jobs: int = 1,
                    results_dir: str | Path = DEFAULT_RESULTS_DIR,
                    summary_path: str | Path | None = DEFAULT_SUMMARY,
                    force: bool = False,
                    overrides: Mapping[str, Any] | None = None,
                    verbose: bool = False) -> list[RunStatus]:
    """Run ``names`` and persist one JSON artifact per experiment.

    ``overrides`` maps knob names (``scale``, ``families``,
    ``timeout_seconds``, ...) to values; each experiment receives only the
    knobs its ``run()`` accepts, layered over the registry's per-experiment
    CLI defaults.  Completed artifacts whose pinned knobs match are skipped
    unless ``force``.
    """
    registry.load_all()
    results_dir = Path(results_dir)
    overrides = dict(overrides or {})
    rev = artifacts.git_rev()

    statuses: dict[str, RunStatus] = {}
    pending: list[tuple[registry.ExperimentSpec, dict[str, Any], list[Task]]] = []
    for name in names:
        spec = registry.get(name)
        requested = _accepted_kwargs(spec, {**spec.defaults, **overrides})
        path = results_dir / f"{name}.json"
        # Resume-skip compares every knob this invocation would pass —
        # registry defaults included — so an artifact produced with
        # different pinned knobs is never mistaken for up to date.
        if not force and _completed(path, name, requested):
            statuses[name] = RunStatus(name=name, status="skipped", path=path,
                                       message="artifact up to date")
            continue
        pending.append((spec, requested, plan_tasks(spec, requested, jobs)))

    _execute(pending, statuses, jobs=jobs, results_dir=results_dir, rev=rev,
             verbose=verbose)
    for spec, _, tasks in pending:
        if spec.name not in statuses:
            statuses[spec.name] = RunStatus(
                name=spec.name, status="failed", shards=len(tasks),
                message="run aborted before all shards completed")

    if summary_path is not None:
        write_summary(results_dir, summary_path, rev=rev)
    return [statuses[name] for name in names if name in statuses]


def _completed(path: Path, name: str, explicit: Mapping[str, Any]) -> bool:
    """True when a valid artifact for ``name`` with matching knobs exists."""
    if not path.is_file():
        return False
    try:
        artifact = artifacts.load_artifact(path)
    except (OSError, json.JSONDecodeError):
        return False
    if artifacts.validate_artifact(artifact):
        return False
    if artifact.get("experiment") != name:
        return False
    return artifacts.matches_params(artifact, explicit)


def _execute(pending, statuses: dict[str, RunStatus], *, jobs: int,
             results_dir: Path, rev: str, verbose: bool) -> None:
    """Run the planned tasks (pool when jobs > 1) and write merged artifacts.

    Each experiment's artifact is persisted as soon as its last shard
    finishes — never at the end of the whole invocation — so interrupting
    a sweep only loses the experiments still in flight.
    """
    if not pending:
        return
    started = {spec.name: artifacts.utc_now() for spec, _, _ in pending}
    clocks = {spec.name: time.perf_counter() for spec, _, _ in pending}
    partials: dict[str, list[dict[str, Any] | None]] = {
        spec.name: [None] * len(tasks) for spec, _, tasks in pending}
    errors: dict[str, list[str]] = {spec.name: [] for spec, _, _ in pending}
    outstanding = {spec.name: len(tasks) for spec, _, tasks in pending}
    specs = {spec.name: spec for spec, _, _ in pending}

    def finalize(name: str) -> None:
        spec = specs[name]
        elapsed = time.perf_counter() - clocks[name]
        shard_payloads = [p for p in partials[name] if p is not None]
        total = len(partials[name])
        if errors[name] or len(shard_payloads) != total:
            statuses[name] = RunStatus(
                name=name, status="failed", elapsed=elapsed, shards=total,
                errors=errors[name],
                message="; ".join(errors[name]) or "missing shard results")
            return
        try:
            merged = artifacts.merge_partials(
                shard_payloads, shard_param=spec.shard_param,
                started_at=started[name], finished_at=artifacts.utc_now(),
                wall_clock_seconds=elapsed, rev=rev)
            path = results_dir / f"{name}.json"
            artifacts.write_artifact(path, merged)
        except Exception as exc:  # noqa: BLE001 — persisting failed, not the run
            statuses[name] = RunStatus(
                name=name, status="failed", elapsed=elapsed, shards=total,
                errors=[str(exc)], message=f"could not persist artifact: {exc}")
            return
        if verbose:
            print("\n\n".join(merged["tables"]))
        statuses[name] = RunStatus(
            name=name, status="written", path=path, elapsed=elapsed,
            queries=len(merged["queries"]), shards=total)

    def record(task: Task, payload: dict[str, Any] | None, error: str | None) -> None:
        if error is not None:
            errors[task.experiment].append(f"shard {task.shard_index}: {error}")
        else:
            partials[task.experiment][task.shard_index] = payload
        outstanding[task.experiment] -= 1
        if outstanding[task.experiment] == 0:
            finalize(task.experiment)

    if jobs <= 1:
        dbcache.enable()
        try:
            for spec, _, tasks in pending:
                for task in tasks:
                    try:
                        payload, error = _run_task(task), None
                    except Exception as exc:  # noqa: BLE001 — fail per experiment
                        payload, error = None, str(exc)
                    record(task, payload, error)
        finally:
            dbcache.disable()
    else:
        all_tasks = [task for _, _, tasks in pending for task in tasks]
        with ProcessPoolExecutor(max_workers=jobs,
                                 initializer=_worker_init) as pool:
            futures = {pool.submit(_run_task, task): task for task in all_tasks}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures[future]
                    try:
                        payload, error = future.result(), None
                    except Exception as exc:  # noqa: BLE001
                        payload, error = None, str(exc)
                    record(task, payload, error)


def write_summary(results_dir: str | Path,
                  summary_path: str | Path = DEFAULT_SUMMARY,
                  rev: str | None = None) -> dict[str, Any]:
    """Merge every valid artifact under ``results_dir`` into the summary file."""
    results_dir = Path(results_dir)
    collected: dict[str, dict[str, Any]] = {}
    if results_dir.is_dir():
        for path in sorted(results_dir.glob("*.json")):
            if path.name == Path(summary_path).name:
                continue
            try:
                artifact = artifacts.load_artifact(path)
            except (OSError, json.JSONDecodeError):
                continue
            if artifacts.validate_artifact(artifact):
                continue
            collected[artifact["experiment"]] = artifact
    summary = artifacts.build_bench_summary(collected, rev=rev)
    artifacts.write_artifact(Path(summary_path), summary)
    return summary


# ----------------------------------------------------------------------
# Argument parsing and subcommands
# ----------------------------------------------------------------------

def _parse_families(text: str) -> list[int]:
    try:
        return [int(part) for part in text.replace(" ", "").split(",") if part]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--families expects comma-separated integers, got {text!r}") from exc


def _parse_set(pairs: Sequence[str]) -> dict[str, Any]:
    """Parse repeated ``--set key=value`` overrides (values are JSON when valid)."""
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise argparse.ArgumentTypeError(
                f"--set expects key=value, got {pair!r}")
        try:
            overrides[key] = json.loads(value)
        except json.JSONDecodeError:
            overrides[key] = value
    return overrides


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Registry-driven experiment runner with persisted JSON "
                    "artifacts (see EXPERIMENTS.md).")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="enumerate registered experiments")
    list_cmd.add_argument("--json", action="store_true",
                          help="emit the registry as JSON")

    run_cmd = sub.add_parser(
        "run", help="run experiments and persist one JSON artifact each")
    run_cmd.add_argument("names", nargs="*",
                         help="experiment names (see 'list')")
    run_cmd.add_argument("--all", action="store_true",
                         help="run every registered experiment")
    run_cmd.add_argument("--scale", type=float, default=None,
                         help="data scale factor (experiment default: 1.0)")
    run_cmd.add_argument("--families", type=_parse_families, default=None,
                         metavar="N,N,...",
                         help="restrict to these query families / numbers")
    run_cmd.add_argument("--timeout", type=float, default=None,
                         help="per-query timeout in seconds")
    run_cmd.add_argument("--seed", type=int, default=None,
                         help="seed for experiments that take one")
    run_cmd.add_argument("--block-size", type=int, default=None,
                         help="storage-block rows for zone-map scan pruning "
                              "(0 disables pruning; experiment default: 4096)")
    run_cmd.add_argument("--no-dict-encode", action="store_true",
                         help="disable load-time dictionary encoding of "
                              "string columns")
    run_cmd.add_argument("--no-fused-kernels", action="store_true",
                         help="disable fused (selectivity-ordered, "
                              "single-pass) scan predicate evaluation")
    run_cmd.add_argument("--no-semijoin", action="store_true",
                         help="disable build-side semijoin/Bloom filters "
                              "pushed into probe-side scans")
    run_cmd.add_argument("--workers", type=int, default=None,
                         help="morsel-parallel intra-query workers for "
                              "experiments that take the knob (1 = "
                              "sequential; experiment default: 1)")
    run_cmd.add_argument("--stale", action="store_true",
                         help="for experiments with a stale-statistics mode "
                              "(figure15_statistics): drift the data after "
                              "ANALYZE so the optimizer plans on stale "
                              "statistics")
    run_cmd.add_argument("--jobs", type=int, default=1,
                         help="worker processes; >1 also shards experiments "
                              "by query family where possible")
    run_cmd.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR,
                         help=f"artifact directory (default: {DEFAULT_RESULTS_DIR}/)")
    run_cmd.add_argument("--summary", default=DEFAULT_SUMMARY,
                         help=f"merged summary path (default: {DEFAULT_SUMMARY})")
    run_cmd.add_argument("--force", action="store_true",
                         help="re-run even when a completed artifact matches")
    run_cmd.add_argument("--set", dest="overrides", action="append", default=[],
                         metavar="KEY=VALUE",
                         help="extra run() knob (JSON value), e.g. "
                              "--set 'algorithms=[\"QuerySplit\",\"Default\"]'")
    run_cmd.add_argument("--verbose", action="store_true",
                         help="print each experiment's reproduced tables")

    report_cmd = sub.add_parser(
        "report", help="merge persisted artifacts into the summary file")
    report_cmd.add_argument("--results-dir", default=DEFAULT_RESULTS_DIR)
    report_cmd.add_argument("--summary", default=DEFAULT_SUMMARY)

    serve_cmd = sub.add_parser(
        "serve",
        help="served mode: drive a generated stream through the concurrent "
             "engine server and print the latency/throughput report")
    serve_cmd.add_argument("--workload", default="imdb",
                           choices=["imdb", "tpch", "dsb"],
                           help="benchmark database to serve (default: imdb)")
    serve_cmd.add_argument("--scale", type=float, default=0.25,
                           help="data scale factor (default: 0.25)")
    serve_cmd.add_argument("--algorithm", default="QuerySplit",
                           help="policy executing every query "
                                "(default: QuerySplit)")
    serve_cmd.add_argument("--queries", type=int, default=100,
                           help="generated-stream length (default: 100)")
    serve_cmd.add_argument("--workers", type=int, default=4,
                           help="engine worker threads (default: 4)")
    serve_cmd.add_argument("--morsel-workers", type=int, default=1,
                           help="intra-query morsel workers shared by the "
                                "whole pool; capped so serving x morsel "
                                "threads never oversubscribe (default: 1)")
    serve_cmd.add_argument("--users", type=int, default=8,
                           help="simulated users submitting the stream "
                                "(default: 8)")
    serve_cmd.add_argument("--rate", type=float, default=16.0,
                           help="aggregate arrival rate, queries/second "
                                "(default: 16)")
    serve_cmd.add_argument("--admission", default="shed",
                           choices=["shed", "block"],
                           help="full-queue policy (default: shed)")
    serve_cmd.add_argument("--queue-capacity", type=int, default=8,
                           help="admission queue depth (default: 8)")
    serve_cmd.add_argument("--timeout", type=float, default=10.0,
                           help="per-query execution budget in seconds "
                                "(default: 10)")
    serve_cmd.add_argument("--seed", type=int, default=17,
                           help="stream + schedule seed (default: 17)")
    serve_cmd.add_argument("--time-scale", type=float, default=1.0,
                           help="wall seconds per schedule second (<1 "
                                "compresses the schedule; default: 1.0)")
    serve_cmd.add_argument("--no-cache", action="store_true",
                           help="disable the shared cross-query subplan cache")
    return parser


def cmd_list(args: argparse.Namespace) -> int:
    specs = registry.load_all()
    if args.json:
        payload = {name: {"artifact": spec.artifact, "module": spec.module,
                          "shard_param": spec.shard_param,
                          "defaults": artifacts.jsonify(dict(spec.defaults))}
                   for name, spec in sorted(specs.items())}
        print(json.dumps(payload, indent=2))
        return 0
    rows = [[name, spec.artifact,
             spec.shard_param or "-"]
            for name, spec in sorted(specs.items())]
    print(format_table(["Experiment", "Paper artifact", "Shards by"], rows,
                       title=f"{len(rows)} registered experiments"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    specs = registry.load_all()
    if args.all:
        names = sorted(specs)
    elif args.names:
        names = list(args.names)
    else:
        print("error: name at least one experiment or pass --all",
              file=sys.stderr)
        return 2
    try:
        overrides = _parse_set(args.overrides)
    except argparse.ArgumentTypeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for flag, knob in (("scale", "scale"), ("families", "families"),
                       ("timeout", "timeout_seconds"), ("seed", "seed"),
                       ("block_size", "block_size"), ("workers", "workers")):
        value = getattr(args, flag)
        if value is not None:
            overrides.setdefault(knob, value)
    for flag, knob in (("no_dict_encode", "dict_encode"),
                       ("no_fused_kernels", "fused_kernels"),
                       ("no_semijoin", "semijoin_pruning")):
        if getattr(args, flag):
            overrides.setdefault(knob, False)
    if args.stale:
        overrides.setdefault("stale", True)

    statuses = run_experiments(
        names, jobs=max(1, args.jobs), results_dir=args.results_dir,
        summary_path=args.summary, force=args.force, overrides=overrides,
        verbose=args.verbose)

    rows = [[s.name, s.status, s.queries or "", s.shards or "",
             format_seconds(s.elapsed) if s.elapsed else "",
             s.message or (str(s.path) if s.path else "")]
            for s in statuses]
    print(format_table(
        ["Experiment", "Status", "Queries", "Shards", "Wall clock", "Detail"],
        rows, title=f"run complete — summary: {args.summary}"))
    return 1 if any(s.status == "failed" for s in statuses) else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """One served run (driver → admission queue → worker pool → report)."""
    from repro.bench.harness import serve_generated
    from repro.executor.subplan_cache import SubplanCache
    from repro.storage.database import IndexConfig
    from repro.workloads.sqlgen import RandomQueryGenerator

    database = dbcache.build(args.workload, scale=args.scale,
                             index_config=IndexConfig.PK_FK)
    generator = RandomQueryGenerator(database, seed=args.seed,
                                     name_prefix="serve")
    cache = None if args.no_cache else SubplanCache()
    result = serve_generated(
        generator, args.queries, args.algorithm,
        workers=args.workers, users=args.users, rate=args.rate,
        queue_capacity=args.queue_capacity, admission=args.admission,
        timeout_seconds=args.timeout, subplan_cache=cache,
        seed=args.seed, time_scale=args.time_scale,
        morsel_workers=args.morsel_workers)
    s = result.summary
    rows = [
        ["offered", s["offered"]],
        ["completed", s["completed"]],
        ["shed", s["shed"]],
        ["timeouts", s["timeouts"]],
        ["errors", s["errors"]],
        ["throughput", f"{s['throughput_qps']:.1f} qps"],
        ["p50 latency", format_seconds(s["p50_latency"])],
        ["p95 latency", format_seconds(s["p95_latency"])],
        ["p99 latency", format_seconds(s["p99_latency"])],
        ["mean queue wait", format_seconds(s["mean_queue_wait"])],
        ["wall clock", format_seconds(result.wall_seconds)],
    ]
    if cache is not None:
        rows.append(["cache hit rate", f"{cache.hit_rate:.1%}"])
    print(format_table(
        ["Metric", "Value"], rows,
        title=f"served {args.workload} x{args.scale:g} — "
              f"{args.algorithm}, {args.workers} workers, "
              f"{args.users} users @ {args.rate:g} qps, "
              f"{args.admission} queue({args.queue_capacity})"))
    return 1 if s["errors"] else 0


def cmd_report(args: argparse.Namespace) -> int:
    summary = write_summary(args.results_dir, args.summary)
    experiments = summary["experiments"]
    rows = [[name, entry["artifact"], entry["queries"],
             format_seconds(entry["measured_seconds"]),
             entry["timeouts"] or "",
             entry.get("finished_at") or ""]
            for name, entry in experiments.items()]
    print(format_table(
        ["Experiment", "Paper artifact", "Queries", "Measured", "Timeouts",
         "Finished"],
        rows, title=f"{len(rows)} artifacts merged into {args.summary}"))
    return 0 if experiments else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "report": cmd_report,
                "serve": cmd_serve}
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
