"""Logical query representation.

The central object is :class:`SPJQuery`, the *select-project-join normal
form* of Section 3.2 of the paper: a set of relations, a set of single-table
filter predicates, and a set of equi-join predicates.  QuerySplit and every
re-optimization baseline operate on this form.

A relation inside an :class:`SPJQuery` is a :class:`RelationRef`.  It refers
either to a base table (``covered_aliases == {alias}``) or to a *materialized
temporary table* produced by an earlier re-optimization iteration, in which
case ``covered_aliases`` lists every original alias whose columns the
temporary carries.  Substituting a materialized result into a remaining
subquery (the "Replace overlap" step of Figure 5) therefore amounts to
swapping :class:`RelationRef` objects -- all predicates keep referring to the
original aliases, because temporary tables store columns under their original
qualified names (``t.id``, ``mk.movie_id``, ...).

Non-SPJ queries (needed for TPC-H and DSB) are trees of
:class:`AggregateNode` / :class:`UnionNode` whose leaves are
:class:`SPJNode` wrappers around SPJ queries (Section 3.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.plan.expressions import ColumnRef, JoinPredicate, Predicate


@dataclass(frozen=True)
class RelationRef:
    """A relation appearing in an SPJ query.

    Parameters
    ----------
    alias:
        The alias used in predicates (for base tables) or the temporary-table
        name (for materialized intermediates).
    table_name:
        The physical table to read (a schema table or a temporary table).
    covered_aliases:
        The set of original query aliases whose columns this relation
        provides.  A base relation covers exactly its own alias.
    is_temp:
        True for materialized intermediate results.
    """

    alias: str
    table_name: str
    covered_aliases: frozenset[str]
    is_temp: bool = False

    @classmethod
    def base(cls, alias: str, table_name: str) -> "RelationRef":
        """A reference to a base table bound to ``alias``."""
        return cls(alias=alias, table_name=table_name,
                   covered_aliases=frozenset({alias}), is_temp=False)

    @classmethod
    def temp(cls, temp_name: str, covered_aliases: frozenset[str]) -> "RelationRef":
        """A reference to a materialized temporary table."""
        return cls(alias=temp_name, table_name=temp_name,
                   covered_aliases=frozenset(covered_aliases), is_temp=True)

    def covers(self, alias: str) -> bool:
        """True if this relation provides the columns of ``alias``."""
        return alias in self.covered_aliases

    def __str__(self) -> str:
        if self.is_temp:
            return f"{self.alias}[{','.join(sorted(self.covered_aliases))}]"
        return f"{self.table_name} AS {self.alias}"


@dataclass(frozen=True)
class AggregateSpec:
    """A scalar or grouped aggregate in the projection list."""

    func: str
    column: ColumnRef | None
    output_name: str

    _FUNCS = {"min", "max", "count", "sum", "avg"}

    def __post_init__(self) -> None:
        if self.func not in self._FUNCS:
            raise ValueError(f"unsupported aggregate function {self.func!r}")
        if self.column is None and self.func != "count":
            raise ValueError("only COUNT may omit its input column")


@dataclass(frozen=True)
class SPJQuery:
    """An SPJ query in the paper's normal form.

    The query's result is the selection of all ``filters`` and
    ``join_predicates`` applied to the Cartesian product of ``relations``,
    projected onto ``projections`` (or fed into scalar ``aggregates`` such as
    the ``MIN(...)`` outputs every JOB query computes).
    """

    name: str
    relations: tuple[RelationRef, ...]
    filters: tuple[Predicate, ...] = ()
    join_predicates: tuple[JoinPredicate, ...] = ()
    projections: tuple[ColumnRef, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()

    def __post_init__(self) -> None:
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        aliases = [r.alias for r in self.relations]
        if len(aliases) != len(set(aliases)):
            raise ValueError(f"duplicate relation aliases in query {self.name!r}")
        covered = self.covered_aliases()
        for pred in self.filters:
            for alias in pred.aliases():
                if alias not in covered:
                    raise ValueError(
                        f"filter {pred!r} references unknown alias {alias!r}")
        for pred in self.join_predicates:
            for alias in pred.aliases():
                if alias not in covered:
                    raise ValueError(
                        f"join predicate {pred} references unknown alias {alias!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def covered_aliases(self) -> frozenset[str]:
        """All original aliases covered by the query's relations."""
        result: set[str] = set()
        for rel in self.relations:
            result.update(rel.covered_aliases)
        return frozenset(result)

    @property
    def relation_aliases(self) -> tuple[str, ...]:
        """Aliases of the relations (base alias or temp-table name)."""
        return tuple(r.alias for r in self.relations)

    def relation(self, alias: str) -> RelationRef:
        """The relation bound to ``alias`` (exact alias match)."""
        for rel in self.relations:
            if rel.alias == alias:
                return rel
        raise KeyError(f"query {self.name!r} has no relation aliased {alias!r}")

    def relation_covering(self, original_alias: str) -> RelationRef:
        """The relation that provides the columns of ``original_alias``."""
        for rel in self.relations:
            if rel.covers(original_alias):
                return rel
        raise KeyError(
            f"query {self.name!r} has no relation covering alias {original_alias!r}")

    def filters_for(self, relation: RelationRef) -> tuple[Predicate, ...]:
        """All filter predicates fully answered by ``relation``."""
        return tuple(
            pred for pred in self.filters
            if all(alias in relation.covered_aliases for alias in pred.aliases()))

    def join_predicates_between(self, left: RelationRef,
                                right: RelationRef) -> tuple[JoinPredicate, ...]:
        """Join predicates connecting ``left`` and ``right``."""
        preds = []
        for pred in self.join_predicates:
            left_alias, right_alias = pred.left.alias, pred.right.alias
            if ((left.covers(left_alias) and right.covers(right_alias))
                    or (left.covers(right_alias) and right.covers(left_alias))):
                preds.append(pred)
        return tuple(preds)

    def output_columns(self) -> tuple[ColumnRef, ...]:
        """All column references appearing in the output (projection/aggregates)."""
        refs = list(self.projections)
        refs.extend(spec.column for spec in self.aggregates if spec.column is not None)
        return tuple(refs)

    def referenced_columns(self) -> frozenset[ColumnRef]:
        """Every column referenced anywhere in the query."""
        refs: set[ColumnRef] = set(self.output_columns())
        for pred in self.filters:
            refs.update(pred.column_refs())
        for pred in self.join_predicates:
            refs.add(pred.left)
            refs.add(pred.right)
        return frozenset(refs)

    @property
    def num_joins(self) -> int:
        """Number of join predicates."""
        return len(self.join_predicates)

    def is_connected(self) -> bool:
        """True if the join graph over the relations is connected."""
        if len(self.relations) <= 1:
            return True
        adjacency: dict[str, set[str]] = {r.alias: set() for r in self.relations}
        for pred in self.join_predicates:
            left = self.relation_covering(pred.left.alias).alias
            right = self.relation_covering(pred.right.alias).alias
            if left != right:
                adjacency[left].add(right)
                adjacency[right].add(left)
        seen = {self.relations[0].alias}
        frontier = [self.relations[0].alias]
        while frontier:
            node = frontier.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.relations)

    # ------------------------------------------------------------------
    # Rewriting (used by the re-optimization loops)
    # ------------------------------------------------------------------
    def substitute(self, temp: RelationRef) -> "SPJQuery":
        """Replace every relation covered by ``temp`` with ``temp`` itself.

        This is the "Replace overlap" step of the QuerySplit workflow: after a
        subquery over relations *S* has been executed and materialized, every
        remaining subquery sharing a relation with *S* swaps those shared
        relations for the temporary table.  Filter and join predicates that
        are now internal to the temporary (both sides covered by it) have
        already been applied during materialization and are dropped.
        """
        replaced = [r for r in self.relations if r.covered_aliases & temp.covered_aliases]
        if not replaced:
            return self
        kept = [r for r in self.relations if not (r.covered_aliases & temp.covered_aliases)]
        # The temporary covers everything the replaced relations covered (it
        # may cover more aliases than this query uses; that is fine).
        new_relations = tuple(kept) + (temp,)
        new_covered = frozenset().union(*(r.covered_aliases for r in new_relations))

        def internal_to_temp(aliases: frozenset[str]) -> bool:
            return all(alias in temp.covered_aliases for alias in aliases)

        new_filters = tuple(
            pred for pred in self.filters if not internal_to_temp(pred.aliases()))
        new_joins = tuple(
            pred for pred in self.join_predicates
            if not internal_to_temp(pred.aliases()))
        # Sanity: every remaining predicate must still be answerable.
        for pred in itertools.chain(new_filters, new_joins):
            for alias in pred.aliases():
                if alias not in new_covered:
                    raise ValueError(
                        f"substitution broke predicate {pred}: alias {alias!r} lost")
        return replace(self, relations=new_relations, filters=new_filters,
                       join_predicates=new_joins)

    def with_projections(self, projections: tuple[ColumnRef, ...]) -> "SPJQuery":
        """Return a copy with a different projection list (no aggregates)."""
        return replace(self, projections=projections, aggregates=())

    def __str__(self) -> str:
        rels = ", ".join(str(r) for r in self.relations)
        return f"SPJQuery({self.name}: {rels}; {len(self.join_predicates)} joins)"


# ----------------------------------------------------------------------
# Non-SPJ query trees (Section 3.3)
# ----------------------------------------------------------------------
class QueryPlanNode:
    """Base class for nodes of a non-SPJ query tree."""

    def children(self) -> tuple["QueryPlanNode", ...]:
        """Child nodes."""
        raise NotImplementedError

    def spj_leaves(self) -> tuple[SPJQuery, ...]:
        """All SPJ queries at the leaves of this subtree."""
        leaves: list[SPJQuery] = []
        stack: list[QueryPlanNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, SPJNode):
                leaves.append(node.query)
            else:
                stack.extend(node.children())
        return tuple(leaves)


@dataclass(frozen=True)
class SPJNode(QueryPlanNode):
    """Leaf node wrapping an SPJ query."""

    query: SPJQuery

    def children(self) -> tuple[QueryPlanNode, ...]:
        return ()


@dataclass(frozen=True)
class AggregateNode(QueryPlanNode):
    """GROUP BY / scalar aggregation over a child subtree."""

    child: QueryPlanNode
    group_by: tuple[ColumnRef, ...]
    aggregates: tuple[AggregateSpec, ...]

    def children(self) -> tuple[QueryPlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class UnionNode(QueryPlanNode):
    """UNION ALL of several child subtrees with identical output shapes."""

    inputs: tuple[QueryPlanNode, ...]

    def children(self) -> tuple[QueryPlanNode, ...]:
        return self.inputs


@dataclass(frozen=True)
class Query:
    """A top-level query: either pure SPJ or a non-SPJ tree."""

    name: str
    root: QueryPlanNode
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    @classmethod
    def from_spj(cls, spj: SPJQuery, **metadata) -> "Query":
        """Wrap a plain SPJ query."""
        return cls(name=spj.name, root=SPJNode(spj), metadata=dict(metadata))

    @property
    def is_spj(self) -> bool:
        """True if the query is a single SPJ block."""
        return isinstance(self.root, SPJNode)

    @property
    def spj(self) -> SPJQuery:
        """The SPJ block of a pure-SPJ query (raises otherwise)."""
        if not isinstance(self.root, SPJNode):
            raise TypeError(f"query {self.name!r} is not a pure SPJ query")
        return self.root.query

    @property
    def num_relations(self) -> int:
        """Total number of base relations across all SPJ leaves."""
        return sum(len(leaf.relations) for leaf in self.root.spj_leaves())
