"""Physical plan trees produced by the optimizer.

A physical plan for an SPJ query is a binary join tree whose leaves are
:class:`ScanNode` (sequential scan + pushed-down filters over a base table or
a materialized temporary) and whose internal nodes are :class:`JoinNode` with
one of four join methods:

* ``HASH``      -- hash join (build on the right/inner child);
* ``INDEX_NL``  -- index nested-loop join: the outer child is probed against a
  B+tree-style index on the inner base table (the inner child must be a scan
  of an indexed base relation);
* ``NL``        -- naive nested-loop join (only used as a last resort, e.g.
  cross products);
* ``MERGE``     -- sort-merge join.

The optimizer annotates every node with its estimated output cardinality and
cumulative cost, and the executor later fills in the *actual* values, which
is what the re-optimization triggers compare against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.plan.expressions import ColumnRef, JoinPredicate, Predicate
from repro.plan.logical import AggregateSpec, RelationRef


class JoinMethod(enum.Enum):
    """Physical join algorithm."""

    HASH = "hash"
    INDEX_NL = "index_nl"
    NL = "nl"
    MERGE = "merge"


def scan_signature(relation: RelationRef,
                   filters: tuple[Predicate, ...]) -> tuple:
    """Canonical signature of one filtered scan.

    The single definition of the scan-key encoding used by
    :meth:`PlanNode.signature` and by the executor's subplan cache
    (including its logical-subset variant for oracle probes) -- the two
    sides must build byte-identical keys or every cross-policy lookup
    silently misses.
    """
    return ("scan", relation.table_name, relation.alias, relation.is_temp,
            frozenset(filters))


@dataclass
class PlanNode:
    """Base class for physical plan nodes."""

    est_rows: float = field(default=0.0, kw_only=True)
    est_cost: float = field(default=0.0, kw_only=True)
    actual_rows: int | None = field(default=None, kw_only=True)
    actual_time: float | None = field(default=None, kw_only=True)

    def children(self) -> tuple["PlanNode", ...]:
        """Child plan nodes."""
        raise NotImplementedError

    def covered_aliases(self) -> frozenset[str]:
        """Original query aliases whose columns this subtree produces."""
        raise NotImplementedError

    def leaf_relations(self) -> tuple[RelationRef, ...]:
        """All scanned relations in this subtree, left to right."""
        leaves: list[RelationRef] = []
        stack: list[PlanNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, ScanNode):
                leaves.append(node.relation)
            else:
                stack.extend(reversed(node.children()))
        return tuple(leaves)

    def join_nodes(self) -> tuple["JoinNode", ...]:
        """All join nodes in this subtree (post-order: deepest joins first)."""
        joins: list[JoinNode] = []

        def visit(node: PlanNode) -> None:
            for child in node.children():
                visit(child)
            if isinstance(node, JoinNode):
                joins.append(node)

        visit(self)
        return tuple(joins)

    def signature(self) -> tuple[frozenset, frozenset]:
        """Canonical logical signature of this subtree's result.

        Two subtrees with equal signatures produce the same multiset of rows:
        the signature records *what* is computed (filtered scans + applied
        join predicates) and deliberately ignores *how* (join order, physical
        join method, index choice).  The engine-level
        :class:`~repro.executor.subplan_cache.SubplanCache` keys on it, which
        is what lets different re-optimization policies share each other's
        executed subtrees.
        """
        scans: list[tuple] = []
        preds: list = []
        stack: list[PlanNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, ScanNode):
                scans.append(scan_signature(node.relation, node.filters))
            elif isinstance(node, JoinNode):
                preds.extend(node.predicates)
                stack.extend(node.children())
        return (frozenset(scans), frozenset(preds))


@dataclass
class ScanNode(PlanNode):
    """Sequential scan of a relation with pushed-down filter predicates."""

    relation: RelationRef
    filters: tuple[Predicate, ...] = ()

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def covered_aliases(self) -> frozenset[str]:
        return self.relation.covered_aliases

    def __str__(self) -> str:
        return f"Scan({self.relation.alias}, rows~{self.est_rows:.0f})"


@dataclass
class JoinNode(PlanNode):
    """Binary join of two subplans."""

    left: PlanNode
    right: PlanNode
    predicates: tuple[JoinPredicate, ...]
    method: JoinMethod = JoinMethod.HASH
    #: For INDEX_NL joins: the indexed column of the inner (right) relation.
    index_column: ColumnRef | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def covered_aliases(self) -> frozenset[str]:
        return self.left.covered_aliases() | self.right.covered_aliases()

    @property
    def is_pipeline_breaker(self) -> bool:
        """True if this join fully materializes one input before producing output.

        Hash joins and merge joins consume their build/sort inputs entirely
        before emitting the first output tuple; nested-loop joins (plain or
        index-based) stream.  This distinction is what the Reopt baseline's
        "materialize at pipeline breakers" policy keys on.
        """
        return self.method in (JoinMethod.HASH, JoinMethod.MERGE)

    def __str__(self) -> str:
        return (f"Join[{self.method.value}]({', '.join(str(p) for p in self.predicates)},"
                f" rows~{self.est_rows:.0f})")


@dataclass
class PhysicalPlan:
    """A complete physical plan for one SPJ query."""

    query_name: str
    root: PlanNode
    output_columns: tuple[ColumnRef, ...] = ()
    aggregates: tuple[AggregateSpec, ...] = ()
    group_by: tuple[ColumnRef, ...] = ()

    @property
    def est_rows(self) -> float:
        """Estimated output cardinality of the plan root."""
        return self.root.est_rows

    @property
    def est_cost(self) -> float:
        """Estimated total cost of the plan."""
        return self.root.est_cost

    def leaf_relations(self) -> tuple[RelationRef, ...]:
        """All scanned relations."""
        return self.root.leaf_relations()

    def join_nodes(self) -> tuple[JoinNode, ...]:
        """All joins, deepest first."""
        return self.root.join_nodes()

    def explain(self, node: PlanNode | None = None, depth: int = 0) -> str:
        """Produce a human-readable EXPLAIN-style rendering of the plan."""
        node = node or self.root
        pad = "  " * depth
        lines = [f"{pad}{node}"]
        for child in node.children():
            lines.append(self.explain(child, depth + 1))
        return "\n".join(lines)

    def intermediate_relation_sets(self, include_root: bool = False) -> set[frozenset[str]]:
        """Alias sets produced by intermediate join nodes (for plan similarity)."""
        sets = {join.covered_aliases() for join in self.join_nodes()}
        if not include_root:
            sets.discard(self.root.covered_aliases())
        return sets
