"""Query plan representations.

* :mod:`repro.plan.expressions` -- filter predicates and equi-join predicates;
* :mod:`repro.plan.logical` -- the SPJ normal form used by QuerySplit
  (Section 3.2 of the paper) plus non-SPJ wrapper nodes (Section 3.3);
* :mod:`repro.plan.physical` -- physical operator trees produced by the
  optimizer and consumed by the executor;
* :mod:`repro.plan.similarity` -- the plan-similarity score of Section 2.2
  (Table 1).
"""

from repro.plan.expressions import (
    ColumnRef,
    Comparison,
    Between,
    InList,
    IsNotNull,
    StringContains,
    StringPrefix,
    OrPredicate,
    JoinPredicate,
    Predicate,
)
from repro.plan.logical import (
    RelationRef,
    SPJQuery,
    AggregateSpec,
    Query,
    AggregateNode,
    UnionNode,
    SPJNode,
    QueryPlanNode,
)
from repro.plan.physical import PhysicalPlan, ScanNode, JoinNode, JoinMethod
from repro.plan.similarity import plan_similarity

__all__ = [
    "ColumnRef",
    "Comparison",
    "Between",
    "InList",
    "IsNotNull",
    "StringContains",
    "StringPrefix",
    "OrPredicate",
    "JoinPredicate",
    "Predicate",
    "RelationRef",
    "SPJQuery",
    "AggregateSpec",
    "Query",
    "AggregateNode",
    "UnionNode",
    "SPJNode",
    "QueryPlanNode",
    "PhysicalPlan",
    "ScanNode",
    "JoinNode",
    "JoinMethod",
    "plan_similarity",
]
