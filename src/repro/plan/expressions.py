"""Predicates and column references.

All column references are *alias-qualified* (``ColumnRef("t", "id")`` means
column ``id`` of the relation bound to alias ``t`` in the query).  Predicates
fall in two groups:

* **filter predicates** (single relation): comparisons, ranges, IN-lists,
  string containment / prefix, NOT NULL, and disjunctions of these;
* **join predicates**: equality between two column references from different
  relations (only equi-joins are supported, as in the paper's evaluation).

Each filter predicate knows how to evaluate itself against numpy column
arrays through a ``resolve`` callback, which keeps the executor generic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Signature of the callback predicates use to obtain column data.
ColumnResolver = Callable[["ColumnRef"], np.ndarray]


@dataclass(frozen=True, order=True)
class ColumnRef:
    """An alias-qualified reference to a column (``alias.column``)."""

    alias: str
    column: str

    @property
    def qualified(self) -> str:
        """The qualified name used for intermediate-result columns."""
        return f"{self.alias}.{self.column}"

    def __str__(self) -> str:
        return self.qualified


class Predicate:
    """Base class for single-relation filter predicates.

    Concrete predicates are frozen dataclasses; most expose the column they
    apply to as a ``column`` field (OR predicates may span several columns of
    the same relation and expose them via :meth:`column_refs` only).
    """

    def aliases(self) -> frozenset[str]:
        """Aliases of the relations referenced by this predicate."""
        return frozenset(ref.alias for ref in self.column_refs())

    def column_refs(self) -> tuple[ColumnRef, ...]:
        """All column references used by the predicate."""
        raise NotImplementedError

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        """Evaluate to a boolean mask over the rows supplied by ``resolve``."""
        raise NotImplementedError


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> literal`` where op is one of =, !=, <, <=, >, >=."""

    column: ColumnRef
    op: str
    value: object

    _OPS = {"=", "!=", "<", "<=", ">", ">="}

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def column_refs(self) -> tuple[ColumnRef, ...]:
        return (self.column,)

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        values = resolve(self.column)
        if self.op == "=":
            return values == self.value
        if self.op == "!=":
            return values != self.value
        if self.op == "<":
            return values < self.value
        if self.op == "<=":
            return values <= self.value
        if self.op == ">":
            return values > self.value
        return values >= self.value


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= column <= high`` (both bounds inclusive)."""

    column: ColumnRef
    low: object
    high: object

    def column_refs(self) -> tuple[ColumnRef, ...]:
        return (self.column,)

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        values = resolve(self.column)
        return (values >= self.low) & (values <= self.high)


@dataclass(frozen=True)
class InList(Predicate):
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: tuple

    def column_refs(self) -> tuple[ColumnRef, ...]:
        return (self.column,)

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        data = resolve(self.column)
        if not self.values:
            return np.zeros(len(data), dtype=bool)
        try:
            needles = np.asarray(list(self.values), dtype=data.dtype)
            # The cast must round-trip: e.g. 3.7 silently truncates to 3 in
            # an int column and would then match rows the predicate should
            # not.  Mismatches take the elementwise fallback below instead.
            if all(c == v for c, v in zip(needles.tolist(), self.values)):
                return np.isin(data, needles)
        except (TypeError, ValueError, OverflowError):
            pass
        # Mixed/non-representable values: OR of elementwise equality, which
        # follows the same comparison semantics as Comparison("=").
        mask = np.zeros(len(data), dtype=bool)
        for value in self.values:
            mask |= np.asarray(data == value, dtype=bool)
        return mask


@dataclass(frozen=True)
class IsNotNull(Predicate):
    """``column IS NOT NULL`` (NULL is ``None`` for strings, NaN for floats)."""

    column: ColumnRef

    def column_refs(self) -> tuple[ColumnRef, ...]:
        return (self.column,)

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        data = resolve(self.column)
        if data.dtype == object:
            return np.array([v is not None for v in data], dtype=bool)
        if data.dtype.kind == "f":
            return ~np.isnan(data)
        return np.ones(len(data), dtype=bool)


@dataclass(frozen=True)
class StringContains(Predicate):
    """``column LIKE '%needle%'`` on a string column."""

    column: ColumnRef
    needle: str

    def column_refs(self) -> tuple[ColumnRef, ...]:
        return (self.column,)

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        data = resolve(self.column)
        return _string_mask(data, lambda arr: np.char.find(arr, self.needle) >= 0)


@dataclass(frozen=True)
class StringPrefix(Predicate):
    """``column LIKE 'prefix%'`` on a string column."""

    column: ColumnRef
    prefix: str

    def column_refs(self) -> tuple[ColumnRef, ...]:
        return (self.column,)

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        data = resolve(self.column)
        return _string_mask(data, lambda arr: np.char.startswith(arr, self.prefix))


@dataclass(frozen=True)
class OrPredicate(Predicate):
    """Disjunction of filter predicates over the *same* relation."""

    children: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        aliases = {a for child in self.children for a in child.aliases()}
        if len(aliases) > 1:
            raise ValueError("OR predicates must reference a single relation")

    def column_refs(self) -> tuple[ColumnRef, ...]:
        refs: list[ColumnRef] = []
        for child in self.children:
            refs.extend(child.column_refs())
        return tuple(refs)

    def evaluate(self, resolve: ColumnResolver) -> np.ndarray:
        mask = self.children[0].evaluate(resolve)
        for child in self.children[1:]:
            mask = mask | child.evaluate(resolve)
        return mask


def _string_mask(data: np.ndarray, matcher) -> np.ndarray:
    """Evaluate a vectorized string matcher, treating ``None`` as non-matching."""
    if data.dtype == object:
        nulls = np.array([v is None for v in data], dtype=bool)
        if nulls.any():
            filled = np.where(nulls, "", data).astype(str)
            return matcher(filled) & ~nulls
        data = data.astype(str)
    return matcher(data)


@dataclass(frozen=True, order=True)
class JoinPredicate:
    """Equi-join predicate ``left = right`` between two relations."""

    left: ColumnRef
    right: ColumnRef

    def __post_init__(self) -> None:
        if self.left.alias == self.right.alias:
            raise ValueError("join predicate must reference two distinct relations")

    def aliases(self) -> frozenset[str]:
        """The pair of aliases this predicate connects."""
        return frozenset((self.left.alias, self.right.alias))

    def column_for(self, alias: str) -> ColumnRef:
        """The side of the predicate belonging to ``alias``."""
        if self.left.alias == alias:
            return self.left
        if self.right.alias == alias:
            return self.right
        raise KeyError(f"join predicate does not reference alias {alias!r}")

    def other(self, alias: str) -> ColumnRef:
        """The side of the predicate *not* belonging to ``alias``."""
        if self.left.alias == alias:
            return self.right
        if self.right.alias == alias:
            return self.left
        raise KeyError(f"join predicate does not reference alias {alias!r}")

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"
