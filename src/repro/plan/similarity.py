"""Plan similarity score (Section 2.2, Table 1 of the paper).

The similarity of two plans is the number of leaf relations contained in
their largest common subtree.  Following Figure 3 of the paper:

* similarity 0 -- the first joins of the two plans have no relation in
  common;
* similarity 1 -- the first joins share one relation (e.g. the probe side
  scans the same table but joins a different one);
* similarity >= 2 -- both plans compute the same intermediate result of that
  many relations at some (non-root) join node.

We implement this as: the largest *non-root* intermediate relation set
produced by both plans; if no intermediate is shared, 1 when the deepest
joins share at least one leaf relation and 0 otherwise.
"""

from __future__ import annotations

from repro.plan.physical import PhysicalPlan


def plan_similarity(plan_a: PhysicalPlan, plan_b: PhysicalPlan) -> int:
    """Similarity score between two physical plans of the same query."""
    joins_a = plan_a.join_nodes()
    joins_b = plan_b.join_nodes()
    if not joins_a or not joins_b:
        # Single-relation plans are trivially identical.
        return len(plan_a.leaf_relations())

    sets_a = plan_a.intermediate_relation_sets()
    sets_b = plan_b.intermediate_relation_sets()
    common = sets_a & sets_b
    if common:
        return max(len(s) for s in common)

    first_a = _first_join_aliases(plan_a)
    first_b = _first_join_aliases(plan_b)
    if first_a & first_b:
        return 1
    return 0


def _first_join_aliases(plan: PhysicalPlan) -> frozenset[str]:
    """Aliases of the relations participating in the plan's deepest join."""
    joins = plan.join_nodes()
    # join_nodes() is post-order, so the first entry is a deepest join.
    deepest = joins[0]
    return deepest.covered_aliases()


def similarity_bucket(score: int) -> str:
    """Bucket a similarity score the way Table 1 reports it."""
    if score <= 2:
        return str(score)
    return ">2"
