"""Cardinality estimation.

The :class:`DefaultCardinalityEstimator` mirrors PostgreSQL's approach as
described in Section 2.1 of the paper: per-column statistics (MCVs,
histograms, NDV) provide selectivities for single-table predicates, columns
are assumed independent (selectivities multiply), and equi-join selectivity
is ``1 / max(ndv_left, ndv_right)``.  These assumptions are exactly what
causes the underestimated join cardinalities and the exponential error
propagation that motivate re-optimization.

Every estimator answers one question -- "how many rows does this sub-join
produce?" -- through :meth:`CardinalityEstimator.estimate_rows`, which takes
the relations, applicable filters, and internal join predicates of the
sub-join.  The alternative estimators (oracle, noisy, learned, pessimistic)
share this interface so the optimizer is agnostic to which one it is driven
by.
"""

from __future__ import annotations

from repro.catalog.statistics import ColumnStats, DEFAULT_EQ_SELECTIVITY
from repro.catalog.types import DataType
from repro.plan.expressions import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNotNull,
    JoinPredicate,
    OrPredicate,
    Predicate,
    StringContains,
    StringPrefix,
)
from repro.plan.logical import RelationRef
from repro.storage.database import Database

#: Default selectivity used for string pattern matches (LIKE '%x%').
LIKE_SELECTIVITY = 0.02

#: Default selectivity for prefix matches (LIKE 'x%').
PREFIX_SELECTIVITY = 0.01

#: Minimum estimated row count (a plan node never estimates zero rows).
MIN_ROWS = 1.0


class CardinalityEstimator:
    """Interface every cardinality estimator implements."""

    def __init__(self, database: Database):
        self.database = database

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def estimate_rows(self, relations: tuple[RelationRef, ...],
                      filters: tuple[Predicate, ...],
                      join_predicates: tuple[JoinPredicate, ...],
                      query_name: str = "") -> float:
        """Estimated output cardinality of a sub-join.

        Parameters
        ----------
        relations:
            Relations participating in the sub-join.
        filters:
            Single-relation predicates applicable within the sub-join.
        join_predicates:
            Equi-join predicates internal to the sub-join.
        query_name:
            Name of the enclosing query (used by deterministic noise /
            caching layers).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def column_stats(self, relation: RelationRef, ref: ColumnRef) -> ColumnStats:
        """Statistics of the column ``ref`` as stored in ``relation``."""
        stats = self.database.stats(relation.table_name)
        if relation.is_temp:
            column_name = ref.qualified
        else:
            column_name = ref.column
        return stats.column_or_default(column_name, dtype=DataType.INT)

    def relation_rows(self, relation: RelationRef) -> float:
        """Raw row count of a relation."""
        return float(max(self.database.stats(relation.table_name).num_rows, 0))


class DefaultCardinalityEstimator(CardinalityEstimator):
    """PostgreSQL-style estimator: statistics + independence assumption."""

    def estimate_rows(self, relations, filters, join_predicates, query_name="") -> float:
        rows = 1.0
        for relation in relations:
            rows *= self.scan_rows(relation, self._filters_for(relation, filters))
        for pred in join_predicates:
            rows *= self.join_selectivity(pred, relations)
        return max(rows, MIN_ROWS)

    # ------------------------------------------------------------------
    # Base relation estimation
    # ------------------------------------------------------------------
    def scan_rows(self, relation: RelationRef,
                  filters: tuple[Predicate, ...]) -> float:
        """Estimated rows surviving the filters on a single relation."""
        rows = self.relation_rows(relation)
        if rows == 0:
            return MIN_ROWS
        selectivity = 1.0
        for pred in filters:
            selectivity *= self.filter_selectivity(relation, pred)
        return max(rows * selectivity, MIN_ROWS)

    def filter_selectivity(self, relation: RelationRef, pred: Predicate) -> float:
        """Selectivity of one single-relation predicate."""
        if isinstance(pred, OrPredicate):
            # Disjunction: 1 - prod(1 - s_i), capped at 1.
            miss = 1.0
            for child in pred.children:
                miss *= 1.0 - self.filter_selectivity(relation, child)
            return min(max(1.0 - miss, 0.0), 1.0)
        if isinstance(pred, Comparison):
            return self._comparison_selectivity(relation, pred)
        if isinstance(pred, Between):
            stats = self.column_stats(relation, pred.column)
            return stats.range_selectivity(low=pred.low, high=pred.high)
        if isinstance(pred, InList):
            stats = self.column_stats(relation, pred.column)
            sel = sum(stats.equality_selectivity(v) for v in pred.values)
            return min(sel, 1.0)
        if isinstance(pred, IsNotNull):
            stats = self.column_stats(relation, pred.column)
            return 1.0 - stats.null_fraction
        if isinstance(pred, StringContains):
            return LIKE_SELECTIVITY
        if isinstance(pred, StringPrefix):
            return PREFIX_SELECTIVITY
        return DEFAULT_EQ_SELECTIVITY

    def _comparison_selectivity(self, relation: RelationRef, pred: Comparison) -> float:
        stats = self.column_stats(relation, pred.column)
        if pred.op == "=":
            return stats.equality_selectivity(pred.value)
        if pred.op == "!=":
            return max(1.0 - stats.equality_selectivity(pred.value), 0.0)
        if pred.op in ("<", "<="):
            return stats.range_selectivity(low=None, high=pred.value)
        return stats.range_selectivity(low=pred.value, high=None)

    # ------------------------------------------------------------------
    # Join estimation
    # ------------------------------------------------------------------
    def join_selectivity(self, pred: JoinPredicate,
                         relations: tuple[RelationRef, ...]) -> float:
        """Selectivity of an equi-join predicate: ``1 / max(ndv_l, ndv_r)``."""
        left_rel = _relation_covering(relations, pred.left.alias)
        right_rel = _relation_covering(relations, pred.right.alias)
        left_stats = self.column_stats(left_rel, pred.left)
        right_stats = self.column_stats(right_rel, pred.right)
        ndv = max(left_stats.effective_ndv(), right_stats.effective_ndv(), 1)
        return 1.0 / ndv

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _filters_for(relation: RelationRef,
                     filters: tuple[Predicate, ...]) -> tuple[Predicate, ...]:
        return tuple(
            pred for pred in filters
            if all(alias in relation.covered_aliases for alias in pred.aliases()))


def _relation_covering(relations: tuple[RelationRef, ...], alias: str) -> RelationRef:
    """Find the relation providing ``alias`` among ``relations``."""
    for relation in relations:
        if relation.covers(alias):
            return relation
    raise KeyError(f"no relation covering alias {alias!r}")
