"""Pessimistic (upper-bound) cardinality estimation.

Stands in for the two sketch-based robust baselines of the paper:

* **Pessimistic Cardinality Estimation** (Cai et al.) derives upper bounds on
  join sizes from degree sketches; we reproduce the bound's behaviour using
  the statistics we already have: the join selectivity of a predicate is
  bounded by the *maximum frequency* of the join key on the dimension side
  (``|R join S| <= |R| * maxdeg_S(key)``), falling back to
  ``1 / min(ndv_l, ndv_r)`` when no frequency information is available.
  Estimates are therefore never smaller -- and usually much larger -- than
  the default estimator's, which pushes the optimizer toward "safe" hash
  plans.

* **USE** ("Simplicity Done Right for Join Ordering") uses the same
  upper-bound sketches, additionally disables nested-loop joins, and is
  non-adaptive; that variant is assembled in :mod:`repro.reopt.robust_baselines`
  by combining this estimator with an enumerator configuration that bans
  nested-loop joins.
"""

from __future__ import annotations

from repro.optimizer.cardinality import DefaultCardinalityEstimator, MIN_ROWS


class PessimisticCardinalityEstimator(DefaultCardinalityEstimator):
    """Upper-bound flavoured estimator (never underestimates joins)."""

    def join_selectivity(self, pred, relations) -> float:
        from repro.optimizer.cardinality import _relation_covering

        left_rel = _relation_covering(relations, pred.left.alias)
        right_rel = _relation_covering(relations, pred.right.alias)
        left_stats = self.column_stats(left_rel, pred.left)
        right_stats = self.column_stats(right_rel, pred.right)

        # Upper bound via the maximum per-key frequency on either side.
        max_freq = 0.0
        for stats in (left_stats, right_stats):
            if stats.mcv_fractions:
                max_freq = max(max_freq, max(stats.mcv_fractions))
        if max_freq > 0.0:
            return min(max_freq, 1.0)
        ndv = max(min(left_stats.effective_ndv(), right_stats.effective_ndv()), 1)
        return 1.0 / ndv

    def estimate_rows(self, relations, filters, join_predicates, query_name="") -> float:
        rows = super().estimate_rows(relations, filters, join_predicates, query_name)
        return max(rows, MIN_ROWS)
