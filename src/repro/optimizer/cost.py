"""Cost model for physical plan operators.

The parameters follow PostgreSQL's conventions (sequential / random page
cost, CPU tuple cost, ...), scaled so that costs roughly track the wall-clock
behaviour of the vectorized in-memory executor:

* a **hash join** pays to materialize (build) its inner input and to probe
  with its outer input;
* an **index nested-loop join** pays a per-probe cost proportional to the
  outer cardinality plus a per-match cost -- cheap when the outer input is
  small, ruinous when it is large;
* a **plain nested-loop join** is quadratic and only ever chosen for tiny
  inputs or cross products;
* **materializing** a temporary table (the re-optimization overhead the
  paper accounts for) costs a per-row write plus a per-row statistics pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.plan.physical import JoinMethod


@dataclass(frozen=True)
class CostParameters:
    """Tunable cost constants (PostgreSQL-inspired defaults)."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    rows_per_page: int = 100
    hash_build_factor: float = 1.5
    materialize_factor: float = 2.0
    statistics_factor: float = 1.0


class CostModel:
    """Computes operator and plan costs from estimated cardinalities."""

    #: Rows per storage block assumed when charging zone-map checks and the
    #: caller does not pass the table's actual block width.
    zone_map_block_rows: float = 4096.0

    def __init__(self, params: CostParameters | None = None):
        self.params = params or CostParameters()

    # ------------------------------------------------------------------
    # Leaf operators
    # ------------------------------------------------------------------
    #: Relative per-tuple cost of a filter evaluated in dictionary code
    #: space (an ``int32`` compare) versus a value-space one (which may be
    #: a Python-object comparison on string columns).
    code_space_filter_factor: float = 0.25

    def scan_cost(self, table_rows: float, output_rows: float,
                  num_filters: int = 0,
                  pruned_fraction: float = 0.0,
                  block_rows: float | None = None,
                  code_space_filters: int = 0) -> float:
        """Cost of a filtered sequential scan.

        ``pruned_fraction`` is the fraction of the table's storage blocks a
        zone-map pre-pass is expected to skip (0.0 = no pruning, the
        default): page reads and per-tuple filter evaluation are only paid
        for the surviving fraction, while the zone-map checks themselves
        cost one operator invocation per block per filter.  ``block_rows``
        is the table's actual block width (defaults to
        :attr:`zone_map_block_rows`).

        ``code_space_filters`` counts how many of the ``num_filters``
        evaluate over dictionary-encoded columns; those are charged only
        :attr:`code_space_filter_factor` of the per-tuple operator cost,
        reflecting the int-compare fast path.
        """
        p = self.params
        pruned_fraction = min(max(pruned_fraction, 0.0), 1.0)
        read_rows = table_rows * (1.0 - pruned_fraction)
        pages = max(read_rows / p.rows_per_page, 1.0)
        zone_checks = 0.0
        if pruned_fraction > 0.0:
            per_block = block_rows or self.zone_map_block_rows
            blocks = max(table_rows / per_block, 1.0)
            zone_checks = blocks * max(num_filters, 1) * p.cpu_operator_cost
        code_space_filters = min(max(code_space_filters, 0), num_filters)
        effective_filters = (num_filters - code_space_filters
                             + code_space_filters * self.code_space_filter_factor)
        return (pages * p.seq_page_cost
                + read_rows * p.cpu_tuple_cost
                + read_rows * effective_filters * p.cpu_operator_cost
                + zone_checks
                + output_rows * p.cpu_tuple_cost)

    # ------------------------------------------------------------------
    # Join operators
    # ------------------------------------------------------------------
    def join_cost(self, method: JoinMethod, outer_rows: float, inner_rows: float,
                  output_rows: float, inner_indexed: bool = False) -> float:
        """Incremental cost of a join (children's costs not included)."""
        if method is JoinMethod.HASH:
            return self._hash_join_cost(outer_rows, inner_rows, output_rows)
        if method is JoinMethod.INDEX_NL:
            if not inner_indexed:
                raise ValueError("INDEX_NL join requires an indexed inner relation")
            return self._index_nl_cost(outer_rows, inner_rows, output_rows)
        if method is JoinMethod.MERGE:
            return self._merge_join_cost(outer_rows, inner_rows, output_rows)
        return self._nested_loop_cost(outer_rows, inner_rows, output_rows)

    def _hash_join_cost(self, outer_rows, inner_rows, output_rows) -> float:
        p = self.params
        build = inner_rows * p.cpu_tuple_cost * p.hash_build_factor
        probe = outer_rows * (p.cpu_tuple_cost + p.cpu_operator_cost)
        emit = output_rows * p.cpu_tuple_cost
        return build + probe + emit

    def _index_nl_cost(self, outer_rows, inner_rows, output_rows) -> float:
        p = self.params
        # Each outer row descends the index: a few random page touches worth
        # of work amortized plus per-index-tuple CPU.
        per_probe = (p.random_page_cost / p.rows_per_page
                     + p.cpu_index_tuple_cost * math.log2(max(inner_rows, 2.0)))
        probes = outer_rows * per_probe
        emit = output_rows * p.cpu_tuple_cost
        return probes + emit

    def _merge_join_cost(self, outer_rows, inner_rows, output_rows) -> float:
        p = self.params
        sort = sum(
            rows * p.cpu_operator_cost * math.log2(max(rows, 2.0))
            for rows in (outer_rows, inner_rows))
        scan = (outer_rows + inner_rows) * p.cpu_tuple_cost
        emit = output_rows * p.cpu_tuple_cost
        return sort + scan + emit

    def _nested_loop_cost(self, outer_rows, inner_rows, output_rows) -> float:
        p = self.params
        return (outer_rows * inner_rows * p.cpu_operator_cost
                + output_rows * p.cpu_tuple_cost)

    # ------------------------------------------------------------------
    # Re-optimization overheads
    # ------------------------------------------------------------------
    def materialize_cost(self, rows: float) -> float:
        """Cost of writing a result into a temporary table."""
        return rows * self.params.cpu_tuple_cost * self.params.materialize_factor

    def analyze_cost(self, rows: float) -> float:
        """Cost of collecting statistics on a materialized temporary table."""
        return rows * self.params.cpu_tuple_cost * self.params.statistics_factor
