"""Simulated learned cardinality estimators (NeuroCard, DeepDB, MSCN).

The paper compares against three learned estimators and observes that (a)
they are substantially more accurate than the default estimator on numeric
predicates, but (b) they have "limited support for string columns" and fall
back to PostgreSQL's defaults whenever a query filters on strings -- which is
most of JOB.  Training the actual models is out of scope for this
reproduction (no network, no GPUs), so we model exactly that behaviour:

* sub-joins whose filters are all numeric are estimated as the *true*
  cardinality perturbed by a small model-specific log-normal error;
* sub-joins involving string predicates fall back to the default estimator.

The per-model error widths follow the relative accuracies reported in the
learned-CE literature (NeuroCard < DeepDB < MSCN).
"""

from __future__ import annotations

from repro.optimizer.cardinality import (
    CardinalityEstimator,
    DefaultCardinalityEstimator,
)
from repro.optimizer.injection import NoisyCardinalityEstimator
from repro.optimizer.oracle import OracleCardinalityEstimator, TrueCardinalityOracle
from repro.plan.expressions import StringContains, StringPrefix, Comparison, InList
from repro.storage.database import Database

#: Log2-domain error widths of the simulated models.
MODEL_SIGMA = {
    "neurocard": 0.35,
    "deepdb": 0.5,
    "mscn": 0.8,
}


class LearnedCardinalityEstimator(CardinalityEstimator):
    """A learned estimator: accurate on numeric predicates, default on strings."""

    def __init__(self, database: Database, model: str = "neurocard",
                 oracle: TrueCardinalityOracle | None = None, seed: int = 0):
        super().__init__(database)
        if model not in MODEL_SIGMA:
            raise ValueError(f"unknown learned model {model!r}; "
                             f"choose one of {sorted(MODEL_SIGMA)}")
        self.model = model
        self._default = DefaultCardinalityEstimator(database)
        accurate = OracleCardinalityEstimator(database, oracle=oracle)
        self._accurate = NoisyCardinalityEstimator(
            accurate, mu=0.0, sigma=MODEL_SIGMA[model], seed=seed)

    def estimate_rows(self, relations, filters, join_predicates, query_name="") -> float:
        if self._has_string_predicates(filters):
            return self._default.estimate_rows(relations, filters, join_predicates,
                                               query_name)
        return self._accurate.estimate_rows(relations, filters, join_predicates,
                                            query_name)

    @staticmethod
    def _has_string_predicates(filters) -> bool:
        for pred in filters:
            if isinstance(pred, (StringContains, StringPrefix)):
                return True
            if isinstance(pred, Comparison) and isinstance(pred.value, str):
                return True
            if isinstance(pred, InList) and any(isinstance(v, str) for v in pred.values):
                return True
        return False
