"""Join-order enumeration.

The enumerator performs the classic dynamic programming over connected
sub-plans (DPsize / DPsub style) used by System R descendants, limited to a
configurable relation count, and falls back to greedy operator ordering (GOO)
for wider queries.  For every join it considers hash join, index nested-loop
join (when the inner side is a single indexed base relation), merge join, and
plain nested-loop join, and keeps the cheapest alternative.

The enumerator is deliberately driven *only* by the injected cardinality
estimator: feeding it the default estimator reproduces PostgreSQL's
behaviour (including its mistakes), feeding it the oracle produces the
"Optimal" baseline, and feeding it a noisy estimator produces the robustness
study of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.plan.expressions import JoinPredicate, Predicate
from repro.plan.logical import RelationRef, SPJQuery
from repro.plan.physical import JoinMethod, JoinNode, PlanNode, ScanNode
from repro.storage.database import Database


@dataclass(frozen=True)
class EnumeratorConfig:
    """Knobs controlling the plan search."""

    dp_relation_limit: int = 8
    enable_index_nl: bool = True
    enable_hash: bool = True
    enable_merge: bool = True
    enable_nl: bool = True
    #: Account for zone-map block pruning in scan costs: the expected pruned
    #: fraction is computed from the stored table's actual zone maps (an
    #: exact "EXPLAIN-time" dry run of the pruning pass).  Off by default so
    #: plan choices match the paper's PostgreSQL-style cost model.
    zone_map_scan_cost: bool = False
    #: Multiplier applied to estimated cardinalities when evaluating plan
    #: robustness (used by the FS baseline); 1.0 disables the penalty.
    robustness_blowup: float = 1.0
    #: Weight of the blown-up cost in the robust objective (0 = pure cost).
    robustness_weight: float = 0.0


class JoinEnumerator:
    """Builds the cheapest physical join tree for an SPJ query."""

    def __init__(self, database: Database, estimator: CardinalityEstimator,
                 cost_model: CostModel, config: EnumeratorConfig | None = None):
        self.database = database
        self.estimator = estimator
        self.cost_model = cost_model
        self.config = config or EnumeratorConfig()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def plan(self, query: SPJQuery) -> PlanNode:
        """Return the root of the cheapest join tree found for ``query``."""
        base_nodes = [self._scan_node(query, rel) for rel in query.relations]
        if len(base_nodes) == 1:
            return base_nodes[0]
        if len(base_nodes) <= self.config.dp_relation_limit:
            return self._dynamic_programming(query, base_nodes)
        return self._greedy(query, base_nodes)

    # ------------------------------------------------------------------
    # Leaf plans
    # ------------------------------------------------------------------
    def _scan_node(self, query: SPJQuery, relation: RelationRef) -> ScanNode:
        filters = query.filters_for(relation)
        rows = self.estimator.estimate_rows((relation,), filters, (), query.name)
        table_rows = self.estimator.relation_rows(relation)
        pruned, block_rows = self._pruned_fraction(relation, filters)
        cost = self.cost_model.scan_cost(
            table_rows, rows, len(filters),
            pruned_fraction=pruned, block_rows=block_rows,
            code_space_filters=self._code_space_filters(relation, filters))
        return ScanNode(relation=relation, filters=filters,
                        est_rows=rows, est_cost=cost)

    def _code_space_filters(self, relation: RelationRef,
                            filters: tuple[Predicate, ...]) -> int:
        """Filters the scan will evaluate in dictionary code space.

        A filter qualifies when every column it references is stored
        dictionary-encoded in the base table (temps are never encoded), so
        the executor's predicate translation turns it into an int compare.
        """
        if not filters or relation.is_temp:
            return 0
        if not self.database.has_table(relation.table_name):
            return 0
        table = self.database.table(relation.table_name)
        if not table.dictionaries:
            return 0
        return sum(
            1 for pred in filters
            if all(table.has_column(ref.column) and table.is_encoded(ref.column)
                   for ref in pred.column_refs()))

    def _pruned_fraction(self, relation: RelationRef,
                         filters: tuple[Predicate, ...]
                         ) -> tuple[float, float | None]:
        """Expected zone-map pruning for this scan: (fraction, block rows).

        (0.0, None) unless ``zone_map_scan_cost`` is enabled and the stored
        table has zone maps; the fraction is an exact EXPLAIN-time dry run
        of the pruner over the real zone maps.
        """
        if not self.config.zone_map_scan_cost or not filters or relation.is_temp:
            return 0.0, None
        if not self.database.has_table(relation.table_name):
            return 0.0, None
        zone_maps = self.database.table(relation.table_name).zone_maps
        if zone_maps is None:
            return 0.0, None
        fraction = zone_maps.pruned_fraction(filters, lambda ref: ref.column)
        return fraction, float(zone_maps.block_size)

    # ------------------------------------------------------------------
    # Dynamic programming over subsets
    # ------------------------------------------------------------------
    def _dynamic_programming(self, query: SPJQuery,
                             base_nodes: list[ScanNode]) -> PlanNode:
        n = len(base_nodes)
        full_mask = (1 << n) - 1
        best: dict[int, PlanNode] = {}
        rows_cache: dict[int, float] = {}
        for i, node in enumerate(base_nodes):
            best[1 << i] = node
            rows_cache[1 << i] = node.est_rows

        # Pre-compute, for every pair of relations, the predicates connecting
        # them, so split connectivity checks are cheap.
        pair_preds = self._pair_predicates(query, base_nodes)

        for mask in sorted(range(1, full_mask + 1), key=_popcount):
            if _popcount(mask) < 2:
                continue
            subset_rows = self._subset_rows(query, base_nodes, mask, rows_cache)
            best_node: PlanNode | None = None
            best_score = float("inf")
            # Every ordered split (sub, other) is considered so that both join
            # orientations (which side builds / is probed via its index) are
            # explored.
            sub = (mask - 1) & mask
            while sub:
                other = mask ^ sub
                left = best.get(sub)
                right = best.get(other)
                if left is None or right is None:
                    sub = (sub - 1) & mask
                    continue
                preds = self._predicates_between(pair_preds, sub, other)
                for node in self._join_candidates(left, right, preds, subset_rows):
                    score = self._plan_score(node)
                    if score < best_score:
                        best_score = score
                        best_node = node
                sub = (sub - 1) & mask
            if best_node is not None:
                best[mask] = best_node

        if full_mask in best:
            return best[full_mask]
        # The join graph is disconnected: combine the best plans of its
        # connected components with cross products.
        return self._combine_components(query, base_nodes, best, rows_cache)

    def _subset_rows(self, query: SPJQuery, base_nodes: list[ScanNode],
                     mask: int, cache: dict[int, float]) -> float:
        if mask in cache:
            return cache[mask]
        relations = tuple(base_nodes[i].relation
                          for i in range(len(base_nodes)) if mask & (1 << i))
        filters = _filters_within(query, relations)
        joins = _joins_within(query, relations)
        rows = self.estimator.estimate_rows(relations, filters, joins, query.name)
        cache[mask] = rows
        return rows

    def _combine_components(self, query: SPJQuery, base_nodes: list[ScanNode],
                            best: dict[int, PlanNode],
                            rows_cache: dict[int, float]) -> PlanNode:
        n = len(base_nodes)
        full_mask = (1 << n) - 1
        # Greedily merge the largest solved masks until everything is covered.
        solved = sorted(best, key=_popcount, reverse=True)
        covered = 0
        parts: list[PlanNode] = []
        for mask in solved:
            if covered & mask:
                continue
            parts.append(best[mask])
            covered |= mask
            if covered == full_mask:
                break
        result = parts[0]
        for part in parts[1:]:
            out_rows = max(result.est_rows * part.est_rows, 1.0)
            cost = (result.est_cost + part.est_cost
                    + self.cost_model.join_cost(JoinMethod.NL, result.est_rows,
                                                part.est_rows, out_rows))
            result = JoinNode(left=result, right=part, predicates=(),
                              method=JoinMethod.NL, est_rows=out_rows, est_cost=cost)
        return result

    # ------------------------------------------------------------------
    # Greedy operator ordering for wide queries
    # ------------------------------------------------------------------
    def _greedy(self, query: SPJQuery, base_nodes: list[ScanNode]) -> PlanNode:
        components: list[PlanNode] = list(base_nodes)
        while len(components) > 1:
            best_pair: tuple[int, int] | None = None
            best_node: PlanNode | None = None
            best_score = float("inf")
            for i in range(len(components)):
                for j in range(len(components)):
                    if i == j:
                        continue
                    left, right = components[i], components[j]
                    preds = self._predicates_between_nodes(query, left, right)
                    if not preds:
                        continue
                    out_rows = self._estimate_merged_rows(query, left, right)
                    for node in self._join_candidates(left, right, preds, out_rows):
                        score = self._plan_score(node)
                        if score < best_score:
                            best_score = score
                            best_node = node
                            best_pair = (i, j)
            if best_node is None:
                # No connected pair remains: cross product the two smallest.
                components.sort(key=lambda n: n.est_rows)
                left, right = components[0], components[1]
                out_rows = max(left.est_rows * right.est_rows, 1.0)
                cost = (left.est_cost + right.est_cost
                        + self.cost_model.join_cost(JoinMethod.NL, left.est_rows,
                                                    right.est_rows, out_rows))
                best_node = JoinNode(left=left, right=right, predicates=(),
                                     method=JoinMethod.NL, est_rows=out_rows,
                                     est_cost=cost)
                best_pair = (0, 1)
            i, j = best_pair
            components = [c for k, c in enumerate(components) if k not in (i, j)]
            components.append(best_node)
        return components[0]

    def _estimate_merged_rows(self, query: SPJQuery, left: PlanNode,
                              right: PlanNode) -> float:
        relations = tuple(
            rel for rel in query.relations
            if rel.covered_aliases <= (left.covered_aliases() | right.covered_aliases()))
        filters = _filters_within(query, relations)
        joins = _joins_within(query, relations)
        return self.estimator.estimate_rows(relations, filters, joins, query.name)

    # ------------------------------------------------------------------
    # Join candidate generation
    # ------------------------------------------------------------------
    def _join_candidates(self, left: PlanNode, right: PlanNode,
                         preds: tuple[JoinPredicate, ...],
                         output_rows: float) -> list[JoinNode]:
        candidates: list[JoinNode] = []
        child_cost = left.est_cost + right.est_cost
        if not preds:
            if self.config.enable_nl:
                cost = child_cost + self.cost_model.join_cost(
                    JoinMethod.NL, left.est_rows, right.est_rows, output_rows)
                candidates.append(JoinNode(
                    left=left, right=right, predicates=(), method=JoinMethod.NL,
                    est_rows=output_rows, est_cost=cost))
            return candidates

        if self.config.enable_hash:
            cost = child_cost + self.cost_model.join_cost(
                JoinMethod.HASH, left.est_rows, right.est_rows, output_rows)
            candidates.append(JoinNode(
                left=left, right=right, predicates=preds, method=JoinMethod.HASH,
                est_rows=output_rows, est_cost=cost))

        if self.config.enable_merge:
            cost = child_cost + self.cost_model.join_cost(
                JoinMethod.MERGE, left.est_rows, right.est_rows, output_rows)
            candidates.append(JoinNode(
                left=left, right=right, predicates=preds, method=JoinMethod.MERGE,
                est_rows=output_rows, est_cost=cost))

        if self.config.enable_index_nl:
            index_column = self._indexed_inner_column(right, preds)
            if index_column is not None:
                inner_rows = self.estimator.relation_rows(right.relation)  # type: ignore[union-attr]
                cost = child_cost - right.est_cost + self.cost_model.join_cost(
                    JoinMethod.INDEX_NL, left.est_rows, inner_rows, output_rows,
                    inner_indexed=True)
                candidates.append(JoinNode(
                    left=left, right=right, predicates=preds,
                    method=JoinMethod.INDEX_NL, index_column=index_column,
                    est_rows=output_rows, est_cost=cost))

        if self.config.enable_nl and len(preds) > 0 and not candidates:
            cost = child_cost + self.cost_model.join_cost(
                JoinMethod.NL, left.est_rows, right.est_rows, output_rows)
            candidates.append(JoinNode(
                left=left, right=right, predicates=preds, method=JoinMethod.NL,
                est_rows=output_rows, est_cost=cost))
        return candidates

    def _indexed_inner_column(self, right: PlanNode,
                              preds: tuple[JoinPredicate, ...]):
        """Return the indexed inner column if an index nested-loop join applies."""
        if not isinstance(right, ScanNode):
            return None
        relation = right.relation
        if relation.is_temp:
            return None
        for pred in preds:
            for side in (pred.left, pred.right):
                if relation.covers(side.alias) and self.database.has_index(
                        relation.table_name, side.column):
                    return side
        return None

    def _plan_score(self, node: JoinNode) -> float:
        """Objective used to compare candidate plans.

        With robustness disabled this is simply the estimated cost; the FS
        baseline mixes in the cost the plan would have if every cardinality
        were ``robustness_blowup`` times larger.
        """
        if self.config.robustness_weight <= 0.0:
            return node.est_cost
        blowup = self.config.robustness_blowup
        inflated = self.cost_model.join_cost(
            node.method,
            node.left.est_rows * blowup,
            node.right.est_rows * blowup,
            node.est_rows * blowup,
            inner_indexed=node.method is JoinMethod.INDEX_NL,
        ) + node.left.est_cost + node.right.est_cost
        w = self.config.robustness_weight
        return (1.0 - w) * node.est_cost + w * inflated

    # ------------------------------------------------------------------
    # Predicate bookkeeping
    # ------------------------------------------------------------------
    def _pair_predicates(self, query: SPJQuery, base_nodes: list[ScanNode]
                         ) -> dict[tuple[int, int], list[JoinPredicate]]:
        index_of: dict[str, int] = {}
        for i, node in enumerate(base_nodes):
            for alias in node.relation.covered_aliases:
                index_of[alias] = i
        pairs: dict[tuple[int, int], list[JoinPredicate]] = {}
        for pred in query.join_predicates:
            i = index_of[pred.left.alias]
            j = index_of[pred.right.alias]
            if i == j:
                continue
            key = (min(i, j), max(i, j))
            pairs.setdefault(key, []).append(pred)
        return pairs

    @staticmethod
    def _predicates_between(pair_preds: dict[tuple[int, int], list[JoinPredicate]],
                            mask_a: int, mask_b: int) -> tuple[JoinPredicate, ...]:
        preds: list[JoinPredicate] = []
        for (i, j), plist in pair_preds.items():
            in_a = bool(mask_a & (1 << i)), bool(mask_a & (1 << j))
            in_b = bool(mask_b & (1 << i)), bool(mask_b & (1 << j))
            if (in_a[0] and in_b[1]) or (in_a[1] and in_b[0]):
                preds.extend(plist)
        return tuple(preds)

    @staticmethod
    def _predicates_between_nodes(query: SPJQuery, left: PlanNode,
                                  right: PlanNode) -> tuple[JoinPredicate, ...]:
        left_aliases = left.covered_aliases()
        right_aliases = right.covered_aliases()
        preds = []
        for pred in query.join_predicates:
            a, b = pred.left.alias, pred.right.alias
            if (a in left_aliases and b in right_aliases) or (
                    b in left_aliases and a in right_aliases):
                preds.append(pred)
        return tuple(preds)


# ----------------------------------------------------------------------
# Module-level helpers shared with the estimators
# ----------------------------------------------------------------------
def _popcount(mask: int) -> int:
    return bin(mask).count("1")


def _filters_within(query: SPJQuery,
                    relations: tuple[RelationRef, ...]) -> tuple[Predicate, ...]:
    """Filters of ``query`` fully contained in the given relation subset."""
    covered: set[str] = set()
    for rel in relations:
        covered.update(rel.covered_aliases)
    return tuple(
        pred for pred in query.filters
        if all(alias in covered for alias in pred.aliases()))


def _joins_within(query: SPJQuery,
                  relations: tuple[RelationRef, ...]) -> tuple[JoinPredicate, ...]:
    """Join predicates of ``query`` internal to the given relation subset.

    Predicates whose two sides are covered by the *same* relation (e.g. both
    inside one materialized temporary) are excluded: they were already applied
    when the temporary was built.
    """
    preds = []
    for pred in query.join_predicates:
        left_rel = _covering(relations, pred.left.alias)
        right_rel = _covering(relations, pred.right.alias)
        if left_rel is None or right_rel is None:
            continue
        if left_rel is right_rel:
            continue
        preds.append(pred)
    return tuple(preds)


def _covering(relations: tuple[RelationRef, ...], alias: str) -> RelationRef | None:
    for rel in relations:
        if rel.covers(alias):
            return rel
    return None
