"""Robust query processing helpers: FS plan robustness and OptRange.

* **FS** (Wolf et al., "Robustness metrics for relational query execution
  plans") selects plans by a weighted combination of the estimated cost and
  the cost the plan would incur if cardinalities were substantially larger.
  We realize it through :class:`repro.optimizer.join_enum.EnumeratorConfig`'s
  ``robustness_blowup`` / ``robustness_weight`` knobs; :func:`fs_config`
  returns the configuration used by the FS baseline.

* **OptRange** (Wolf et al., "On the calculation of optimality ranges")
  derives, for each plan operator, the range of actual cardinalities within
  which the current plan remains optimal.  We approximate the range with a
  multiplicative validity window around the estimate; the OptRange baseline
  (see :mod:`repro.reopt`) re-optimizes only when an observed cardinality
  falls outside its window -- its intended use as "a heuristic to reduce
  unnecessary re-optimizations".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.optimizer.join_enum import EnumeratorConfig


def fs_config(base: EnumeratorConfig | None = None,
              blowup: float = 8.0, weight: float = 0.5) -> EnumeratorConfig:
    """Enumerator configuration used by the FS robust-plan baseline."""
    base = base or EnumeratorConfig()
    return EnumeratorConfig(
        dp_relation_limit=base.dp_relation_limit,
        enable_index_nl=base.enable_index_nl,
        enable_hash=base.enable_hash,
        enable_merge=base.enable_merge,
        enable_nl=base.enable_nl,
        robustness_blowup=blowup,
        robustness_weight=weight,
    )


def use_config(base: EnumeratorConfig | None = None) -> EnumeratorConfig:
    """Enumerator configuration used by the USE baseline (no nested loops)."""
    base = base or EnumeratorConfig()
    return EnumeratorConfig(
        dp_relation_limit=base.dp_relation_limit,
        enable_index_nl=False,
        enable_hash=True,
        enable_merge=base.enable_merge,
        enable_nl=False,
        robustness_blowup=base.robustness_blowup,
        robustness_weight=base.robustness_weight,
    )


@dataclass(frozen=True)
class OptimalityRange:
    """Validity window of an estimate: the plan is kept while the actual
    cardinality stays within ``[estimate / shrink, estimate * grow]``."""

    estimate: float
    shrink: float = 4.0
    grow: float = 4.0

    @property
    def low(self) -> float:
        """Lower bound of the validity window."""
        return self.estimate / self.shrink

    @property
    def high(self) -> float:
        """Upper bound of the validity window."""
        return self.estimate * self.grow

    def contains(self, actual: float) -> bool:
        """True if the observed cardinality keeps the current plan optimal."""
        return self.low <= actual <= self.high


def optimality_range(estimate: float, shrink: float = 4.0,
                     grow: float = 4.0) -> OptimalityRange:
    """Build the optimality range around an estimated cardinality."""
    return OptimalityRange(estimate=max(estimate, 1.0), shrink=shrink, grow=grow)
