"""Controlled cardinality-estimation error injection (Section 6.2).

The robustness study perturbs true cardinalities with multiplicative
log-normal noise::

    err_card = 2 ** N(mu, sigma**2) * true_card

and injects the perturbed values into the optimizer (the method of Cai et
al. [7] in the paper).  :class:`NoisyCardinalityEstimator` wraps any other
estimator and applies exactly that perturbation.  The noise is *deterministic
per sub-join* (derived from a hash of the query name and the relation
subset), so repeated estimations of the same sub-join within one run see the
same error -- matching how a real, consistently wrong estimator behaves.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.optimizer.cardinality import CardinalityEstimator, MIN_ROWS


class NoisyCardinalityEstimator(CardinalityEstimator):
    """Wraps an estimator and multiplies every estimate by ``2**N(mu, sigma)``."""

    def __init__(self, base: CardinalityEstimator, mu: float = 0.0,
                 sigma: float = 1.0, seed: int = 0):
        super().__init__(base.database)
        self.base = base
        self.mu = mu
        self.sigma = sigma
        self.seed = seed

    def estimate_rows(self, relations, filters, join_predicates, query_name="") -> float:
        true_rows = self.base.estimate_rows(relations, filters, join_predicates,
                                            query_name)
        if len(relations) <= 1 and not join_predicates:
            # Base-table scans are left unperturbed: the paper's noise model
            # targets join cardinalities, where estimation errors actually
            # originate.
            return true_rows
        noise = self._noise_factor(relations, query_name)
        return max(true_rows * noise, MIN_ROWS)

    def _noise_factor(self, relations, query_name: str) -> float:
        key = query_name + "|" + ",".join(sorted(r.alias for r in relations))
        digest = hashlib.sha256(f"{self.seed}:{key}".encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        return float(2.0 ** rng.normal(self.mu, self.sigma))
