"""The optimizer facade.

An :class:`Optimizer` bundles a cardinality estimator, a cost model, and a
join enumerator, and exposes the two operations every re-optimization
algorithm needs:

* :meth:`Optimizer.plan` -- produce a physical plan for an SPJ query;
* :meth:`Optimizer.estimate` -- return the plan's estimated cost ``C(q)`` and
  output cardinality ``S(q)``, the two inputs of QuerySplit's subquery
  selection cost functions (Table 2 of the paper).

It also counts planner invocations so the experiments can report
re-optimization overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.cardinality import CardinalityEstimator, DefaultCardinalityEstimator
from repro.optimizer.cost import CostModel
from repro.optimizer.join_enum import EnumeratorConfig, JoinEnumerator
from repro.plan.logical import SPJQuery
from repro.plan.physical import PhysicalPlan
from repro.storage.database import Database


@dataclass
class OptimizerConfig:
    """Configuration of the optimizer."""

    enumerator: EnumeratorConfig = field(default_factory=EnumeratorConfig)


class Optimizer:
    """Cost-based optimizer over the in-memory database."""

    def __init__(self, database: Database,
                 estimator: CardinalityEstimator | None = None,
                 cost_model: CostModel | None = None,
                 config: OptimizerConfig | None = None):
        self.database = database
        self.estimator = estimator or DefaultCardinalityEstimator(database)
        self.cost_model = cost_model or CostModel()
        self.config = config or OptimizerConfig()
        self.invocations = 0

    def plan(self, query: SPJQuery) -> PhysicalPlan:
        """Produce a physical plan for an SPJ query."""
        self.invocations += 1
        enumerator = JoinEnumerator(self.database, self.estimator, self.cost_model,
                                    self.config.enumerator)
        root = enumerator.plan(query)
        return PhysicalPlan(
            query_name=query.name,
            root=root,
            output_columns=query.projections,
            aggregates=query.aggregates,
        )

    def estimate(self, query: SPJQuery) -> tuple[float, float]:
        """Return ``(C(q), S(q))``: estimated plan cost and output cardinality."""
        plan = self.plan(query)
        return plan.est_cost, plan.est_rows

    def with_estimator(self, estimator: CardinalityEstimator) -> "Optimizer":
        """A new optimizer over the same database using a different estimator."""
        return Optimizer(self.database, estimator=estimator,
                         cost_model=self.cost_model, config=self.config)
