"""True-cardinality oracle and the "Optimal" estimator built on it.

The paper's *Optimal* baseline feeds the optimizer "the accurate cardinality
of every possible intermediate result".  The oracle reproduces that by
actually executing the requested sub-join against the in-memory tables
(greedy hash joins over the filtered inputs) and caching the result.  It also
backs the robustness study of Figure 10 (where controlled noise is applied to
*true* cardinalities) and the simulated learned estimators.

Executing every sub-join the DP enumerator asks about is expensive, so the
oracle memoizes per ``(query, relation-subset)`` and re-uses materialized
sub-results where possible.  The oracle's own cost is *not* charged to the
measured execution time -- it is an idealized baseline, exactly as in the
paper.
"""

from __future__ import annotations

import numpy as np

from repro.executor.joins import combine_key_pair, join_result_size, multi_key_equi_join
from repro.optimizer.cardinality import (
    CardinalityEstimator,
    DefaultCardinalityEstimator,
    MIN_ROWS,
)
from repro.plan.expressions import ColumnRef, JoinPredicate, Predicate
from repro.plan.logical import RelationRef
from repro.storage.database import Database

#: Materialized sub-results larger than this are not cached (count only).
MATERIALIZE_CACHE_CAP = 2_000_000

#: Hard cap on materialized intermediate size inside the oracle; beyond this
#: the oracle samples and scales (documented approximation).
ROW_CAP = 2_000_000


class _Component:
    """A partially joined component inside the oracle's greedy execution.

    ``num_rows`` is the (estimated-exact) cardinality of the component;
    ``sample_rows`` is the number of rows actually materialized in
    ``columns``.  The two only differ when a pathological sub-join exceeded
    the oracle's materialization cap and had to be sampled.
    """

    __slots__ = ("aliases", "columns", "num_rows", "sample_rows")

    def __init__(self, aliases: frozenset[str],
                 columns: dict[ColumnRef, np.ndarray], num_rows: int,
                 sample_rows: int | None = None):
        self.aliases = aliases
        self.columns = columns
        self.num_rows = num_rows
        self.sample_rows = num_rows if sample_rows is None else sample_rows


class TrueCardinalityOracle:
    """Computes exact output cardinalities of sub-joins by executing them.

    When given an engine-level
    :class:`~repro.executor.subplan_cache.SubplanCache`, the oracle first
    checks whether the executor already produced the requested sub-join
    somewhere (any join order, any policy): a cached chunk's row count *is*
    the true cardinality, so the probe costs nothing.
    """

    def __init__(self, database: Database, subplan_cache=None):
        self.database = database
        self.subplan_cache = subplan_cache
        if subplan_cache is not None:
            subplan_cache.bind(database)
        self._count_cache: dict[tuple[str, frozenset[str]], float] = {}
        self._mat_cache: dict[tuple[str, frozenset[str]], _Component] = {}
        #: All join predicates ever seen per query; used to over-approximate
        #: which columns to keep in cached components so that larger subsets
        #: can be built incrementally from smaller cached ones.
        self._known_preds: dict[str, set[JoinPredicate]] = {}
        self._seen_epoch = database.data_epoch
        self.executions = 0
        self.subplan_hits = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def true_rows(self, relations: tuple[RelationRef, ...],
                  filters: tuple[Predicate, ...],
                  join_predicates: tuple[JoinPredicate, ...],
                  query_name: str = "") -> float:
        """Exact number of rows produced by the sub-join."""
        epoch = self.database.data_epoch
        if epoch != self._seen_epoch:
            # The data moved underneath the memoized counts (a mutation
            # batch landed): every cached cardinality is void.
            self.reset()
            self._seen_epoch = epoch
        key = (query_name, frozenset(r.alias for r in relations))
        cached = self._count_cache.get(key)
        if cached is not None:
            return cached
        self._known_preds.setdefault(query_name, set()).update(join_predicates)
        if self.subplan_cache is not None and relations:
            from repro.executor.subplan_cache import subplan_signature

            try:
                signature = subplan_signature(relations, filters, join_predicates)
            except TypeError:  # unhashable filter literal: no probe possible
                signature = None
            rows = (self.subplan_cache.lookup_rows(signature)
                    if signature is not None else None)
            if rows is not None:
                # Answering from the executor's cache skips the oracle's own
                # materialization, so _mat_cache gets no component for this
                # subset; a later superset probe that misses the subplan
                # cache falls back to a full greedy join instead of a
                # one-join extension.  Supersets of executed subtrees are
                # normally in the subplan cache too (the executor stores
                # every node bottom-up), so the trade is worth it.
                self.subplan_hits += 1
                result = max(float(max(rows, 0)), MIN_ROWS)
                self._count_cache[key] = result
                return result
        component = (self._extend_cached(relations, filters, join_predicates, query_name)
                     or self._execute(relations, filters, join_predicates, query_name))
        rows = float(max(component.num_rows, 0))
        # Cache exactly what is returned, so repeat probes of the same
        # subset never flip between clamped and unclamped values.
        result = max(rows, MIN_ROWS) if relations else rows
        self._count_cache[key] = result
        if component.sample_rows <= MATERIALIZE_CACHE_CAP and component.columns:
            self._mat_cache[key] = component
        return result

    def reset(self) -> None:
        """Drop all cached results (call between queries to bound memory)."""
        self._count_cache.clear()
        self._mat_cache.clear()
        self._known_preds.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _extend_cached(self, relations, filters, join_predicates,
                       query_name) -> _Component | None:
        """Build the requested sub-join from a cached sub-join one join cheaper.

        The DP enumerator asks for subsets in increasing size, so the subset
        minus one relation has usually been computed (and cached) already;
        extending it by a single join is far cheaper than re-joining from
        scratch.
        """
        if len(relations) < 3:
            return None
        aliases = frozenset(r.alias for r in relations)
        for drop in relations:
            if len(drop.covered_aliases) != 1:
                continue
            rest_key = (query_name, aliases - drop.covered_aliases)
            cached = self._mat_cache.get(rest_key)
            if cached is None:
                continue
            connecting = [
                pred for pred in join_predicates
                if (pred.left.alias in drop.covered_aliases
                    and pred.right.alias in cached.aliases)
                or (pred.right.alias in drop.covered_aliases
                    and pred.left.alias in cached.aliases)
            ]
            if not connecting:
                continue
            # Make sure the cached component actually carries the join columns.
            missing = any(
                (pred.left if pred.left.alias in cached.aliases else pred.right)
                not in cached.columns
                for pred in connecting)
            if missing:
                continue
            needed = self._needed_columns_for_query(relations, query_name)
            base = self._base_component(drop, filters,
                                        needed.get(drop.alias, set()))
            self.executions += 1
            return self._join(cached, base, [], list(connecting))
        return None

    def _needed_columns_for_query(self, relations, query_name) -> dict[str, set[ColumnRef]]:
        preds = self._known_preds.get(query_name, set())
        return self._needed_columns(relations, tuple(preds))

    def _execute(self, relations, filters, join_predicates, query_name) -> _Component:
        self.executions += 1
        needed_columns = self._needed_columns_for_query(relations, query_name)
        components = [
            self._base_component(rel, filters, needed_columns.get(rel.alias, set()))
            for rel in relations
        ]
        remaining = list(join_predicates)
        # Greedily apply join predicates, always choosing the pair of
        # components with the smallest size product to delay blow-ups.
        while remaining:
            best = None
            best_size = None
            for pred in remaining:
                left_comp = _component_covering(components, pred.left.alias)
                right_comp = _component_covering(components, pred.right.alias)
                if left_comp is right_comp:
                    continue
                size = left_comp.num_rows * max(right_comp.num_rows, 1)
                if best_size is None or size < best_size:
                    best_size = size
                    best = (pred, left_comp, right_comp)
            if best is None:
                # Every remaining predicate is internal to a component; they
                # were applied when that component was formed.
                break
            pred, left_comp, right_comp = best
            joined = self._join(left_comp, right_comp, components, remaining)
            components = [c for c in components
                          if c is not left_comp and c is not right_comp]
            components.append(joined)
            remaining = [p for p in remaining
                         if _component_covering(components, p.left.alias)
                         is not _component_covering(components, p.right.alias)]
        # Any leftover components are combined by Cartesian product (counts
        # multiply; the materialized columns of the largest are kept).
        total_rows = 1
        for comp in components:
            total_rows *= comp.num_rows
        merged_aliases = frozenset().union(*(c.aliases for c in components))
        main = max(components, key=lambda c: c.num_rows)
        columns = main.columns if len(components) == 1 else {}
        return _Component(merged_aliases, columns, total_rows)

    def _base_component(self, relation: RelationRef, filters,
                        needed: set[ColumnRef]) -> _Component:
        table = self.database.table(relation.table_name)
        relation_filters = tuple(
            pred for pred in filters
            if all(alias in relation.covered_aliases for alias in pred.aliases()))

        def resolve(ref: ColumnRef) -> np.ndarray:
            # column_values decodes dictionary-encoded storage: the oracle
            # evaluates value-space predicates over real values.
            if relation.is_temp:
                return table.column_values(ref.qualified)
            return table.column_values(ref.column)

        if relation_filters:
            mask = relation_filters[0].evaluate(resolve)
            for pred in relation_filters[1:]:
                mask = mask & pred.evaluate(resolve)
            if table.has_deletes:
                mask = mask & table.valid_mask
            indices = np.nonzero(mask)[0]
        else:
            indices = table.valid_row_ids()
        columns = {ref: resolve(ref)[indices] for ref in needed}
        return _Component(relation.covered_aliases, columns, len(indices))

    def _join(self, left: _Component, right: _Component, components, remaining) -> _Component:
        # Collect every remaining predicate connecting exactly these two
        # components so multi-key joins are applied in one shot.
        preds = [
            p for p in remaining
            if ((p.left.alias in left.aliases and p.right.alias in right.aliases)
                or (p.left.alias in right.aliases and p.right.alias in left.aliases))
        ]
        left_keys, right_keys = [], []
        for pred in preds:
            if pred.left.alias in left.aliases:
                left_keys.append(left.columns[pred.left])
                right_keys.append(right.columns[pred.right])
            else:
                left_keys.append(left.columns[pred.right])
                right_keys.append(right.columns[pred.left])
        # If either input had to be sampled earlier, the sample-level match
        # count must be scaled back up to the true cardinality.
        left_factor = left.num_rows / max(left.sample_rows, 1)
        right_factor = right.num_rows / max(right.sample_rows, 1)

        # Compute the sample-level match count without materializing; if it
        # would exceed the cap, thin the left input and remember the stride.
        # The component's cardinality stays (approximately) exact while its
        # materialized sample remains bounded -- this only ever happens for
        # pathological sub-joins no sensible plan would execute.
        if len(left_keys) == 1:
            sample_left, sample_right = left_keys[0], right_keys[0]
        else:
            sample_left, sample_right = combine_key_pair(left_keys, right_keys)
        sample_matches = join_result_size(sample_left, sample_right)
        stride = 1
        if sample_matches > ROW_CAP:
            stride = int(np.ceil(sample_matches / ROW_CAP))
            left_keys = [arr[::stride] for arr in left_keys]
            left_columns_sampled = {ref: arr[::stride] for ref, arr in left.columns.items()}
        else:
            left_columns_sampled = left.columns

        left_idx, right_idx = multi_key_equi_join(left_keys, right_keys)
        columns: dict[ColumnRef, np.ndarray] = {}
        for ref, arr in left_columns_sampled.items():
            columns[ref] = arr[left_idx]
        for ref, arr in right.columns.items():
            columns[ref] = arr[right_idx]
        true_rows = int(round(sample_matches * left_factor * right_factor))
        return _Component(left.aliases | right.aliases, columns, true_rows,
                          sample_rows=len(left_idx))

    @staticmethod
    def _needed_columns(relations, join_predicates) -> dict[str, set[ColumnRef]]:
        needed: dict[str, set[ColumnRef]] = {}
        by_alias = {}
        for rel in relations:
            for alias in rel.covered_aliases:
                by_alias[alias] = rel
        for pred in join_predicates:
            for ref in (pred.left, pred.right):
                rel = by_alias.get(ref.alias)
                if rel is not None:
                    needed.setdefault(rel.alias, set()).add(ref)
        return needed


def _component_covering(components: list[_Component], alias: str) -> _Component:
    for comp in components:
        if alias in comp.aliases:
            return comp
    raise KeyError(f"no component covering alias {alias!r}")


class OracleCardinalityEstimator(CardinalityEstimator):
    """Estimator returning *true* cardinalities (the "Optimal" baseline)."""

    def __init__(self, database: Database, oracle: TrueCardinalityOracle | None = None):
        super().__init__(database)
        self.oracle = oracle or TrueCardinalityOracle(database)
        # Single-relation scans fall back to the exact filtered count as well,
        # which the oracle computes trivially.
        self._fallback = DefaultCardinalityEstimator(database)

    def estimate_rows(self, relations, filters, join_predicates, query_name="") -> float:
        if not relations:
            return MIN_ROWS
        return max(self.oracle.true_rows(relations, filters, join_predicates,
                                         query_name), MIN_ROWS)
