"""Query optimizer: cardinality estimation, cost model, and join enumeration.

This subsystem reproduces the parts of PostgreSQL's planner the paper relies
on:

* a **default cardinality estimator** built on per-column statistics and the
  independence assumption (:mod:`repro.optimizer.cardinality`);
* a **true-cardinality oracle** used for the "Optimal" baseline
  (:mod:`repro.optimizer.oracle`);
* **controlled error injection** for the robustness study of Figure 10
  (:mod:`repro.optimizer.injection`);
* **learned / pessimistic estimators** standing in for NeuroCard, DeepDB,
  MSCN, USE, and Pessimistic CE (:mod:`repro.optimizer.learned`,
  :mod:`repro.optimizer.pessimistic`);
* a **cost model** (:mod:`repro.optimizer.cost`) and a dynamic-programming
  **join enumerator** with a greedy fallback (:mod:`repro.optimizer.join_enum`);
* robust plan selection (FS) and optimality ranges (OptRange)
  (:mod:`repro.optimizer.robust`).
"""

from repro.optimizer.cardinality import CardinalityEstimator, DefaultCardinalityEstimator
from repro.optimizer.cost import CostModel, CostParameters
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.optimizer.oracle import TrueCardinalityOracle, OracleCardinalityEstimator
from repro.optimizer.injection import NoisyCardinalityEstimator
from repro.optimizer.learned import LearnedCardinalityEstimator
from repro.optimizer.pessimistic import PessimisticCardinalityEstimator

__all__ = [
    "CardinalityEstimator",
    "DefaultCardinalityEstimator",
    "CostModel",
    "CostParameters",
    "Optimizer",
    "OptimizerConfig",
    "TrueCardinalityOracle",
    "OracleCardinalityEstimator",
    "NoisyCardinalityEstimator",
    "LearnedCardinalityEstimator",
    "PessimisticCardinalityEstimator",
]
