"""Figure 14: DSB non-SPJ queries.

Exercises the non-SPJ extension of Section 3.3: aggregations and unions are
segmented out and each SPJ island is executed by the algorithm under test.
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, grid_result
from repro.bench.harness import HarnessConfig, run_workload
from repro.experiments.registry import experiment
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.dsb import DSB_NONSPJ_NUMBERS, dsb_nonspj_queries

PAPER_ARTIFACT = "Figure 14 (DSB non-SPJ queries)"

DEFAULT_ALGORITHMS = ("QuerySplit", "Default", "Reopt", "Pop", "IEF",
                      "Perron19", "FS", "OptRange")


@experiment(artifact=PAPER_ARTIFACT, shard_param="families",
            shard_universe=DSB_NONSPJ_NUMBERS)
def run(scale: float = 1.0, families: list[int] | None = None,
        algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
        index_configs: tuple[IndexConfig, ...] = (IndexConfig.PK_ONLY,
                                                  IndexConfig.PK_FK),
        timeout_seconds: float = 60.0,
        verbose: bool = True) -> ExperimentResult:
    """Run the DSB non-SPJ comparison.

    ``families`` restricts to the given DSB non-SPJ query numbers (1..10);
    ``result.data`` maps ``{index_config: {algorithm: WorkloadResult}}``.
    """
    queries = dsb_nonspj_queries()
    if families is not None:
        wanted = {f"dsb-nonspj-{n}" for n in families}
        queries = [q for q in queries if q.name in wanted]
    results: dict[str, dict[str, WorkloadResult]] = {}
    for index_config in index_configs:
        database = dbcache.build("dsb", scale=scale, index_config=index_config)
        config = HarnessConfig(timeout_seconds=timeout_seconds)
        results[index_config.value] = {
            algorithm: run_workload(database, queries, algorithm, config)
            for algorithm in algorithms
        }

    outcome = grid_result(
        name="figure14_dsb_nonspj", artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families,
                "algorithms": list(algorithms),
                "index_configs": [c.value for c in index_configs],
                "timeout_seconds": timeout_seconds},
        results=results,
        time_header="DSB non-SPJ execution time",
        title_format="Figure 14: DSB non-SPJ queries ({index} indexes)")
    if verbose:
        print(outcome.render())
    return outcome
