"""Figure 14: DSB non-SPJ queries.

Exercises the non-SPJ extension of Section 3.3: aggregations and unions are
segmented out and each SPJ island is executed by the algorithm under test.
"""

from __future__ import annotations

from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads.dsb import build_dsb_database, dsb_nonspj_queries

DEFAULT_ALGORITHMS = ("QuerySplit", "Default", "Reopt", "Pop", "IEF",
                      "Perron19", "FS", "OptRange")


def run(scale: float = 1.0,
        algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
        index_configs: tuple[IndexConfig, ...] = (IndexConfig.PK_ONLY,
                                                  IndexConfig.PK_FK),
        timeout_seconds: float = 60.0,
        verbose: bool = True) -> dict[str, dict[str, WorkloadResult]]:
    """Run the DSB non-SPJ comparison."""
    queries = dsb_nonspj_queries()
    results: dict[str, dict[str, WorkloadResult]] = {}
    for index_config in index_configs:
        database = build_dsb_database(scale=scale, index_config=index_config)
        config = HarnessConfig(timeout_seconds=timeout_seconds)
        results[index_config.value] = {
            algorithm: run_workload(database, queries, algorithm, config)
            for algorithm in algorithms
        }

    if verbose:
        for index_name, per_algorithm in results.items():
            rows = [[name, format_seconds(res.total_time), res.timeouts or ""]
                    for name, res in per_algorithm.items()]
            print(format_table(
                ["Algorithm", "DSB non-SPJ execution time", "Timeouts"], rows,
                title=f"Figure 14: DSB non-SPJ queries ({index_name} indexes)"))
            print()
    return results
