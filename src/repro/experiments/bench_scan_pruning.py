"""Zone-map scan-pruning microbenchmark (beyond the paper).

The paper's experiments all run on top of full-column scans; this
storage-level microbenchmark quantifies what the block-partitioned layer
(:mod:`repro.storage.zonemaps`) buys on the scan hot path.  It sweeps
**block size x predicate selectivity** over a synthetic events table whose
timestamp column is *clustered* (sorted, the common case for append-only
fact tables) and measures, for every cell:

* the scan wall-clock time (best of ``repeats`` runs of a COUNT(*) plan
  through the real executor);
* the zone-map pruning ratio (blocks skipped / blocks considered);
* the speedup against the identical scan with pruning disabled
  (``block_size = 0``), which is the pre-zone-map code path.

Every timed cell also cross-checks its row count against the unpruned
scan's, so a conservativeness bug can never hide behind a good speedup.
The ``--block-size`` CLI knob maps onto this module's ``block_sizes``
sweep default; see EXPERIMENTS.md for the artifact layout.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.artifacts import ExperimentResult
from repro.bench.reporting import format_table
from repro.catalog.schema import Column, Schema, TableSchema
from repro.catalog.types import DataType
from repro.executor.executor import Executor
from repro.experiments.registry import experiment
from repro.plan.expressions import Between, ColumnRef
from repro.plan.logical import AggregateSpec, RelationRef
from repro.plan.physical import PhysicalPlan, ScanNode
from repro.storage.database import Database, IndexConfig
from repro.storage.table import DataTable

PAPER_ARTIFACT = "Scan-pruning microbenchmark (beyond the paper)"

EVENTS_SCHEMA = Schema([
    TableSchema("events", [
        Column("e_id", DataType.INT),
        Column("e_ts", DataType.INT),
        Column("e_value", DataType.FLOAT),
        Column("e_category", DataType.STRING),
    ], primary_key="e_id"),
])

_CATEGORIES = ["click", "view", "purchase", "refund", "signup"]


def build_events_database(num_rows: int, block_size: int,
                          seed: int = 13) -> Database:
    """A clustered synthetic events table (``e_ts`` sorted, values random)."""
    rng = np.random.default_rng(seed)
    db = Database(EVENTS_SCHEMA, index_config=IndexConfig.PK_ONLY,
                  block_size=block_size)
    db.load_table(DataTable("events", {
        "e_id": np.arange(num_rows, dtype=np.int64),
        "e_ts": np.sort(rng.integers(0, 10 * max(num_rows, 1), num_rows)),
        "e_value": rng.normal(100.0, 25.0, num_rows),
        "e_category": rng.choice(np.array(_CATEGORIES, dtype=object), num_rows),
    }), analyze=False)
    return db


def _scan_plan(low: int, high: int) -> PhysicalPlan:
    relation = RelationRef.base("events", "events")
    filters = (Between(ColumnRef("events", "e_ts"), low, high),)
    return PhysicalPlan(
        query_name=f"scan-{low}-{high}",
        root=ScanNode(relation=relation, filters=filters),
        aggregates=(AggregateSpec("count", None, "row_count"),),
    )


def _measure(database: Database, plan: PhysicalPlan, repeats: int):
    """Best-of-``repeats`` execution: (best seconds, last ExecutionResult)."""
    executor = Executor(database)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = executor.execute(plan)
        best = min(best, time.perf_counter() - start)
    return best, result


@experiment(artifact=PAPER_ARTIFACT,
            defaults={"num_rows": 120_000, "repeats": 3})
def run(scale: float = 1.0,
        num_rows: int = 250_000,
        block_sizes: tuple[int, ...] = (0, 1024, 4096, 16384),
        selectivities: tuple[float, ...] = (0.001, 0.01, 0.1),
        repeats: int = 5,
        seed: int = 13,
        block_size: int | None = None,
        verbose: bool = True) -> ExperimentResult:
    """Sweep block size x selectivity and report pruning ratio + speedup.

    ``block_size`` (the CLI's ``--block-size``) adds one extra width to the
    sweep.  ``result.data`` is ``{"grid": grid, "speedups": speedups}``:
    ``grid`` maps ``(block_size, selectivity)`` to ``{"seconds", "rows",
    "pruning_ratio", "blocks_total", "blocks_pruned"}`` and ``speedups``
    maps the same keys (block_size > 0 only) to the time ratio against the
    pruning-off baseline at the same selectivity.
    """
    rows = max(int(round(num_rows * scale)), 1_000)
    if block_size is not None and block_size not in block_sizes:
        block_sizes = tuple(block_sizes) + (block_size,)
    if 0 not in block_sizes:
        block_sizes = (0,) + tuple(block_sizes)
    rng = np.random.default_rng(seed)

    # One predicate window per selectivity, shared across all block sizes so
    # every column of the sweep times the identical scan.
    ts_max = 10 * rows
    windows = {}
    for selectivity in selectivities:
        width = max(int(ts_max * selectivity), 1)
        low = int(rng.integers(0, max(ts_max - width, 1)))
        windows[selectivity] = (low, low + width)

    # One database for the whole sweep: the data is identical across
    # widths, only the zone maps are rebuilt per column of the grid.
    database = build_events_database(rows, 0, seed=seed)
    events = database.table("events")
    grid: dict[tuple[int, float], dict] = {}
    for width in block_sizes:
        events.build_zone_maps(width)
        for selectivity, (low, high) in windows.items():
            seconds, result = _measure(database, _scan_plan(low, high), repeats)
            grid[(width, selectivity)] = {
                "seconds": seconds,
                "rows": int(result.table.column("row_count")[0]),
                "pruning_ratio": result.scan_pruning_ratio,
                "blocks_total": result.scan_blocks_total,
                "blocks_pruned": result.scan_blocks_pruned,
            }

    # Cross-check: pruning must never change the selected row count.
    for (width, selectivity), cell in grid.items():
        baseline = grid[(0, selectivity)]
        if cell["rows"] != baseline["rows"]:
            raise AssertionError(
                f"pruned scan (block_size={width}, "
                f"selectivity={selectivity}) selected {cell['rows']} rows, "
                f"unpruned scan selected {baseline['rows']}")

    speedups = {
        (width, selectivity): grid[(0, selectivity)]["seconds"] / cell["seconds"]
        for (width, selectivity), cell in grid.items()
        if width != 0 and cell["seconds"] > 0
    }

    headers = ["block size", "selectivity", "rows", "pruned blocks",
               "pruning ratio", "time", "speedup vs off"]
    table_rows = []
    for (width, selectivity), cell in sorted(grid.items()):
        speedup = speedups.get((width, selectivity))
        table_rows.append([
            width or "off", f"{selectivity:.2%}", cell["rows"],
            f"{cell['blocks_pruned']}/{cell['blocks_total']}" if width else "-",
            f"{cell['pruning_ratio']:.1%}" if width else "-",
            f"{cell['seconds'] * 1e3:.3f} ms",
            f"{speedup:.2f}x" if speedup else "-",
        ])
    tables = [format_table(headers, table_rows,
                           title=f"Zone-map scan pruning ({rows} clustered "
                                 f"rows, best of {repeats})")]

    selective = [v for (_, s), v in speedups.items() if s <= 0.01]
    summary = {
        "num_rows": rows,
        "speedups": {f"{bs}/{s}": v for (bs, s), v in speedups.items()},
        "pruning_ratios": {f"{bs}/{s}": cell["pruning_ratio"]
                           for (bs, s), cell in grid.items() if bs},
        "best_speedup_at_1pct": max(selective) if selective else None,
    }
    outcome = ExperimentResult(
        name="bench_scan_pruning",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "num_rows": num_rows,
                "block_sizes": list(block_sizes),
                "selectivities": list(selectivities),
                "repeats": repeats, "seed": seed,
                "block_size": block_size},
        data={"grid": grid, "speedups": speedups},
        workloads={},
        summary=summary,
        tables=tables,
    )
    if verbose:
        print(outcome.render())
    return outcome
