"""Re-optimization under statistics drift (beyond the paper).

Every other experiment plans against statistics collected on the exact
data being queried; estimation error is *noise* (figure10 perturbs it
synthetically).  This experiment makes the error *systematic*: a private
star-schema database whose fact table drifts -- appended rows come from
shifting value windows, a rotating foreign-key hot spot, and a growing
string dictionary (:mod:`repro.dynamic.drift`) -- while the optimizer's
statistics age according to a re-ANALYZE policy
(:mod:`repro.dynamic.staleness`).

The sweep covers ``drift rate x re-ANALYZE policy x algorithm``.  Every
cell builds its **own** database from the same seed (the shared
``dbcache`` is deliberately bypassed: mutations must not leak between
cells) and replays the *identical* drift batches and the *identical*
query stream, so cells differ only in when statistics are refreshed and
which planner consumes them.  Queries are pre-generated once per drift
rate from a reference database that is drifted in lockstep and
re-ANALYZEd after every step -- the generator samples filter literals
from statistics, so generating against always-fresh statistics keeps the
workload chasing the live data (queries over the drifted value windows
and the current hot keys) without the policy under test influencing
which queries it gets asked.

Staleness accounting rules (also in EXPERIMENTS.md): the per-query
estimate is what the **current** (possibly stale) statistics imply for
the query's full join at plan time; the actual is the executed full-join
cardinality (the last iteration's ``result_rows``); q-error clamps both
to >= 1 row.  ANALYZE cost is *not* folded into query seconds -- it is
reported separately as ``reanalyzes`` so the policy's price stays
visible next to its benefit.

Headline (tracked by ``tools/microbench_trend.py``):

* ``triggered_qerror_improvement`` -- mean q-error of the static
  optimizer under ``never`` divided by under ``triggered`` at the
  highest drift rate (> 1 means feedback-triggered re-ANALYZE recovered
  estimation quality);
* ``reopt_advantage_under_drift`` -- static-optimizer seconds divided by
  the best re-optimizer's seconds, both planning on never-refreshed
  statistics at the highest drift rate (> 1 means run-time
  re-optimization rescued what stale statistics broke -- the paper's
  thesis transplanted to the dynamic-data setting).
"""

from __future__ import annotations

import numpy as np

from repro.bench.artifacts import ExperimentResult, base_summary
from repro.bench.harness import HarnessConfig, run_query
from repro.bench.reporting import format_seconds, format_table
from repro.catalog.schema import Column, ForeignKey, Schema, TableSchema
from repro.catalog.types import DataType
from repro.dynamic import DriftConfig, DriftStream, StalenessController
from repro.experiments.registry import experiment
from repro.report import WorkloadResult
from repro.storage.database import Database, IndexConfig
from repro.storage.table import DataTable
from repro.workloads.datagen import (
    categorical,
    sequential_ids,
    skewed_fanout_choice,
    string_pool,
)
from repro.workloads.sqlgen import (
    AggregateSamplerConfig,
    JoinSamplerConfig,
    PredicateSamplerConfig,
    RandomQueryGenerator,
)

PAPER_ARTIFACT = "Stale-statistics microbenchmark (beyond the paper)"

#: The drifting fact table every stream targets.
FACT_TABLE = "events"

#: Base table sizes at scale 1.0.
_BASE_SIZES = {"dim": 500, "users": 800, "events": 12_000, "actions": 6_000}

_SCHEMA = Schema([
    TableSchema("dim",
                [Column("id", DataType.INT),
                 Column("category", DataType.STRING),
                 Column("rank", DataType.INT)],
                primary_key="id"),
    TableSchema("users",
                [Column("id", DataType.INT),
                 Column("region", DataType.STRING),
                 Column("signup", DataType.INT)],
                primary_key="id"),
    # Two fact tables sharing both dimensions: with fk_only=False the
    # generator also samples the expanding fk-fk joins (events.dim_id =
    # actions.dim_id) whose misestimation under drift the re-optimizers
    # are supposed to catch mid-query.
    TableSchema("events",
                [Column("id", DataType.INT),
                 Column("dim_id", DataType.INT),
                 Column("user_id", DataType.INT),
                 Column("value", DataType.INT),
                 Column("tag", DataType.STRING)],
                primary_key="id",
                foreign_keys=[ForeignKey("dim_id", "dim", "id"),
                              ForeignKey("user_id", "users", "id")]),
    TableSchema("actions",
                [Column("id", DataType.INT),
                 Column("dim_id", DataType.INT),
                 Column("user_id", DataType.INT),
                 Column("amount", DataType.INT)],
                primary_key="id",
                foreign_keys=[ForeignKey("dim_id", "dim", "id"),
                              ForeignKey("user_id", "users", "id")]),
])


def build_drift_database(scale: float = 1.0, seed: int = 7,
                         block_size: int | None = None) -> Database:
    """A **private** star-schema database for drift experiments.

    Never cached: callers mutate it, so each cell must own its instance
    (``dbcache`` would hand the same object to every caller).
    """
    rng = np.random.default_rng(seed)
    sizes = {name: max(int(round(count * scale)), 8)
             for name, count in _BASE_SIZES.items()}
    kwargs = {} if block_size is None else {"block_size": block_size}
    db = Database(_SCHEMA, index_config=IndexConfig.PK_FK, **kwargs)

    n_dim = sizes["dim"]
    db.load_table(DataTable("dim", {
        "id": sequential_ids(n_dim),
        "category": categorical(
            rng, ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"],
            [0.3, 0.25, 0.18, 0.12, 0.09, 0.06], n_dim),
        "rank": rng.permutation(n_dim).astype(np.int64),
    }))

    n_users = sizes["users"]
    db.load_table(DataTable("users", {
        "id": sequential_ids(n_users),
        "region": categorical(
            rng, ["na", "eu", "apac", "latam", "mea"],
            [0.35, 0.28, 0.2, 0.1, 0.07], n_users),
        "signup": rng.integers(2000, 2021, n_users),
    }))

    n_events = sizes["events"]
    db.load_table(DataTable("events", {
        "id": sequential_ids(n_events),
        "dim_id": (1 + skewed_fanout_choice(rng, n_dim, n_events,
                                            sigma=1.5)).astype(np.int64),
        "user_id": (1 + skewed_fanout_choice(rng, n_users, n_events,
                                             sigma=1.2)).astype(np.int64),
        "value": rng.integers(0, 1000, n_events),
        "tag": string_pool("tag", 200)[rng.integers(0, 200, n_events)],
    }))

    n_actions = sizes["actions"]
    db.load_table(DataTable("actions", {
        "id": sequential_ids(n_actions),
        "dim_id": (1 + skewed_fanout_choice(rng, n_dim, n_actions,
                                            sigma=1.5)).astype(np.int64),
        "user_id": (1 + skewed_fanout_choice(rng, n_users, n_actions,
                                             sigma=1.2)).astype(np.int64),
        "amount": rng.integers(0, 500, n_actions),
    }))
    return db


def _drift_config(drift_rate: float, initial_rows: int) -> DriftConfig:
    """Append ``drift_rate`` of the initial fact size per step."""
    return DriftConfig(fact_table=FACT_TABLE,
                       append_rows=max(1, int(round(drift_rate * initial_rows))),
                       delete_fraction=0.02,
                       value_drift=0.3,
                       new_string_rate=0.3)


def _make_generator(database: Database, seed: int) -> RandomQueryGenerator:
    """Query sampler used by every cell (via the reference database).

    ``fk_only=False`` admits the expanding fk-fk joins; the point-drop
    knob discards most near-single-row equality lookups so queries touch
    enough rows for estimation error to change join orders.
    """
    return RandomQueryGenerator(
        database, seed=seed,
        join_config=JoinSamplerConfig(max_joins=3, min_joins=1, fk_only=False),
        predicate_config=PredicateSamplerConfig(
            max_predicates=2, point_drop_rate=0.75),
        aggregate_config=AggregateSamplerConfig(max_aggregates=1),
        name_prefix="drift")


def _pregenerate_queries(scale: float, drift_rate: float, steps: int,
                         queries_per_step: int, seed: int) -> list[list]:
    """The frozen per-step query lists every cell of ``drift_rate`` replays.

    A reference database is drifted in lockstep with the cells and
    re-ANALYZEd after every step, so the sampled filter literals chase
    the live data; the resulting :class:`~repro.plan.logical.Query`
    objects embed their literals and are independent of any database.
    """
    reference = build_drift_database(scale=scale, seed=seed)
    stream = DriftStream(
        reference,
        _drift_config(drift_rate, reference.table(FACT_TABLE).num_rows),
        seed=seed + 1)
    generator = _make_generator(reference, seed=seed + 2)
    per_step: list[list] = []
    for step in range(steps):
        stream.apply(step)
        reference.analyze(FACT_TABLE)
        per_step.append(generator.generate(
            queries_per_step, start=step * queries_per_step))
    return per_step


@experiment(artifact=PAPER_ARTIFACT,
            defaults={"scale": 0.25, "steps": 3, "queries_per_step": 4})
def run(scale: float = 1.0,
        drift_rates: tuple[float, ...] = (0.1, 0.5),
        policies: tuple[str, ...] = ("never", "periodic", "triggered"),
        algorithms: tuple[str, ...] = ("Default", "QuerySplit", "Reopt"),
        steps: int = 4,
        queries_per_step: int = 6,
        period: int = 2,
        q_error_threshold: float = 4.0,
        timeout_seconds: float = 20.0,
        seed: int = 7,
        verbose: bool = True) -> ExperimentResult:
    """Sweep drift rate x re-ANALYZE policy x algorithm over one stream.

    ``result.data`` is ``{"cells": cells, "headline": headline}``:
    ``cells`` maps ``(drift_rate, policy, algorithm)`` to the cell's
    metrics (``seconds``, ``mean_q_error``, ``p95_q_error``,
    ``reanalyzes``, ``timeouts``, ``final_epoch``); ``headline`` holds
    ``triggered_qerror_improvement`` and ``reopt_advantage_under_drift``
    (see the module docstring).  Per-cell workloads are flattened under
    ``"d{rate}/{policy}/{algorithm}"`` keys.
    """
    cells: dict[tuple[float, str, str], dict] = {}
    workloads: dict[str, WorkloadResult] = {}
    config = HarnessConfig(timeout_seconds=timeout_seconds)
    # Per (drift_rate, policy): {query_name: final_rows} of the first
    # algorithm, cross-checked against the others (same drift + same
    # queries must yield identical results whatever the planner does).
    for drift_rate in drift_rates:
        step_queries = _pregenerate_queries(scale, drift_rate, steps,
                                            queries_per_step, seed)
        for policy in policies:
            expected_rows: dict[str, int] = {}
            for algorithm in algorithms:
                database = build_drift_database(scale=scale, seed=seed)
                stream = DriftStream(
                    database,
                    _drift_config(drift_rate,
                                  database.table(FACT_TABLE).num_rows),
                    seed=seed + 1)
                controller = StalenessController(
                    database, policy=policy, period=period,
                    q_error_threshold=q_error_threshold)
                result = WorkloadResult(algorithm=algorithm)
                for step in range(steps):
                    stream.apply(step)
                    for query in step_queries[step]:
                        report = run_query(database, query, algorithm, config)
                        result.reports.append(report)
                        actual = (report.iterations[-1].result_rows
                                  if report.iterations else report.final_rows)
                        controller.observe(query, actual)
                        if not report.timed_out:
                            previous = expected_rows.setdefault(
                                query.name, report.final_rows)
                            if previous != report.final_rows:
                                raise AssertionError(
                                    f"cell (drift={drift_rate}, {policy}, "
                                    f"{algorithm}): query {query.name} "
                                    f"returned {report.final_rows} rows, "
                                    f"another algorithm got {previous}")
                controller.close()
                cells[(drift_rate, policy, algorithm)] = {
                    "seconds": result.total_time,
                    "mean_q_error": controller.mean_q_error,
                    "p95_q_error": controller.p95_q_error,
                    "reanalyzes": controller.reanalyze_count,
                    "timeouts": result.timeouts,
                    "final_epoch": database.table_epoch(FACT_TABLE),
                }
                workloads[f"d{drift_rate:g}/{policy}/{algorithm}"] = result

    # ------------------------------------------------------------------
    # Headline: does re-ANALYZE fix estimates, does re-opt fix plans?
    # ------------------------------------------------------------------
    top = max(drift_rates)
    static = algorithms[0]
    reopt_names = [a for a in algorithms if a != static]
    never_q = cells[(top, "never", static)]["mean_q_error"]
    stale_cells = {a: cells[(top, "never", a)] for a in algorithms}
    best_reopt = min(reopt_names,
                     key=lambda a: stale_cells[a]["seconds"])
    headline = {
        "drift_rate": top,
        "never_mean_q_error": never_q,
        "static_seconds_stale": stale_cells[static]["seconds"],
        "best_reopt": best_reopt,
        "best_reopt_seconds_stale": stale_cells[best_reopt]["seconds"],
        "reopt_advantage_under_drift":
            stale_cells[static]["seconds"]
            / max(stale_cells[best_reopt]["seconds"], 1e-9),
    }
    if "triggered" in policies:
        triggered_q = cells[(top, "triggered", static)]["mean_q_error"]
        headline["triggered_mean_q_error"] = triggered_q
        headline["triggered_qerror_improvement"] = (
            never_q / max(triggered_q, 1.0))

    headers = ["drift", "policy", "algorithm", "seconds", "mean q-err",
               "p95 q-err", "analyzes", "timeouts"]
    rows = [[f"{d:g}", policy, algorithm,
             format_seconds(cell["seconds"]),
             f"{cell['mean_q_error']:.2f}",
             f"{cell['p95_q_error']:.2f}",
             cell["reanalyzes"], cell["timeouts"] or ""]
            for (d, policy, algorithm), cell in sorted(cells.items())]
    tables = [format_table(
        headers, rows,
        title=f"Stale statistics under drift ({steps} steps x "
              f"{queries_per_step} queries, period={period}, "
              f"threshold={q_error_threshold:g})")]

    summary = dict(base_summary(workloads))
    summary["cells"] = {f"d{d:g}/{policy}/{algorithm}": cell
                        for (d, policy, algorithm), cell in cells.items()}
    summary.update(headline)
    outcome = ExperimentResult(
        name="bench_stale_stats",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "drift_rates": drift_rates,
                "policies": policies, "algorithms": algorithms,
                "steps": steps, "queries_per_step": queries_per_step,
                "period": period, "q_error_threshold": q_error_threshold,
                "timeout_seconds": timeout_seconds, "seed": seed},
        data={"cells": cells, "headline": headline},
        workloads=workloads,
        summary=summary,
        tables=tables,
    )
    if verbose:
        print(outcome.render())
    return outcome
