"""Table 4: materialization frequency and memory usage of re-optimization.

For every re-optimization algorithm the paper reports (a) the average memory
used per materialized subquery, (b) the average number of materializations
per query, and (c) the total materialization memory per query.  QuerySplit
has the smallest per-subquery footprint (FK-Center keeps subqueries
non-expanding) and the second-lowest materialization frequency (only Reopt's
over-conservative trigger materializes less).
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, base_summary
from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_table
from repro.experiments.registry import experiment
from repro.report import WorkloadResult
from repro.reopt.registry import REOPT_ALGORITHMS
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.job_queries import JOB_FAMILY_NUMBERS, job_queries

PAPER_ARTIFACT = "Table 4 (materialization frequency and memory)"

MB = 1024.0 * 1024.0


@experiment(artifact=PAPER_ARTIFACT, shard_param="families",
            shard_universe=JOB_FAMILY_NUMBERS)
def run(scale: float = 1.0, families: list[int] | None = None,
        algorithms: tuple[str, ...] = REOPT_ALGORITHMS,
        timeout_seconds: float = 30.0,
        verbose: bool = True) -> ExperimentResult:
    """Compute the Table 4 metrics.

    ``result.data`` maps each algorithm to its metric dict (average memory
    per subquery, materialization frequency, total memory per query).
    """
    database = dbcache.build("imdb", scale=scale, index_config=IndexConfig.PK_FK)
    queries = job_queries(families=families)
    config = HarnessConfig(timeout_seconds=timeout_seconds)

    workloads: dict[str, WorkloadResult] = {}
    metrics: dict[str, dict[str, float]] = {}
    for algorithm in algorithms:
        result = run_workload(database, queries, algorithm, config)
        workloads[algorithm] = result
        metrics[algorithm] = _metrics(result)

    rows = [
        [name,
         f"{m['avg_mem_per_subquery_mb']:.2f}",
         f"{m['avg_materializations_per_query']:.2f}",
         f"{m['total_mem_per_query_mb']:.2f}"]
        for name, m in metrics.items()
    ]
    summary = base_summary(workloads)
    summary["metrics"] = metrics
    outcome = ExperimentResult(
        name="table4_materialization",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families,
                "algorithms": list(algorithms),
                "timeout_seconds": timeout_seconds},
        data=metrics,
        workloads=workloads,
        summary=summary,
        tables=[format_table(
            ["Algorithm", "Avg mem / subquery (MB)", "Avg mat. freq / query",
             "Total mem / query (MB)"],
            rows, title="Table 4: materialization frequency and memory usage")],
    )
    if verbose:
        print(outcome.render())
    return outcome


def _metrics(result: WorkloadResult) -> dict[str, float]:
    num_queries = max(len(result.reports), 1)
    total_materializations = sum(r.materializations for r in result.reports)
    total_bytes = sum(r.materialized_bytes for r in result.reports)
    return {
        "avg_mem_per_subquery_mb": (total_bytes / total_materializations / MB
                                    if total_materializations else 0.0),
        "avg_materializations_per_query": total_materializations / num_queries,
        "total_mem_per_query_mb": total_bytes / num_queries / MB,
        "total_time_s": result.total_time,
    }
