"""Compiled-scan microbenchmark (beyond the paper).

The companion to :mod:`repro.experiments.bench_scan_pruning` for the
compiled-scan hot-path work: fused kernels + dictionary codes + semijoin.  Zone maps accelerate *which blocks* a scan reads; the three
layers measured here accelerate *how the surviving rows are filtered*:

* **dict** -- string predicates evaluated over ``int32`` dictionary codes
  instead of Python-object comparisons (:mod:`repro.storage.dictionary`);
* **fused** -- the scan conjunction compiled into one selectivity-ordered
  pass over a shrinking candidate set (:class:`PredicateCompiler
  <repro.executor.kernels.PredicateCompiler>`) instead of one full-column
  pass per predicate;
* **semijoin** -- a hash join's build-side key set pushed into the probe
  scan as a membership filter (:mod:`repro.executor.kernels`), reported as
  its own scenario.

The sweep runs four scan scenarios (string equality, string IN, and 3- and
4-predicate mixed-dtype conjunctions) under four engine modes --
``baseline`` (both layers off, the pre-PR code path), ``dict``, ``fused``,
and ``full`` -- plus the semijoin join scenario with pushdown on/off.
Every cell cross-checks its row count against the baseline mode, so a
correctness bug can never hide behind a good speedup.  Zone maps are
disabled (``block_size=0``) throughout: the predicate columns are
unclustered, and this benchmark isolates the per-row filtering cost.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.artifacts import ExperimentResult
from repro.bench.reporting import format_table
from repro.catalog.schema import Column, ForeignKey, Schema, TableSchema
from repro.catalog.types import DataType
from repro.executor.executor import Executor
from repro.experiments.registry import experiment
from repro.plan.expressions import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    JoinPredicate,
    StringPrefix,
)
from repro.plan.logical import AggregateSpec, RelationRef
from repro.plan.physical import JoinNode, PhysicalPlan, ScanNode
from repro.storage.database import Database, IndexConfig
from repro.storage.table import DataTable

PAPER_ARTIFACT = "Compiled-scan microbenchmark (beyond the paper)"

EVENTS_SCHEMA = Schema([
    TableSchema("users", [
        Column("u_id", DataType.INT),
        Column("u_seg", DataType.STRING),
    ], primary_key="u_id"),
    TableSchema("events", [
        Column("e_id", DataType.INT),
        Column("e_a", DataType.INT),
        Column("e_b", DataType.INT),
        Column("e_c", DataType.FLOAT),
        Column("e_cat", DataType.STRING),
        Column("e_sku", DataType.STRING),
        Column("e_user", DataType.INT),
    ], primary_key="e_id",
        foreign_keys=[ForeignKey("e_user", "users", "u_id")]),
])

NUM_USERS = 2000
NUM_SEGMENTS = 10
NUM_CATEGORIES = 64
NUM_SKUS = 4000


def build_events_database(num_rows: int, dict_encode: bool,
                          seed: int = 13, block_size: int = 0) -> Database:
    """Unclustered synthetic events + a small users dimension."""
    rng = np.random.default_rng(seed)
    db = Database(EVENTS_SCHEMA, index_config=IndexConfig.NONE,
                  block_size=block_size, dict_encode=dict_encode)
    db.load_table(DataTable("users", {
        "u_id": np.arange(1, NUM_USERS + 1, dtype=np.int64),
        "u_seg": np.array([f"seg_{i % NUM_SEGMENTS}" for i in range(NUM_USERS)],
                          dtype=object),
    }), analyze=False)
    categories = np.array([f"cat_{i:02d}" for i in range(NUM_CATEGORIES)],
                          dtype=object)
    skus = np.array([f"sku_{i:05d}" for i in range(NUM_SKUS)], dtype=object)
    db.load_table(DataTable("events", {
        "e_id": np.arange(num_rows, dtype=np.int64),
        "e_a": rng.integers(0, 1000, num_rows),
        "e_b": rng.integers(0, 100, num_rows),
        "e_c": rng.normal(0.0, 1.0, num_rows),
        "e_cat": rng.choice(categories, num_rows),
        "e_sku": rng.choice(skus, num_rows),
        "e_user": rng.integers(1, NUM_USERS + 1, num_rows),
    }), analyze=False)
    return db


def _ref(column: str) -> ColumnRef:
    return ColumnRef("events", column)


#: Scenario name -> pushed-down scan conjunction.  ``string_eq`` and
#: ``string_in`` isolate the dictionary layer (object-comparison cost);
#: ``multi3``/``multi4`` isolate the fused layer (a very selective leading
#: predicate followed by wide ones, so ordering + candidate-set shrinking
#: pays); ``multi4`` mixes both with a string prefix.
SCENARIOS: dict[str, tuple] = {
    "string_eq": (Comparison(_ref("e_cat"), "=", "cat_07"),),
    "string_in": (InList(_ref("e_cat"), ("cat_03", "cat_11", "cat_42")),),
    "multi3": (Comparison(_ref("e_a"), "=", 7),
               Comparison(_ref("e_c"), ">", 0.0),
               Comparison(_ref("e_b"), "<=", 80)),
    "multi4": (Comparison(_ref("e_a"), "<", 25),
               StringPrefix(_ref("e_sku"), "sku_00"),
               Between(_ref("e_b"), 10, 90),
               Comparison(_ref("e_c"), ">", -1.0)),
}

#: Engine mode -> (dict_encode, fused).  ``baseline`` is the pre-PR path.
MODES: dict[str, tuple[bool, bool]] = {
    "baseline": (False, False),
    "dict": (True, False),
    "fused": (False, True),
    "full": (True, True),
}


def _scan_plan(name: str, filters: tuple) -> PhysicalPlan:
    return PhysicalPlan(
        query_name=f"compiled-scan-{name}",
        root=ScanNode(relation=RelationRef.base("events", "events"),
                      filters=filters),
        aggregates=(AggregateSpec("count", None, "row_count"),),
    )


def _semijoin_plan() -> PhysicalPlan:
    """events |x| (users WHERE u_seg = 'seg_3'): hash join, FK probe side."""
    probe = ScanNode(relation=RelationRef.base("events", "events"))
    build = ScanNode(relation=RelationRef.base("users", "users"),
                     filters=(Comparison(ColumnRef("users", "u_seg"),
                                         "=", "seg_3"),))
    root = JoinNode(left=probe, right=build,
                    predicates=(JoinPredicate(ColumnRef("events", "e_user"),
                                              ColumnRef("users", "u_id")),))
    return PhysicalPlan(
        query_name="compiled-scan-semijoin", root=root,
        aggregates=(AggregateSpec("count", None, "row_count"),),
    )


def _measure(executor: Executor, plan: PhysicalPlan, repeats: int):
    """Best-of-``repeats`` execution: (best seconds, last ExecutionResult)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = executor.execute(plan)
        best = min(best, time.perf_counter() - start)
    return best, result


@experiment(artifact=PAPER_ARTIFACT,
            defaults={"num_rows": 120_000, "repeats": 3})
def run(scale: float = 1.0,
        num_rows: int = 250_000,
        repeats: int = 5,
        seed: int = 13,
        verbose: bool = True) -> ExperimentResult:
    """Sweep scenario x mode and report speedups over the baseline mode.

    ``result.data`` is ``{"grid": grid, "speedups": speedups, "semijoin":
    semijoin}``: ``grid`` maps ``(scenario, mode)`` to ``{"seconds",
    "rows", "fused_rows_touched", "dict_predicates"}``, ``speedups`` maps
    the same keys (mode != baseline) to the time ratio against baseline,
    and ``semijoin`` reports the join scenario with pushdown off/on.
    """
    rows = max(int(round(num_rows * scale)), 1_000)

    databases = {False: build_events_database(rows, dict_encode=False,
                                              seed=seed),
                 True: build_events_database(rows, dict_encode=True,
                                             seed=seed)}

    grid: dict[tuple[str, str], dict] = {}
    for scenario, filters in SCENARIOS.items():
        plan = _scan_plan(scenario, filters)
        for mode, (dict_encode, fused) in MODES.items():
            executor = Executor(databases[dict_encode], fused=fused)
            seconds, result = _measure(executor, plan, repeats)
            grid[(scenario, mode)] = {
                "seconds": seconds,
                "rows": int(result.table.column("row_count")[0]),
                "fused_rows_touched": result.fused_rows_touched,
                "dict_predicates": result.dict_predicates,
            }

    # Cross-check: no acceleration layer may change the selected row count.
    for (scenario, mode), cell in grid.items():
        baseline = grid[(scenario, "baseline")]
        if cell["rows"] != baseline["rows"]:
            raise AssertionError(
                f"compiled scan ({scenario}, mode={mode}) selected "
                f"{cell['rows']} rows, baseline selected {baseline['rows']}")

    speedups = {
        (scenario, mode): grid[(scenario, "baseline")]["seconds"] / cell["seconds"]
        for (scenario, mode), cell in grid.items()
        if mode != "baseline" and cell["seconds"] > 0
    }

    # Semijoin pushdown scenario (reported, not part of the mode grid).
    semijoin = {}
    plan = _semijoin_plan()
    for label, enabled in (("off", False), ("on", True)):
        executor = Executor(databases[True], semijoin=enabled)
        seconds, result = _measure(executor, plan, repeats)
        semijoin[label] = {
            "seconds": seconds,
            "rows": int(result.table.column("row_count")[0]),
            "semijoin_filters": result.semijoin_filters,
            "semijoin_pruned_rows": result.semijoin_pruned_rows,
        }
    if semijoin["on"]["rows"] != semijoin["off"]["rows"]:
        raise AssertionError(
            f"semijoin pushdown changed the join result: "
            f"{semijoin['on']['rows']} vs {semijoin['off']['rows']} rows")
    semijoin["speedup"] = (semijoin["off"]["seconds"] / semijoin["on"]["seconds"]
                           if semijoin["on"]["seconds"] > 0 else None)

    headers = ["scenario", "mode", "rows", "time", "speedup vs baseline"]
    table_rows = []
    for scenario in SCENARIOS:
        for mode in MODES:
            cell = grid[(scenario, mode)]
            speedup = speedups.get((scenario, mode))
            table_rows.append([
                scenario, mode, cell["rows"],
                f"{cell['seconds'] * 1e3:.3f} ms",
                f"{speedup:.2f}x" if speedup else "-",
            ])
    table_rows.append([
        "semijoin", "on vs off", semijoin["on"]["rows"],
        f"{semijoin['on']['seconds'] * 1e3:.3f} ms",
        f"{semijoin['speedup']:.2f}x" if semijoin["speedup"] else "-",
    ])
    tables = [format_table(headers, table_rows,
                           title=f"Compiled scan kernels ({rows} rows, "
                                 f"best of {repeats})")]

    summary = {
        "num_rows": rows,
        "speedups": {f"{scenario}/{mode}": value
                     for (scenario, mode), value in speedups.items()},
        "semijoin_speedup": semijoin["speedup"],
        "semijoin_pruned_rows": semijoin["on"]["semijoin_pruned_rows"],
    }
    outcome = ExperimentResult(
        name="bench_compiled_scan",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "num_rows": num_rows,
                "repeats": repeats, "seed": seed},
        data={"grid": grid, "speedups": speedups, "semijoin": semijoin},
        workloads={},
        summary=summary,
        tables=tables,
    )
    if verbose:
        print(outcome.render())
    return outcome
