"""Figure 10: robustness of QuerySplit's policies to cardinality-estimation noise.

True cardinalities are perturbed with multiplicative noise
``err_card = 2**N(mu, sigma) * true_card`` and injected into the optimizer
that drives QuerySplit.  The paper sweeps the noise width for every QSA / SSA
policy combination and observes that FK-Center + Phi4 stays robust up to
sigma = 2 while PK-Center degrades quickly and everything breaks down at
sigma = 4.

Computing oracle-exact cardinalities for every sub-join is expensive, so by
default the noise is applied on top of the statistics-based estimator (whose
errors the noise dwarfs); set ``use_oracle=True`` for the paper-exact setup.
"""

from __future__ import annotations

from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.core.qsa import QSAStrategy
from repro.core.ssa import CostFunction
from repro.optimizer.cardinality import DefaultCardinalityEstimator
from repro.optimizer.injection import NoisyCardinalityEstimator
from repro.optimizer.oracle import OracleCardinalityEstimator
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads.imdb import build_imdb_database
from repro.workloads.job_queries import job_queries

DEFAULT_SIGMAS = (0.5, 1.0, 2.0, 4.0)
DEFAULT_POLICIES = (
    (QSAStrategy.FK_CENTER, CostFunction.PHI4),
    (QSAStrategy.PK_CENTER, CostFunction.PHI4),
    (QSAStrategy.MIN_SUBQUERY, CostFunction.PHI4),
    (QSAStrategy.FK_CENTER, CostFunction.PHI1),
    (QSAStrategy.FK_CENTER, CostFunction.PHI5),
)


def run(scale: float = 1.0, families: list[int] | None = None,
        sigmas: tuple[float, ...] = DEFAULT_SIGMAS,
        mu: float = 0.0,
        policies: tuple[tuple[QSAStrategy, CostFunction], ...] = DEFAULT_POLICIES,
        use_oracle: bool = False,
        seed: int = 1,
        timeout_seconds: float = 30.0,
        verbose: bool = True) -> dict[tuple[str, str, float], WorkloadResult]:
    """Run the robustness sweep; returns results keyed by (qsa, ssa, sigma)."""
    database = build_imdb_database(scale=scale, index_config=IndexConfig.PK_FK)
    queries = job_queries(families=families)

    results: dict[tuple[str, str, float], WorkloadResult] = {}
    for sigma in sigmas:
        def estimator_factory(db, _sigma=sigma):
            base = (OracleCardinalityEstimator(db) if use_oracle
                    else DefaultCardinalityEstimator(db))
            return NoisyCardinalityEstimator(base, mu=mu, sigma=_sigma, seed=seed)

        for strategy, cost_function in policies:
            config = HarnessConfig(
                timeout_seconds=timeout_seconds,
                qsa_strategy=strategy,
                cost_function=cost_function,
                estimator_factory=estimator_factory,
            )
            result = run_workload(database, queries, "QuerySplit", config)
            results[(strategy.value, cost_function.value, sigma)] = result

    if verbose:
        headers = ["Policy (QSA, SSA)"] + [f"sigma={s}" for s in sigmas]
        rows = []
        for strategy, cost_function in policies:
            row = [f"{strategy.value} + {cost_function.value}"]
            for sigma in sigmas:
                result = results[(strategy.value, cost_function.value, sigma)]
                marker = " (TO)" if result.timeouts else ""
                row.append(format_seconds(result.total_time) + marker)
            rows.append(row)
        print(format_table(headers, rows,
                           title=f"Figure 10: JOB time under CE noise (mu={mu})"))
    return results
