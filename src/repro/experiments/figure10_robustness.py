"""Figure 10: robustness of QuerySplit's policies to cardinality-estimation noise.

True cardinalities are perturbed with multiplicative noise
``err_card = 2**N(mu, sigma) * true_card`` and injected into the optimizer
that drives QuerySplit.  The paper sweeps the noise width for every QSA / SSA
policy combination and observes that FK-Center + Phi4 stays robust up to
sigma = 2 while PK-Center degrades quickly and everything breaks down at
sigma = 4.

Computing oracle-exact cardinalities for every sub-join is expensive, so by
default the noise is applied on top of the statistics-based estimator (whose
errors the noise dwarfs); set ``use_oracle=True`` for the paper-exact setup.
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, base_summary
from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.core.qsa import QSAStrategy
from repro.core.ssa import CostFunction
from repro.experiments.registry import experiment
from repro.optimizer.cardinality import DefaultCardinalityEstimator
from repro.optimizer.injection import NoisyCardinalityEstimator
from repro.optimizer.oracle import OracleCardinalityEstimator
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.job_queries import JOB_FAMILY_NUMBERS, job_queries

PAPER_ARTIFACT = "Figure 10 (CE-noise robustness)"

DEFAULT_SIGMAS = (0.5, 1.0, 2.0, 4.0)
DEFAULT_POLICIES = (
    (QSAStrategy.FK_CENTER, CostFunction.PHI4),
    (QSAStrategy.PK_CENTER, CostFunction.PHI4),
    (QSAStrategy.MIN_SUBQUERY, CostFunction.PHI4),
    (QSAStrategy.FK_CENTER, CostFunction.PHI1),
    (QSAStrategy.FK_CENTER, CostFunction.PHI5),
)


@experiment(artifact=PAPER_ARTIFACT, shard_param="families",
            shard_universe=JOB_FAMILY_NUMBERS)
def run(scale: float = 1.0, families: list[int] | None = None,
        sigmas: tuple[float, ...] = DEFAULT_SIGMAS,
        mu: float = 0.0,
        policies: tuple[tuple[QSAStrategy, CostFunction], ...] = DEFAULT_POLICIES,
        use_oracle: bool = False,
        seed: int = 1,
        timeout_seconds: float = 30.0,
        verbose: bool = True) -> ExperimentResult:
    """Run the robustness sweep.

    ``result.data`` maps ``(qsa, ssa, sigma)`` to the
    :class:`~repro.report.WorkloadResult` measured under that noise width.
    """
    database = dbcache.build("imdb", scale=scale, index_config=IndexConfig.PK_FK)
    queries = job_queries(families=families)

    results: dict[tuple[str, str, float], WorkloadResult] = {}
    for sigma in sigmas:
        def estimator_factory(db, _sigma=sigma):
            base = (OracleCardinalityEstimator(db) if use_oracle
                    else DefaultCardinalityEstimator(db))
            return NoisyCardinalityEstimator(base, mu=mu, sigma=_sigma, seed=seed)

        for strategy, cost_function in policies:
            config = HarnessConfig(
                timeout_seconds=timeout_seconds,
                qsa_strategy=strategy,
                cost_function=cost_function,
                estimator_factory=estimator_factory,
            )
            result = run_workload(database, queries, "QuerySplit", config)
            results[(strategy.value, cost_function.value, sigma)] = result

    headers = ["Policy (QSA, SSA)"] + [f"sigma={s}" for s in sigmas]
    rows = []
    for strategy, cost_function in policies:
        row = [f"{strategy.value} + {cost_function.value}"]
        for sigma in sigmas:
            result = results[(strategy.value, cost_function.value, sigma)]
            marker = " (TO)" if result.timeouts else ""
            row.append(format_seconds(result.total_time) + marker)
        rows.append(row)

    workloads = {f"{qsa}+{ssa}/sigma={sigma}": res
                 for (qsa, ssa, sigma), res in results.items()}
    outcome = ExperimentResult(
        name="figure10_robustness",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families, "sigmas": list(sigmas),
                "mu": mu, "use_oracle": use_oracle, "seed": seed,
                "timeout_seconds": timeout_seconds,
                "policies": [f"{s.value}+{c.value}" for s, c in policies]},
        data=results,
        workloads=workloads,
        summary=base_summary(workloads),
        tables=[format_table(headers, rows,
                             title=f"Figure 10: JOB time under CE noise (mu={mu})")],
    )
    if verbose:
        print(outcome.render())
    return outcome
