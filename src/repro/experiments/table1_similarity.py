"""Table 1: how far initial global plans deviate from optimal plans.

For every JOB query the default optimizer's plan is compared against the
plan produced with true cardinalities (the oracle); the similarity score is
the number of leaf relations in their largest common subtree (Section 2.2).
The paper reports the fraction of queries with similarity 0, 1, 2, and >2 --
more than half of the queries lose plan optimality within the first join.
"""

from __future__ import annotations

from collections import Counter

from repro.bench.artifacts import ExperimentResult
from repro.bench.reporting import format_table
from repro.experiments.registry import experiment
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.oracle import OracleCardinalityEstimator, TrueCardinalityOracle
from repro.plan.similarity import plan_similarity, similarity_bucket
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.job_queries import job_queries

PAPER_ARTIFACT = "Table 1 (initial vs. optimal plan similarity)"


@experiment(artifact=PAPER_ARTIFACT)
def run(scale: float = 1.0, families: list[int] | None = None,
        verbose: bool = True) -> ExperimentResult:
    """Compute the similarity distribution (Table 1).

    ``result.data`` maps ``{"0": ratio, "1": ratio, "2": ratio, ">2": ratio}``.
    """
    database = dbcache.build("imdb", scale=scale, index_config=IndexConfig.PK_FK)
    queries = job_queries(families=families)

    default_optimizer = Optimizer(database)
    oracle = TrueCardinalityOracle(database)
    optimal_optimizer = Optimizer(database).with_estimator(
        OracleCardinalityEstimator(database, oracle=oracle))

    buckets: Counter[str] = Counter()
    for query in queries:
        spj = query.spj
        initial = default_optimizer.plan(spj)
        optimal = optimal_optimizer.plan(spj)
        score = plan_similarity(initial, optimal)
        buckets[similarity_bucket(score)] += 1
        oracle.reset()

    total = sum(buckets.values())
    ratios = {key: buckets.get(key, 0) / total for key in ("0", "1", "2", ">2")}
    rows = [[key, buckets.get(key, 0), f"{ratios[key] * 100:.0f}%"]
            for key in ("0", "1", "2", ">2")]
    result = ExperimentResult(
        name="table1_similarity",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families},
        data=ratios,
        summary={"ratios": ratios, "queries": total},
        tables=[format_table(["Similarity", "Queries", "Ratio"], rows,
                             title="Table 1: initial vs. optimal plan similarity")],
    )
    if verbose:
        print(result.render())
    return result
