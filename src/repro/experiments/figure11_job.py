"""Figure 11: end-to-end JOB execution time for QuerySplit and all baselines.

The paper's headline result: QuerySplit beats every re-optimization,
robust-query-processing, and learned-CE baseline on the Join Order
Benchmark, lands within a few percent of the Optimal oracle-driven plan, and
the gap widens when foreign-key indexes are available.  Both index
configurations (PK-only, PK+FK) are evaluated.
"""

from __future__ import annotations

from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads.imdb import build_imdb_database
from repro.workloads.job_queries import job_queries

#: The algorithms shown in Figure 11, in the paper's order.
DEFAULT_ALGORITHMS = (
    "QuerySplit", "Optimal", "Default", "Reopt", "Pop", "IEF", "Perron19",
    "USE", "Pessi.", "FS", "OptRange", "NeuroCard", "DeepDB", "MSCN",
)

#: A cheaper default set for quick runs (skips the oracle-backed baselines).
FAST_ALGORITHMS = (
    "QuerySplit", "Default", "Reopt", "Pop", "IEF", "Perron19", "USE", "FS",
)


def run(scale: float = 1.0, families: list[int] | None = None,
        algorithms: tuple[str, ...] = FAST_ALGORITHMS,
        index_configs: tuple[IndexConfig, ...] = (IndexConfig.PK_ONLY,
                                                  IndexConfig.PK_FK),
        timeout_seconds: float = 30.0,
        verbose: bool = True) -> dict[str, dict[str, WorkloadResult]]:
    """Run the Figure 11 comparison.

    Returns ``{index_config_name: {algorithm: WorkloadResult}}``.
    """
    queries = job_queries(families=families)
    results: dict[str, dict[str, WorkloadResult]] = {}
    for index_config in index_configs:
        database = build_imdb_database(scale=scale, index_config=index_config)
        config = HarnessConfig(timeout_seconds=timeout_seconds)
        per_algorithm: dict[str, WorkloadResult] = {}
        for algorithm in algorithms:
            per_algorithm[algorithm] = run_workload(database, queries, algorithm,
                                                    config)
        results[index_config.value] = per_algorithm

    if verbose:
        for index_name, per_algorithm in results.items():
            rows = []
            for algorithm, result in per_algorithm.items():
                rows.append([
                    algorithm,
                    format_seconds(result.total_time),
                    result.timeouts or "",
                ])
            rows.sort(key=lambda r: r[0])
            print(format_table(
                ["Algorithm", "JOB execution time", "Timeouts"], rows,
                title=f"Figure 11: JOB end-to-end time ({index_name} indexes)"))
            print()
    return results
