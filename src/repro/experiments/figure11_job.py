"""Figure 11: end-to-end JOB execution time for QuerySplit and all baselines.

The paper's headline result: QuerySplit beats every re-optimization,
robust-query-processing, and learned-CE baseline on the Join Order
Benchmark, lands within a few percent of the Optimal oracle-driven plan, and
the gap widens when foreign-key indexes are available.  Both index
configurations (PK-only, PK+FK) are evaluated.
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, grid_result
from repro.bench.harness import HarnessConfig, run_workload
from repro.experiments.registry import experiment
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.job_queries import JOB_FAMILY_NUMBERS, job_queries

PAPER_ARTIFACT = "Figure 11 (JOB end-to-end comparison)"

#: The algorithms shown in Figure 11, in the paper's order.
DEFAULT_ALGORITHMS = (
    "QuerySplit", "Optimal", "Default", "Reopt", "Pop", "IEF", "Perron19",
    "USE", "Pessi.", "FS", "OptRange", "NeuroCard", "DeepDB", "MSCN",
)

#: A cheaper default set for quick runs (skips the oracle-backed baselines).
FAST_ALGORITHMS = (
    "QuerySplit", "Default", "Reopt", "Pop", "IEF", "Perron19", "USE", "FS",
)


@experiment(artifact=PAPER_ARTIFACT, shard_param="families",
            shard_universe=JOB_FAMILY_NUMBERS)
def run(scale: float = 1.0, families: list[int] | None = None,
        algorithms: tuple[str, ...] = FAST_ALGORITHMS,
        index_configs: tuple[IndexConfig, ...] = (IndexConfig.PK_ONLY,
                                                  IndexConfig.PK_FK),
        timeout_seconds: float = 30.0,
        verbose: bool = True) -> ExperimentResult:
    """Run the Figure 11 comparison.

    ``result.data`` maps ``{index_config_name: {algorithm: WorkloadResult}}``.
    """
    queries = job_queries(families=families)
    results: dict[str, dict[str, WorkloadResult]] = {}
    for index_config in index_configs:
        database = dbcache.build("imdb", scale=scale, index_config=index_config)
        config = HarnessConfig(timeout_seconds=timeout_seconds)
        per_algorithm: dict[str, WorkloadResult] = {}
        for algorithm in algorithms:
            per_algorithm[algorithm] = run_workload(database, queries, algorithm,
                                                    config)
        results[index_config.value] = per_algorithm

    outcome = grid_result(
        name="figure11_job", artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families,
                "algorithms": list(algorithms),
                "index_configs": [c.value for c in index_configs],
                "timeout_seconds": timeout_seconds},
        results=results,
        time_header="JOB execution time",
        title_format="Figure 11: JOB end-to-end time ({index} indexes)")
    if verbose:
        print(outcome.render())
    return outcome
