"""Table 6 and Figures 16-19: per-query categories and re-optimization timelines.

Every JOB query is classified by comparing QuerySplit's per-iteration
timeline (intermediate result sizes) against the best alternative
re-optimization algorithm:

* **Avoided Large Join** -- the alternatives produce an intermediate result
  at least ``LARGE_FACTOR`` times larger than anything QuerySplit produces;
* **Delayed Large Join** -- both produce a comparably large intermediate but
  QuerySplit produces it at a relatively later iteration;
* **No Difference** -- execution times within ``SIMILAR_MARGIN`` of each
  other;
* **Worse** -- QuerySplit is slower than the best alternative beyond the
  margin.

The timelines themselves (result size and execution time per iteration, the
data behind Figures 16-19) are returned for every query so they can be
plotted or inspected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.artifacts import ExperimentResult, base_summary
from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_table
from repro.experiments.registry import experiment
from repro.report import ExecutionReport, WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.job_queries import job_queries

PAPER_ARTIFACT = "Table 6 + Figures 16-19 (per-query categories and timelines)"

#: Factor by which an alternative's largest intermediate must exceed
#: QuerySplit's for the query to count as "Avoided Large Join".
LARGE_FACTOR = 4.0

#: Relative execution-time margin treated as "No Difference".
SIMILAR_MARGIN = 0.15

#: The alternatives QuerySplit is compared against (as in the paper).
DEFAULT_ALTERNATIVES = ("Pop", "IEF", "Perron19")

CATEGORIES = ("Avoided Large Join", "Delayed Large Join", "No Difference", "Worse")


@dataclass
class CategoryResult:
    """Classification outcome plus the underlying timelines."""

    categories: dict[str, str] = field(default_factory=dict)
    timelines: dict[str, dict[str, list[tuple[int, int, float]]]] = field(
        default_factory=dict)
    performance_effect: dict[str, float] = field(default_factory=dict)

    def frequency(self) -> dict[str, int]:
        """Number of queries per category."""
        counts = {category: 0 for category in CATEGORIES}
        for category in self.categories.values():
            counts[category] += 1
        return counts

    def average_effect(self) -> dict[str, float]:
        """Average relative improvement of QuerySplit per category."""
        sums = {category: [] for category in CATEGORIES}
        for query, category in self.categories.items():
            sums[category].append(self.performance_effect[query])
        return {category: (sum(values) / len(values) if values else 0.0)
                for category, values in sums.items()}


def classify(querysplit: ExecutionReport, alternatives: dict[str, ExecutionReport]
             ) -> tuple[str, float]:
    """Classify one query and compute QuerySplit's relative improvement."""
    best_alt = min(alternatives.values(), key=lambda r: r.total_time)
    effect = ((best_alt.total_time - querysplit.total_time)
              / max(best_alt.total_time, 1e-9))

    qs_time = querysplit.total_time
    if qs_time > best_alt.total_time * (1 + SIMILAR_MARGIN):
        return "Worse", effect
    if abs(qs_time - best_alt.total_time) <= SIMILAR_MARGIN * best_alt.total_time:
        return "No Difference", effect

    qs_max = max(querysplit.max_intermediate_rows, 1)
    alt_max = max(r.max_intermediate_rows for r in alternatives.values())
    if alt_max >= LARGE_FACTOR * qs_max:
        return "Avoided Large Join", effect

    # Both hit a comparable large intermediate; check whether QuerySplit hit
    # it relatively later in its timeline.
    def relative_position(report: ExecutionReport) -> float:
        if not report.iterations:
            return 1.0
        sizes = [it.result_rows for it in report.iterations]
        peak = sizes.index(max(sizes))
        return (peak + 1) / len(sizes)

    alt_positions = min(relative_position(r) for r in alternatives.values())
    if relative_position(querysplit) >= alt_positions:
        return "Delayed Large Join", effect
    return "Avoided Large Join", effect


@experiment(artifact=PAPER_ARTIFACT)
def run(scale: float = 1.0, families: list[int] | None = None,
        alternatives: tuple[str, ...] = DEFAULT_ALTERNATIVES,
        timeout_seconds: float = 30.0,
        verbose: bool = True) -> ExperimentResult:
    """Classify every JOB query (Table 6) and collect timelines (Fig. 16-19).

    ``result.data`` is the :class:`CategoryResult`.
    """
    database = dbcache.build("imdb", scale=scale, index_config=IndexConfig.PK_FK)
    queries = job_queries(families=families)
    config = HarnessConfig(timeout_seconds=timeout_seconds)

    runs: dict[str, WorkloadResult] = {
        name: run_workload(database, queries, name, config)
        for name in ("QuerySplit",) + tuple(alternatives)
    }

    result = CategoryResult()
    for query in queries:
        qs_report = runs["QuerySplit"].report_for(query.name)
        alt_reports = {name: runs[name].report_for(query.name)
                       for name in alternatives}
        category, effect = classify(qs_report, alt_reports)
        result.categories[query.name] = category
        result.performance_effect[query.name] = effect
        result.timelines[query.name] = {
            name: runs[name].report_for(query.name).timeline()
            for name in runs
        }

    freq = result.frequency()
    effects = result.average_effect()
    total = sum(freq.values())
    rows = [[category, f"{freq[category]} / {total}",
             f"{effects[category] * 100:.1f}%"] for category in CATEGORIES]

    summary = base_summary(runs)
    summary.update(frequency=freq, average_effect=effects,
                   categories=result.categories)
    outcome = ExperimentResult(
        name="table6_categories",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families,
                "alternatives": list(alternatives),
                "timeout_seconds": timeout_seconds},
        data=result,
        workloads=runs,
        summary=summary,
        tables=[format_table(
            ["Category", "Frequency", "Avg perf. effect"], rows,
            title="Table 6: per-query categories (QuerySplit vs best alternative)")],
    )
    if verbose:
        print(outcome.render())
    return outcome
