"""Serving-under-load microbenchmark (beyond the paper).

The paper compares re-optimization policies one query at a time; this
experiment measures the engine as a *served system*: a fixed generated
query stream is offered by a population of simulated users (Poisson
arrival schedules, :mod:`repro.serving.schedule`), admitted through a
bounded queue, and executed by a pool of worker threads sharing one
lock-protected subplan cache (:mod:`repro.serving`).  The sweep covers
the three serving axes

``concurrency (workers) x aggregate arrival rate x admission policy``

and reports, per cell, completed/shed counts, p50/p95/p99
arrival-to-completion latency, mean queue wait, and sustained
throughput.  Every cell replays the *identical* arrival stream and the
identical queries (both pure functions of the seed), so cells differ
only in the serving configuration — the latency curve is attributable to
admission and concurrency, not workload noise.  Per-cell sanity checks
enforce conservation (offered == completed + shed + errors, with zero
errors) so a concurrency bug cannot hide behind a throughput number.
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, base_summary
from repro.bench.harness import serve_generated
from repro.bench.reporting import format_table
from repro.executor.subplan_cache import SubplanCache
from repro.experiments.registry import experiment
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE
from repro.workloads import dbcache
from repro.workloads.sqlgen import (
    AggregateSamplerConfig,
    JoinSamplerConfig,
    PredicateSamplerConfig,
    RandomQueryGenerator,
)

PAPER_ARTIFACT = "Serving-under-load microbenchmark (beyond the paper)"


def _make_generator(database, seed: int) -> RandomQueryGenerator:
    """FK-only join walks: service times stay in the tens-of-milliseconds
    band (no fk-fk cross-edge blowups), so the latency percentiles measure
    queueing and admission behaviour rather than one pathological query."""
    return RandomQueryGenerator(
        database, seed=seed,
        join_config=JoinSamplerConfig(max_joins=3, min_joins=1, fk_only=True),
        predicate_config=PredicateSamplerConfig(max_predicates=3),
        aggregate_config=AggregateSamplerConfig(group_by_probability=0.2),
        name_prefix="serve")


@experiment(artifact=PAPER_ARTIFACT,
            defaults={"scale": 0.25, "queries": 48})
def run(scale: float = 1.0,
        queries: int = 96,
        workers_sweep: tuple[int, ...] = (1, 2, 4),
        rates: tuple[float, ...] = (16.0, 64.0),
        policies: tuple[str, ...] = ("shed", "block"),
        algorithm: str = "QuerySplit",
        users: int = 8,
        queue_capacity: int = 8,
        timeout_seconds: float = 10.0,
        use_subplan_cache: bool = True,
        seed: int = 17,
        block_size: int = DEFAULT_BLOCK_SIZE,
        verbose: bool = True) -> ExperimentResult:
    """Sweep workers x arrival rate x admission policy over one stream.

    ``result.data`` is ``{"cells": cells, "headline": headline}``:
    ``cells`` maps ``(workers, rate, policy)`` to the reporter summary of
    that served run (see :func:`repro.serving.reporter.latency_summary`),
    and ``headline`` holds the numbers the microbench trend tracks —
    ``p95_under_load`` (the saturated highest-rate/shed cell at maximum
    concurrency) and ``peak_throughput_qps`` across all cells.  Every
    cell's per-query reports are flattened into ``workloads`` under
    ``"w{workers}/r{rate}/{policy}"`` keys, so the artifact carries the
    usual per-query records next to the serving aggregates.
    """
    database = dbcache.build("imdb", scale=scale,
                             index_config=IndexConfig.PK_FK,
                             block_size=block_size)
    generator = _make_generator(database, seed)

    cells: dict[tuple[int, float, str], dict] = {}
    workloads: dict[str, WorkloadResult] = {}
    for workers in workers_sweep:
        for rate in rates:
            for policy in policies:
                cache = SubplanCache() if use_subplan_cache else None
                result = serve_generated(
                    generator, queries, algorithm,
                    workers=workers, users=users, rate=rate,
                    queue_capacity=queue_capacity, admission=policy,
                    timeout_seconds=timeout_seconds,
                    subplan_cache=cache, seed=seed)
                summary = dict(result.summary)
                if summary["offered"] != (summary["completed"] + summary["shed"]
                                          + summary["errors"]):
                    raise AssertionError(
                        f"serving cell (workers={workers}, rate={rate}, "
                        f"policy={policy}) lost requests: {summary}")
                if summary["errors"]:
                    failed = [o.error for o in result.outcomes if o.error]
                    raise AssertionError(
                        f"serving cell (workers={workers}, rate={rate}, "
                        f"policy={policy}) had worker errors: {failed[:3]}")
                if cache is not None:
                    summary["cache_hit_rate"] = cache.hit_rate
                cells[(workers, rate, policy)] = summary
                workloads[f"w{workers}/r{rate:g}/{policy}"] = \
                    result.workload_result(algorithm)

    max_workers = max(workers_sweep)
    max_rate = max(rates)
    loaded_policy = "shed" if "shed" in policies else policies[0]
    loaded = cells[(max_workers, max_rate, loaded_policy)]
    headline = {
        "p95_under_load": loaded["p95_latency"],
        "p99_under_load": loaded["p99_latency"],
        "throughput_under_load_qps": loaded["throughput_qps"],
        "peak_throughput_qps": max(c["throughput_qps"] for c in cells.values()),
        "loaded_cell": f"w{max_workers}/r{max_rate:g}/{loaded_policy}",
    }

    headers = ["workers", "rate", "policy", "done", "shed", "p50", "p95",
               "p99", "qps"]
    rows = [[w, f"{r:g}", p, cell["completed"], cell["shed"],
             f"{cell['p50_latency'] * 1e3:.1f} ms",
             f"{cell['p95_latency'] * 1e3:.1f} ms",
             f"{cell['p99_latency'] * 1e3:.1f} ms",
             f"{cell['throughput_qps']:.1f}"]
            for (w, r, p), cell in sorted(cells.items())]
    tables = [format_table(headers, rows,
                           title=f"Serving under load ({queries} queries, "
                                 f"{users} users, {algorithm}, "
                                 f"queue={queue_capacity})")]

    summary = dict(base_summary(workloads))
    summary["cells"] = {f"w{w}/r{r:g}/{p}": cell
                        for (w, r, p), cell in cells.items()}
    summary.update(headline)
    outcome = ExperimentResult(
        name="bench_serving",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "queries": queries,
                "workers_sweep": workers_sweep, "rates": rates,
                "policies": policies, "algorithm": algorithm, "users": users,
                "queue_capacity": queue_capacity,
                "timeout_seconds": timeout_seconds,
                "use_subplan_cache": use_subplan_cache, "seed": seed,
                "block_size": block_size},
        data={"cells": cells, "headline": headline},
        workloads=workloads,
        summary=summary,
        tables=tables,
    )
    if verbose:
        print(outcome.render())
    return outcome
