"""Generated-workload scaling study (beyond the paper's fixed suites).

The paper evaluates the re-optimization policies only on the fixed JOB /
TPC-H / DSB query sets.  This experiment instead sweeps *seeded random
workloads* of increasing size and join depth produced by
:class:`~repro.workloads.sqlgen.RandomQueryGenerator` over the TPC-H schema,
and reports for every policy:

* total execution time per (join depth, stream length) cell;
* the number of per-query timeouts (out-of-suite robustness);
* the cross-policy :class:`~repro.executor.subplan_cache.SubplanCache` hit
  rate per cell, measured by a *separate* pass that shares one cache
  instance across all policies — the hit rate quantifies how much logical
  work the policies have in common on queries none of them was tuned for.
  The timed runs never share a cache (per the EXPERIMENTS.md accounting
  rules, a shared cache would make measured times depend on run order);
* a per-policy robustness score: the worst-case slowdown relative to the
  best policy of the same cell, taken over all cells.

There is no corresponding paper artifact; see EXPERIMENTS.md for how this
module fits the figure/table mapping.
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, base_summary
from repro.bench.harness import HarnessConfig, run_generated
from repro.bench.reporting import format_seconds, format_table
from repro.executor.subplan_cache import SubplanCache
from repro.experiments.registry import experiment
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.storage.zonemaps import DEFAULT_BLOCK_SIZE
from repro.workloads import dbcache
from repro.workloads.sqlgen import (
    AggregateSamplerConfig,
    JoinSamplerConfig,
    PredicateSamplerConfig,
    RandomQueryGenerator,
)

PAPER_ARTIFACT = "Generated-stream scaling (beyond the paper)"

#: Policies compared by default (those supporting non-SPJ GROUP BY queries,
#: matching the Figure 12/14 algorithm set minus the slowest baselines).
DEFAULT_ALGORITHMS = ("QuerySplit", "Default", "Reopt", "Pop", "IEF", "Perron19")


@experiment(artifact=PAPER_ARTIFACT,
            defaults={"stream_lengths": (10, 25), "join_depths": (2, 4)})
def run(scale: float = 1.0,
        stream_lengths: tuple[int, ...] = (10, 25, 50),
        join_depths: tuple[int, ...] = (2, 4, 6),
        algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
        seed: int = 7,
        fk_only: bool = False,
        group_by_probability: float = 0.2,
        timeout_seconds: float = 30.0,
        measure_cache_overlap: bool = True,
        block_size: int = DEFAULT_BLOCK_SIZE,
        verbose: bool = True) -> ExperimentResult:
    """Run the sweep over stream length x join depth.

    ``result.data`` is ``{"cells": cells, "robustness": robustness}`` where
    ``cells`` maps ``(max_joins, n)`` to
    ``{"results": {algorithm: WorkloadResult}, "cache_hit_rate": float}``
    and ``robustness`` maps each policy to its worst-case slowdown relative
    to the per-cell best.
    """
    database = dbcache.build("tpch", scale=scale, index_config=IndexConfig.PK_FK,
                             block_size=block_size)
    cells: dict = {}
    for max_joins in join_depths:
        generator = RandomQueryGenerator(
            database,
            seed=seed,
            join_config=JoinSamplerConfig(max_joins=max_joins, min_joins=1,
                                          fk_only=fk_only),
            predicate_config=PredicateSamplerConfig(max_predicates=3),
            aggregate_config=AggregateSamplerConfig(
                group_by_probability=group_by_probability),
            name_prefix=f"sqlgen-d{max_joins}",
        )
        for n in stream_lengths:
            # Timed runs: no cache sharing, every policy's time independent.
            config = HarnessConfig(timeout_seconds=timeout_seconds)
            per_algorithm: dict[str, WorkloadResult] = {}
            for algorithm in algorithms:
                per_algorithm[algorithm] = run_generated(
                    generator, n, algorithm, config)
            hit_rate = 0.0
            if measure_cache_overlap:
                # Untimed second pass with one shared cache: its hit rate
                # measures the policies' logical-work overlap on this stream.
                cache = SubplanCache()
                overlap_config = HarnessConfig(timeout_seconds=timeout_seconds,
                                               subplan_cache=cache)
                for algorithm in algorithms:
                    run_generated(generator, n, algorithm, overlap_config)
                hit_rate = cache.hit_rate
            cells[(max_joins, n)] = {
                "results": per_algorithm,
                "cache_hit_rate": hit_rate,
            }

    robustness = _worst_case_slowdowns(cells, algorithms)

    headers = (["depth", "queries"] + list(algorithms)
               + ["timeouts", "cache hit rate"])
    rows = []
    for (max_joins, n), cell in cells.items():
        timeouts = sum(r.timeouts for r in cell["results"].values())
        rows.append([max_joins, n]
                    + [format_seconds(cell["results"][a].total_time)
                       for a in algorithms]
                    + [timeouts or "", f"{cell['cache_hit_rate']:.1%}"])
    rob_rows = [[a, f"{robustness[a]:.2f}x"] for a in algorithms]
    tables = [
        format_table(headers, rows,
                     title="Generated-stream scaling (TPC-H schema, "
                           f"seed {seed})"),
        format_table(["Policy", "worst-case slowdown vs. best"], rob_rows,
                     title="Out-of-suite robustness"),
    ]

    workloads = {f"d{max_joins}/n{n}/{algorithm}": res
                 for (max_joins, n), cell in cells.items()
                 for algorithm, res in cell["results"].items()}
    summary = base_summary(workloads)
    summary["robustness"] = robustness
    summary["cache_hit_rates"] = {f"d{d}/n{n}": cell["cache_hit_rate"]
                                  for (d, n), cell in cells.items()}
    outcome = ExperimentResult(
        name="figure_sqlgen_scaling",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "stream_lengths": list(stream_lengths),
                "join_depths": list(join_depths),
                "algorithms": list(algorithms), "seed": seed,
                "fk_only": fk_only,
                "group_by_probability": group_by_probability,
                "timeout_seconds": timeout_seconds,
                "measure_cache_overlap": measure_cache_overlap,
                "block_size": block_size},
        data={"cells": cells, "robustness": robustness},
        workloads=workloads,
        summary=summary,
        tables=tables,
    )
    if verbose:
        print(outcome.render())
    return outcome


def _worst_case_slowdowns(cells: dict, algorithms: tuple[str, ...]) -> dict[str, float]:
    """Each policy's worst slowdown factor vs. the per-cell best policy."""
    worst = {algorithm: 1.0 for algorithm in algorithms}
    for cell in cells.values():
        results = cell["results"]
        best = min(result.total_time for result in results.values())
        if best <= 0:
            continue
        for algorithm in algorithms:
            worst[algorithm] = max(worst[algorithm],
                                   results[algorithm].total_time / best)
    return worst
