"""Figure 12: TPC-H execution time (the star-schema worst case).

TPC-H queries are star-schema and non-SPJ, so FK-Center often produces a
single subquery and QuerySplit rarely re-optimizes; the paper's point is
that QuerySplit's low overhead keeps it at least as fast as the alternatives
even where re-optimization cannot help.
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, grid_result
from repro.bench.harness import HarnessConfig, run_workload
from repro.experiments.registry import experiment
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.tpch import TPCH_QUERY_NUMBERS, tpch_queries

PAPER_ARTIFACT = "Figure 12 (TPC-H end-to-end)"

#: Algorithms shown in Figure 12 (only those supporting non-SPJ queries).
DEFAULT_ALGORITHMS = ("QuerySplit", "Default", "Reopt", "Pop", "IEF",
                      "Perron19", "FS", "OptRange")


@experiment(artifact=PAPER_ARTIFACT, shard_param="families",
            shard_universe=TPCH_QUERY_NUMBERS)
def run(scale: float = 1.0, families: list[int] | None = None,
        algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
        index_configs: tuple[IndexConfig, ...] = (IndexConfig.PK_ONLY,
                                                  IndexConfig.PK_FK),
        timeout_seconds: float = 60.0,
        verbose: bool = True) -> ExperimentResult:
    """Run the TPC-H comparison.

    ``families`` restricts to the given TPC-H query numbers (1..22);
    ``result.data`` maps ``{index_config: {algorithm: WorkloadResult}}``.
    """
    queries = tpch_queries()
    if families is not None:
        wanted = {f"tpch-q{n}" for n in families}
        queries = [q for q in queries if q.name in wanted]

    results: dict[str, dict[str, WorkloadResult]] = {}
    for index_config in index_configs:
        database = dbcache.build("tpch", scale=scale, index_config=index_config)
        config = HarnessConfig(timeout_seconds=timeout_seconds)
        results[index_config.value] = {
            algorithm: run_workload(database, queries, algorithm, config)
            for algorithm in algorithms
        }

    outcome = grid_result(
        name="figure12_tpch", artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families,
                "algorithms": list(algorithms),
                "index_configs": [c.value for c in index_configs],
                "timeout_seconds": timeout_seconds},
        results=results,
        time_header="TPC-H execution time",
        title_format="Figure 12: TPC-H end-to-end time ({index} indexes)")
    if verbose:
        print(outcome.render())
    return outcome
