"""Figure 12: TPC-H execution time (the star-schema worst case).

TPC-H queries are star-schema and non-SPJ, so FK-Center often produces a
single subquery and QuerySplit rarely re-optimizes; the paper's point is
that QuerySplit's low overhead keeps it at least as fast as the alternatives
even where re-optimization cannot help.
"""

from __future__ import annotations

from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads.tpch import build_tpch_database, tpch_queries

#: Algorithms shown in Figure 12 (only those supporting non-SPJ queries).
DEFAULT_ALGORITHMS = ("QuerySplit", "Default", "Reopt", "Pop", "IEF",
                      "Perron19", "FS", "OptRange")


def run(scale: float = 1.0,
        algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
        index_configs: tuple[IndexConfig, ...] = (IndexConfig.PK_ONLY,
                                                  IndexConfig.PK_FK),
        timeout_seconds: float = 60.0,
        query_numbers: list[int] | None = None,
        verbose: bool = True) -> dict[str, dict[str, WorkloadResult]]:
    """Run the TPC-H comparison; returns ``{index_config: {algorithm: result}}``."""
    queries = tpch_queries()
    if query_numbers is not None:
        wanted = {f"tpch-q{n}" for n in query_numbers}
        queries = [q for q in queries if q.name in wanted]

    results: dict[str, dict[str, WorkloadResult]] = {}
    for index_config in index_configs:
        database = build_tpch_database(scale=scale, index_config=index_config)
        config = HarnessConfig(timeout_seconds=timeout_seconds)
        results[index_config.value] = {
            algorithm: run_workload(database, queries, algorithm, config)
            for algorithm in algorithms
        }

    if verbose:
        for index_name, per_algorithm in results.items():
            rows = [[name, format_seconds(res.total_time), res.timeouts or ""]
                    for name, res in per_algorithm.items()]
            print(format_table(
                ["Algorithm", "TPC-H execution time", "Timeouts"], rows,
                title=f"Figure 12: TPC-H end-to-end time ({index_name} indexes)"))
            print()
    return results
