"""Experiment modules: one per table / figure of the paper's evaluation.

Each module exposes a ``run(...)`` function that executes the experiment on
the synthetic workloads and returns an
:class:`~repro.bench.artifacts.ExperimentResult`: the experiment-specific
data (``result.data``, the shape tests assert on), the flattened per-query
workload results, a JSON-safe summary, and the pre-rendered ASCII
reproduction of the paper artifact (printed when ``verbose=True``).  Every
``run`` takes a ``scale`` and (where applicable) a ``families`` restriction
so the full study can be executed in minutes on a laptop or expanded for
higher fidelity.

Every module registers itself with :mod:`repro.experiments.registry`;
``python -m repro.cli list`` enumerates the registry and
``python -m repro.cli run`` executes experiments in parallel and persists
their results as JSON artifacts (see EXPERIMENTS.md).

| Module                      | Paper artifact                              |
|-----------------------------|---------------------------------------------|
| ``table1_similarity``       | Table 1 (initial vs. optimal plan overlap)   |
| ``table3_policies``         | Table 3 (QSA x SSA policy grid)              |
| ``figure10_robustness``     | Figure 10 (CE-noise robustness)              |
| ``figure11_job``            | Figure 11 (JOB end-to-end comparison)        |
| ``table4_materialization``  | Table 4 (materialization frequency / memory) |
| ``figure12_tpch``           | Figure 12 (TPC-H end-to-end)                 |
| ``figure13_dsb_spj``        | Figure 13 (DSB SPJ queries)                  |
| ``figure14_dsb_nonspj``     | Figure 14 (DSB non-SPJ queries)              |
| ``figure15_statistics``     | Figure 15 (collect statistics or not)        |
| ``table5_existing_costfn``  | Table 5 (existing re-opts with Phi functions)|
| ``table6_categories``       | Table 6 + Figures 16-19 (categories, timelines)|
| ``figure_sqlgen_scaling``   | (no paper artifact) generated-stream scaling |

See EXPERIMENTS.md for the timing-accounting rules shared by every module,
the CLI runner, and the persisted artifact schema.
"""
