"""Table 3: JOB execution time for every QSA x SSA policy combination.

QuerySplit is run with each subquery-generation strategy (FK-Center,
PK-Center, MinSubquery) combined with each subquery-selection cost function
(Phi1..Phi5 and the global_deep baseline).  The paper finds FK-Center + Phi4
to be the best and most robust combination.
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, base_summary
from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.executor.subplan_cache import SubplanCache
from repro.core.qsa import QSAStrategy
from repro.core.ssa import CostFunction
from repro.experiments.registry import experiment
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.job_queries import JOB_FAMILY_NUMBERS, job_queries

PAPER_ARTIFACT = "Table 3 (QSA x SSA policy grid on JOB)"

QSA_ORDER = (QSAStrategy.FK_CENTER, QSAStrategy.PK_CENTER, QSAStrategy.MIN_SUBQUERY)
SSA_ORDER = (CostFunction.PHI1, CostFunction.PHI2, CostFunction.PHI3,
             CostFunction.PHI4, CostFunction.PHI5, CostFunction.GLOBAL_DEEP)

SSA_LABELS = {
    CostFunction.PHI1: "Phi1: C(q)",
    CostFunction.PHI2: "Phi2: C(q)*log(S(q))",
    CostFunction.PHI3: "Phi3: C(q)*sqrt(S(q))",
    CostFunction.PHI4: "Phi4: C(q)*S(q)",
    CostFunction.PHI5: "Phi5: S(q)",
    CostFunction.GLOBAL_DEEP: "global_deep",
}


@experiment(artifact=PAPER_ARTIFACT, shard_param="families",
            shard_universe=JOB_FAMILY_NUMBERS)
def run(scale: float = 1.0, families: list[int] | None = None,
        qsa_strategies: tuple[QSAStrategy, ...] = QSA_ORDER,
        cost_functions: tuple[CostFunction, ...] = SSA_ORDER,
        timeout_seconds: float = 30.0,
        subplan_cache: SubplanCache | None = None,
        verbose: bool = True) -> ExperimentResult:
    """Run the QSA x SSA grid.

    ``result.data`` maps ``(ssa_name, qsa_name)`` to the combination's
    :class:`~repro.report.WorkloadResult`.  Passing a :class:`SubplanCache`
    shares executed subtrees across every policy combination of the grid
    (the policies mostly re-execute the same filtered scans and low joins,
    so the hit rate is substantial).  The default ``None`` keeps every
    combination's measured time independent, preserving the paper's
    per-policy comparison.
    """
    database = dbcache.build("imdb", scale=scale, index_config=IndexConfig.PK_FK)
    queries = job_queries(families=families)

    results: dict[tuple[str, str], WorkloadResult] = {}
    for cost_function in cost_functions:
        for strategy in qsa_strategies:
            config = HarnessConfig(
                timeout_seconds=timeout_seconds,
                qsa_strategy=strategy,
                cost_function=cost_function,
                subplan_cache=subplan_cache,
            )
            result = run_workload(database, queries, "QuerySplit", config)
            results[(cost_function.value, strategy.value)] = result

    headers = ["SSA \\ QSA"] + [s.value for s in qsa_strategies]
    rows = []
    for cost_function in cost_functions:
        row = [SSA_LABELS[cost_function]]
        for strategy in qsa_strategies:
            result = results[(cost_function.value, strategy.value)]
            row.append(format_seconds(result.total_time))
        rows.append(row)
    tables = [format_table(headers, rows,
                           title="Table 3: JOB time per QSA x SSA policy")]
    if subplan_cache is not None:
        tables.append(f"  subplan cache: {subplan_cache.hits} hits / "
                      f"{subplan_cache.misses} misses "
                      f"(hit rate {subplan_cache.hit_rate:.1%})")

    workloads = {f"{ssa}/{qsa}": res for (ssa, qsa), res in results.items()}
    best = best_combination(results)
    summary = base_summary(workloads)
    summary["best_combination"] = {"ssa": best[0], "qsa": best[1]}
    outcome = ExperimentResult(
        name="table3_policies",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families,
                "qsa_strategies": [s.value for s in qsa_strategies],
                "cost_functions": [c.value for c in cost_functions],
                "timeout_seconds": timeout_seconds},
        data=results,
        workloads=workloads,
        summary=summary,
        tables=tables,
    )
    if verbose:
        print(outcome.render())
    return outcome


def best_combination(results: dict[tuple[str, str], WorkloadResult]) -> tuple[str, str]:
    """The (SSA, QSA) pair with the lowest total execution time."""
    return min(results, key=lambda key: results[key].total_time)
