"""Decorator-based experiment registry.

Every experiment module registers its ``run()`` function with the
:func:`experiment` decorator, declaring the paper artifact it reproduces,
optional CLI default knobs, and — when the experiment is embarrassingly
parallel over a query-family knob — which parameter the CLI runner may
shard across worker processes.

The registry is what makes ``python -m repro.cli list / run / report``
(:mod:`repro.cli`) possible without hand-maintained experiment lists:
:func:`load_all` imports every module under :mod:`repro.experiments` once,
the decorators populate :data:`REGISTRY` as a side effect, and
``tools/check_docs.py`` cross-checks the registry against EXPERIMENTS.md.
"""

from __future__ import annotations

import importlib
import pkgutil
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

#: Registered experiments, keyed by name (== the module's basename).
REGISTRY: dict[str, "ExperimentSpec"] = {}


@dataclass(frozen=True)
class ExperimentSpec:
    """Registration record of one experiment module."""

    #: Registry name; by convention the module basename (``figure11_job``).
    name: str
    #: Paper artifact the experiment reproduces (``"Figure 11 (...)"``).
    artifact: str
    #: Fully qualified module the ``run()`` lives in.
    module: str
    #: The experiment's ``run()`` function (returns an ``ExperimentResult``).
    runner: Callable[..., Any]
    #: Knob overrides the CLI applies by default (on top of ``run()``'s own
    #: defaults); explicit CLI flags override these in turn.
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: Name of the list-valued parameter the CLI may shard across worker
    #: processes (``"families"``), or ``None`` when the experiment must run
    #: as a single unit (its summary is not reconstructible from merged
    #: per-query records).
    shard_param: str | None = None
    #: Full universe of shard values used when the caller does not restrict
    #: the parameter explicitly.
    shard_universe: tuple[Any, ...] | None = None

    def shard_values(self, requested: Sequence[Any] | None) -> list[Any] | None:
        """The shard values a parallel run fans out over (None = unshardable)."""
        if self.shard_param is None:
            return None
        if requested is not None:
            return list(requested)
        return list(self.shard_universe) if self.shard_universe else None


def experiment(*, artifact: str, defaults: Mapping[str, Any] | None = None,
               shard_param: str | None = None,
               shard_universe: Sequence[Any] | None = None,
               name: str | None = None) -> Callable:
    """Register the decorated ``run()`` function as an experiment."""
    def decorate(runner: Callable) -> Callable:
        experiment_name = name or runner.__module__.rsplit(".", 1)[-1]
        spec = ExperimentSpec(
            name=experiment_name,
            artifact=artifact,
            module=runner.__module__,
            runner=runner,
            defaults=dict(defaults or {}),
            shard_param=shard_param,
            shard_universe=tuple(shard_universe) if shard_universe else None,
        )
        REGISTRY[experiment_name] = spec
        runner.experiment_spec = spec
        return runner
    return decorate


def load_all() -> dict[str, ExperimentSpec]:
    """Import every experiment module and return the populated registry."""
    package = importlib.import_module("repro.experiments")
    for info in pkgutil.iter_modules(package.__path__):
        if info.name.startswith("_") or info.name == "registry":
            continue
        importlib.import_module(f"repro.experiments.{info.name}")
    return dict(REGISTRY)


def get(name: str) -> ExperimentSpec:
    """Look up one experiment, loading the registry on first use."""
    if name not in REGISTRY:
        load_all()
    if name not in REGISTRY:
        known = ", ".join(sorted(REGISTRY)) or "<none>"
        raise KeyError(f"unknown experiment {name!r}; registered: {known}")
    return REGISTRY[name]
