"""Figure 15: collecting statistics on materialized results, or not.

Every re-optimization algorithm is run twice on JOB: once analyzing every
materialized temporary (NDV, MCVs, histograms) and once passing only the row
count to the optimizer.  The paper's finding: the answer is
algorithm-dependent -- Reopt/Pop/IEF need the statistics, while Perron19 and
QuerySplit barely benefit because their subqueries are simple (at most two
relations, or mostly PK-FK joins whose estimation only needs row counts).

``stale=True`` (CLI ``--stale``) reruns the comparison on a database whose
largest fact table (``cast_info``) has drifted *after* its load-time
ANALYZE (:mod:`repro.dynamic.drift`, no re-ANALYZE): the base-table
statistics are now systematically wrong, so runtime statistics on
materialized temporaries are the only fresh cardinalities any algorithm
ever sees -- the setting where collecting them should matter most.
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, base_summary
from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.dynamic import DriftConfig, DriftStream
from repro.experiments.registry import experiment
from repro.report import WorkloadResult
from repro.reopt.registry import REOPT_ALGORITHMS
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.imdb import build_imdb_database
from repro.workloads.job_queries import JOB_FAMILY_NUMBERS, job_queries

PAPER_ARTIFACT = "Figure 15 (statistics collection on/off)"

#: The fact table the stale mode drifts (JOB's largest).
STALE_FACT_TABLE = "cast_info"


@experiment(artifact=PAPER_ARTIFACT, shard_param="families",
            shard_universe=JOB_FAMILY_NUMBERS)
def run(scale: float = 1.0, families: list[int] | None = None,
        algorithms: tuple[str, ...] = REOPT_ALGORITHMS,
        timeout_seconds: float = 30.0,
        stale: bool = False, drift_steps: int = 4, drift_rate: float = 0.25,
        seed: int = 7,
        verbose: bool = True) -> ExperimentResult:
    """Run each algorithm with and without statistics collection.

    ``result.data`` maps ``(algorithm, collect_statistics)`` to the
    corresponding :class:`~repro.report.WorkloadResult`.  With
    ``stale=True`` the database is drifted (``drift_steps`` batches of
    ``drift_rate`` x the fact table's rows each, plus deletes) after
    ANALYZE and never re-ANALYZEd; ``summary["staleness"]`` records the
    pending mutation batches per table.
    """
    staleness: dict[str, int] = {}
    if stale:
        # Private build -- the shared dbcache instance must not be mutated.
        database = build_imdb_database(scale=scale,
                                       index_config=IndexConfig.PK_FK)
        fact_rows = database.table(STALE_FACT_TABLE).num_rows
        stream = DriftStream(
            database,
            DriftConfig(fact_table=STALE_FACT_TABLE,
                        append_rows=max(1, int(round(drift_rate * fact_rows))),
                        delete_fraction=0.02),
            seed=seed)
        stream.run(drift_steps)
        staleness = {name: database.stats_staleness(name)
                     for name in database.base_table_names
                     if database.stats_staleness(name)}
    else:
        database = dbcache.build("imdb", scale=scale,
                                 index_config=IndexConfig.PK_FK)
    queries = job_queries(families=families)

    results: dict[tuple[str, bool], WorkloadResult] = {}
    for algorithm in algorithms:
        for collect in (True, False):
            config = HarnessConfig(timeout_seconds=timeout_seconds,
                                   collect_statistics=collect)
            results[(algorithm, collect)] = run_workload(database, queries,
                                                         algorithm, config)

    rows = []
    for algorithm in algorithms:
        with_stats = results[(algorithm, True)]
        without = results[(algorithm, False)]
        rows.append([
            algorithm,
            format_seconds(with_stats.total_time),
            format_seconds(without.total_time),
        ])

    workloads = {f"{alg}/{'stats' if collect else 'rowcount'}": res
                 for (alg, collect), res in results.items()}
    outcome = ExperimentResult(
        name="figure15_statistics",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families,
                "algorithms": list(algorithms),
                "timeout_seconds": timeout_seconds,
                "stale": stale, "drift_steps": drift_steps,
                "drift_rate": drift_rate, "seed": seed},
        data=results,
        workloads=workloads,
        summary={**base_summary(workloads), "staleness": staleness},
        tables=[format_table(
            ["Algorithm", "With statistics", "Row count only"], rows,
            title="Figure 15: JOB time with and without runtime statistics"
                  + (" (stale base statistics)" if stale else ""))],
    )
    if verbose:
        print(outcome.render())
    return outcome
