"""Figure 15: collecting statistics on materialized results, or not.

Every re-optimization algorithm is run twice on JOB: once analyzing every
materialized temporary (NDV, MCVs, histograms) and once passing only the row
count to the optimizer.  The paper's finding: the answer is
algorithm-dependent -- Reopt/Pop/IEF need the statistics, while Perron19 and
QuerySplit barely benefit because their subqueries are simple (at most two
relations, or mostly PK-FK joins whose estimation only needs row counts).
"""

from __future__ import annotations

from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.report import WorkloadResult
from repro.reopt.registry import REOPT_ALGORITHMS
from repro.storage.database import IndexConfig
from repro.workloads.imdb import build_imdb_database
from repro.workloads.job_queries import job_queries


def run(scale: float = 1.0, families: list[int] | None = None,
        algorithms: tuple[str, ...] = REOPT_ALGORITHMS,
        timeout_seconds: float = 30.0,
        verbose: bool = True) -> dict[tuple[str, bool], WorkloadResult]:
    """Run each algorithm with and without statistics collection."""
    database = build_imdb_database(scale=scale, index_config=IndexConfig.PK_FK)
    queries = job_queries(families=families)

    results: dict[tuple[str, bool], WorkloadResult] = {}
    for algorithm in algorithms:
        for collect in (True, False):
            config = HarnessConfig(timeout_seconds=timeout_seconds,
                                   collect_statistics=collect)
            results[(algorithm, collect)] = run_workload(database, queries,
                                                         algorithm, config)

    if verbose:
        rows = []
        for algorithm in algorithms:
            with_stats = results[(algorithm, True)]
            without = results[(algorithm, False)]
            rows.append([
                algorithm,
                format_seconds(with_stats.total_time),
                format_seconds(without.total_time),
            ])
        print(format_table(
            ["Algorithm", "With statistics", "Row count only"], rows,
            title="Figure 15: JOB time with and without runtime statistics"))
    return results
