"""Figure 15: collecting statistics on materialized results, or not.

Every re-optimization algorithm is run twice on JOB: once analyzing every
materialized temporary (NDV, MCVs, histograms) and once passing only the row
count to the optimizer.  The paper's finding: the answer is
algorithm-dependent -- Reopt/Pop/IEF need the statistics, while Perron19 and
QuerySplit barely benefit because their subqueries are simple (at most two
relations, or mostly PK-FK joins whose estimation only needs row counts).
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, base_summary
from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.experiments.registry import experiment
from repro.report import WorkloadResult
from repro.reopt.registry import REOPT_ALGORITHMS
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.job_queries import JOB_FAMILY_NUMBERS, job_queries

PAPER_ARTIFACT = "Figure 15 (statistics collection on/off)"


@experiment(artifact=PAPER_ARTIFACT, shard_param="families",
            shard_universe=JOB_FAMILY_NUMBERS)
def run(scale: float = 1.0, families: list[int] | None = None,
        algorithms: tuple[str, ...] = REOPT_ALGORITHMS,
        timeout_seconds: float = 30.0,
        verbose: bool = True) -> ExperimentResult:
    """Run each algorithm with and without statistics collection.

    ``result.data`` maps ``(algorithm, collect_statistics)`` to the
    corresponding :class:`~repro.report.WorkloadResult`.
    """
    database = dbcache.build("imdb", scale=scale, index_config=IndexConfig.PK_FK)
    queries = job_queries(families=families)

    results: dict[tuple[str, bool], WorkloadResult] = {}
    for algorithm in algorithms:
        for collect in (True, False):
            config = HarnessConfig(timeout_seconds=timeout_seconds,
                                   collect_statistics=collect)
            results[(algorithm, collect)] = run_workload(database, queries,
                                                         algorithm, config)

    rows = []
    for algorithm in algorithms:
        with_stats = results[(algorithm, True)]
        without = results[(algorithm, False)]
        rows.append([
            algorithm,
            format_seconds(with_stats.total_time),
            format_seconds(without.total_time),
        ])

    workloads = {f"{alg}/{'stats' if collect else 'rowcount'}": res
                 for (alg, collect), res in results.items()}
    outcome = ExperimentResult(
        name="figure15_statistics",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families,
                "algorithms": list(algorithms),
                "timeout_seconds": timeout_seconds},
        data=results,
        workloads=workloads,
        summary=base_summary(workloads),
        tables=[format_table(
            ["Algorithm", "With statistics", "Row count only"], rows,
            title="Figure 15: JOB time with and without runtime statistics")],
    )
    if verbose:
        print(outcome.render())
    return outcome
