"""Figure 13: DSB SPJ queries.

DSB keeps the star schema of TPC-DS but injects data skew, so estimates are
wrong even though all joins are PK-FK.  The paper shows QuerySplit close to
Optimal, with the learned estimators becoming more competitive than on JOB
because DSB filters are mostly numeric.
"""

from __future__ import annotations

from repro.bench.harness import HarnessConfig, run_workload
from repro.bench.reporting import format_seconds, format_table
from repro.report import WorkloadResult
from repro.storage.database import IndexConfig
from repro.workloads.dsb import build_dsb_database, dsb_spj_queries

DEFAULT_ALGORITHMS = ("QuerySplit", "Default", "Reopt", "Pop", "IEF",
                      "Perron19", "USE", "Pessi.", "FS")


def run(scale: float = 1.0,
        algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
        index_configs: tuple[IndexConfig, ...] = (IndexConfig.PK_ONLY,
                                                  IndexConfig.PK_FK),
        timeout_seconds: float = 60.0,
        verbose: bool = True) -> dict[str, dict[str, WorkloadResult]]:
    """Run the DSB SPJ comparison; returns ``{index_config: {algorithm: result}}``."""
    queries = dsb_spj_queries()
    results: dict[str, dict[str, WorkloadResult]] = {}
    for index_config in index_configs:
        database = build_dsb_database(scale=scale, index_config=index_config)
        config = HarnessConfig(timeout_seconds=timeout_seconds)
        results[index_config.value] = {
            algorithm: run_workload(database, queries, algorithm, config)
            for algorithm in algorithms
        }

    if verbose:
        for index_name, per_algorithm in results.items():
            rows = [[name, format_seconds(res.total_time), res.timeouts or ""]
                    for name, res in per_algorithm.items()]
            print(format_table(
                ["Algorithm", "DSB SPJ execution time", "Timeouts"], rows,
                title=f"Figure 13: DSB SPJ queries ({index_name} indexes)"))
            print()
    return results
