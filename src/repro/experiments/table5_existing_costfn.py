"""Table 5: existing re-optimization algorithms with QuerySplit's cost functions.

The paper asks whether the Phi cost functions alone explain QuerySplit's
advantage: each baseline is modified to *order* its candidate materialization
points by Phi instead of its native policy.  The answer is no -- a better
ordering cannot compensate for a subquery division inherited from the global
plan.

We reproduce the study by wrapping each baseline with an ordering shim that
re-sorts its materialization points by the Phi score of the corresponding
sub-plan (estimated cost times estimated cardinality, etc.).
"""

from __future__ import annotations

from repro.bench.artifacts import ExperimentResult, base_summary
from repro.bench.reporting import format_seconds, format_table
from repro.core.ssa import SSA_FUNCTIONS, CostFunction
from repro.experiments.registry import experiment
from repro.optimizer.optimizer import Optimizer
from repro.plan.physical import JoinNode, PhysicalPlan
from repro.report import WorkloadResult
from repro.reopt.base import BaselineConfig
from repro.reopt.ief import IEFBaseline
from repro.reopt.kabra import ReoptBaseline
from repro.reopt.perron import Perron19Baseline
from repro.reopt.pop import PopBaseline
from repro.storage.database import IndexConfig
from repro.workloads import dbcache
from repro.workloads.job_queries import JOB_FAMILY_NUMBERS, job_queries

PAPER_ARTIFACT = "Table 5 (existing re-optimizers with Phi cost functions)"

_BASELINES = {
    "Reopt": ReoptBaseline,
    "Pop": PopBaseline,
    "IEF": IEFBaseline,
    "Perron19": Perron19Baseline,
}

COST_FUNCTIONS = (CostFunction.PHI1, CostFunction.PHI2, CostFunction.PHI3,
                  CostFunction.PHI4, CostFunction.PHI5)


def _with_phi_ordering(baseline_cls, cost_function: CostFunction):
    """Subclass a baseline so its materialization points are ordered by Phi."""
    scorer = SSA_FUNCTIONS[cost_function]

    class PhiOrderedBaseline(baseline_cls):
        name = f"{baseline_cls.name}+{cost_function.value}"

        def materialization_points(self, plan: PhysicalPlan) -> list[JoinNode]:
            points = super().materialization_points(plan)
            return sorted(points,
                          key=lambda node: scorer(node.est_cost, node.est_rows))

    return PhiOrderedBaseline


@experiment(artifact=PAPER_ARTIFACT, shard_param="families",
            shard_universe=JOB_FAMILY_NUMBERS)
def run(scale: float = 1.0, families: list[int] | None = None,
        algorithms: tuple[str, ...] = tuple(_BASELINES),
        cost_functions: tuple[CostFunction, ...] = COST_FUNCTIONS,
        timeout_seconds: float = 30.0,
        verbose: bool = True) -> ExperimentResult:
    """Run every baseline x cost-function combination (plus the original).

    ``result.data`` maps ``(algorithm, variant)`` to a
    :class:`~repro.report.WorkloadResult` where ``variant`` is
    ``"original"`` or a Phi name.
    """
    database = dbcache.build("imdb", scale=scale, index_config=IndexConfig.PK_FK)
    queries = job_queries(families=families)
    config = BaselineConfig(timeout_seconds=timeout_seconds)

    results: dict[tuple[str, str], WorkloadResult] = {}
    for algorithm in algorithms:
        baseline_cls = _BASELINES[algorithm]
        variants = {"original": baseline_cls}
        for cost_function in cost_functions:
            variants[cost_function.value] = _with_phi_ordering(baseline_cls,
                                                               cost_function)
        for variant_name, cls in variants.items():
            result = WorkloadResult(algorithm=f"{algorithm}/{variant_name}")
            runner = cls(database, Optimizer(database), config=config)
            for query in queries:
                result.reports.append(runner.run(query))
            results[(algorithm, variant_name)] = result

    headers = ["SSA \\ Algorithm"] + list(algorithms)
    rows = []
    for variant in [cf.value for cf in cost_functions] + ["original"]:
        row = [variant]
        for algorithm in algorithms:
            row.append(format_seconds(results[(algorithm, variant)].total_time))
        rows.append(row)

    workloads = {f"{alg}/{variant}": res for (alg, variant), res in results.items()}
    outcome = ExperimentResult(
        name="table5_existing_costfn",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "families": families,
                "algorithms": list(algorithms),
                "cost_functions": [c.value for c in cost_functions],
                "timeout_seconds": timeout_seconds},
        data=results,
        workloads=workloads,
        summary=base_summary(workloads),
        tables=[format_table(headers, rows,
                             title="Table 5: existing re-optimizers with Phi orderings")],
    )
    if verbose:
        print(outcome.render())
    return outcome
