"""Morsel-parallel execution microbenchmark (beyond the paper).

Measures the intra-query scaling of the morsel scheduler
(:mod:`repro.executor.morsels`) on the two fanned-out operators:

* **scan_low_sel** -- a five-predicate conjunction over the unclustered
  ``events`` table in which every predicate keeps most rows, so each
  fused pass (compare + survivor gather) touches nearly the whole
  morsel: per-row numpy kernel time dominates and the GIL is released
  for most of it, which is exactly the regime morsel parallelism
  targets.
* **join_probe** -- ``events |x| users`` with semijoin pushdown off, so
  the full probe side reaches the hash join and is probed morsel by
  morsel against the shared sorted build side.

Both scenarios sweep the worker count (1/2/4/8 by default) with a fixed
morsel size of ``rows // 8`` and report per-cell times, speedups over
``workers=1``, and the morsel counters.  Every cell cross-checks its
result cardinality against the ``workers=1`` cell, so a scheduling bug
can never hide behind a good scaling number.  Note that the speedups are
bounded by the machine: ``summary["cpus"]`` records ``os.cpu_count()``
so a 1.0x on a single-core box is interpretable (the correctness
cross-checks still run there).

Timing accounting matches the other microbenchmarks: best-of-``repeats``
executor wall time, planner excluded (the plans are hand-built).
"""

from __future__ import annotations

import os
import time

from repro.bench.artifacts import ExperimentResult
from repro.bench.reporting import format_table
from repro.executor.executor import Executor, MorselScheduler
from repro.experiments.bench_compiled_scan import build_events_database
from repro.experiments.registry import experiment
from repro.plan.expressions import Between, ColumnRef, Comparison, JoinPredicate
from repro.plan.logical import AggregateSpec, RelationRef
from repro.plan.physical import JoinNode, PhysicalPlan, ScanNode

PAPER_ARTIFACT = "Morsel-parallel scaling microbenchmark (beyond the paper)"

DEFAULT_WORKERS_SWEEP = (1, 2, 4, 8)


def _ref(column: str) -> ColumnRef:
    return ColumnRef("events", column)


def _scan_plan() -> PhysicalPlan:
    """The low-selectivity scan: every predicate keeps most of its input."""
    filters = (
        Between(_ref("e_a"), 0, 949),
        Comparison(_ref("e_c"), ">", -3.0),
        Between(_ref("e_b"), 0, 97),
        Comparison(_ref("e_c"), "<", 3.0),
        Comparison(_ref("e_a"), "!=", 500),
    )
    return PhysicalPlan(
        query_name="morsels-scan-low-sel",
        root=ScanNode(relation=RelationRef.base("events", "events"),
                      filters=filters),
        aggregates=(AggregateSpec("count", None, "row_count"),),
    )


def _join_plan() -> PhysicalPlan:
    """events |x| users on the FK: the probe side is the whole fact table."""
    probe = ScanNode(relation=RelationRef.base("events", "events"))
    build = ScanNode(relation=RelationRef.base("users", "users"))
    root = JoinNode(left=probe, right=build,
                    predicates=(JoinPredicate(ColumnRef("events", "e_user"),
                                              ColumnRef("users", "u_id")),))
    return PhysicalPlan(
        query_name="morsels-join-probe", root=root,
        aggregates=(AggregateSpec("count", None, "row_count"),),
    )


def _measure(executor: Executor, plan: PhysicalPlan, repeats: int):
    """Best-of-``repeats`` execution: (best seconds, last ExecutionResult)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = executor.execute(plan)
        best = min(best, time.perf_counter() - start)
    return best, result


@experiment(artifact=PAPER_ARTIFACT,
            defaults={"num_rows": 200_000, "repeats": 3})
def run(scale: float = 1.0,
        num_rows: int = 400_000,
        repeats: int = 3,
        workers: int | None = None,
        workers_sweep: tuple[int, ...] = DEFAULT_WORKERS_SWEEP,
        seed: int = 13,
        verbose: bool = True) -> ExperimentResult:
    """Sweep scenario x worker count and report scaling over ``workers=1``.

    ``workers`` (e.g. the CLI's ``--workers``) restricts the sweep to
    ``(1, workers)`` -- the smoke configuration; ``workers_sweep`` sets
    it explicitly.  ``result.data`` is ``{"grid": {scenario: {workers:
    cell}}, "speedups": ..., "headline": ...}`` where every cell holds
    ``seconds``, ``rows``, ``morsels_total``, ``morsel_workers`` and
    ``parallel_scan_rows``.
    """
    rows = max(int(round(num_rows * scale)), 50_000)
    if workers is not None:
        workers_sweep = tuple(sorted({1, int(workers)}))
    workers_sweep = tuple(dict.fromkeys(int(w) for w in workers_sweep))
    if 1 not in workers_sweep:
        workers_sweep = (1,) + workers_sweep
    #: Eight morsels regardless of scale: enough to balance four workers,
    #: large enough that numpy kernel time dwarfs dispatch overhead.
    morsel_rows = max(rows // 8, 16_384)

    database = build_events_database(rows, dict_encode=True, seed=seed,
                                     block_size=4096)
    scenarios = {"scan_low_sel": _scan_plan(), "join_probe": _join_plan()}

    grid: dict[str, dict[int, dict]] = {name: {} for name in scenarios}
    for width in workers_sweep:
        scheduler = MorselScheduler(width, morsel_rows=morsel_rows)
        try:
            # Semijoin pushdown off: join_probe must exercise the full
            # morsel-parallel probe, not a pre-pruned one.
            executor = Executor(database, semijoin=False,
                                morsel_scheduler=scheduler)
            for name, plan in scenarios.items():
                seconds, result = _measure(executor, plan, repeats)
                grid[name][width] = {
                    "seconds": seconds,
                    "rows": int(result.table.column("row_count")[0]),
                    "morsels_total": result.morsels_total,
                    "morsel_workers": result.morsel_workers,
                    "parallel_scan_rows": result.parallel_scan_rows,
                }
        finally:
            scheduler.shutdown()

    # Cross-check: the worker count may never change a result cardinality,
    # and a multi-worker cell must actually have fanned out.
    for name, cells in grid.items():
        baseline = cells[1]
        for width, cell in cells.items():
            if cell["rows"] != baseline["rows"]:
                raise AssertionError(
                    f"morsel scaling ({name}, workers={width}) returned "
                    f"{cell['rows']} rows, workers=1 returned "
                    f"{baseline['rows']}")
            if width > 1 and cell["morsels_total"] == 0:
                raise AssertionError(
                    f"morsel scaling ({name}, workers={width}) never "
                    f"dispatched a morsel")
        if baseline["morsels_total"] != 0:
            raise AssertionError(
                f"workers=1 cell of {name} dispatched morsels")

    speedups = {
        name: {width: cells[1]["seconds"] / cell["seconds"]
               for width, cell in cells.items()
               if width != 1 and cell["seconds"] > 0}
        for name, cells in grid.items()
    }
    top = max(width for width in workers_sweep)
    headline = {
        "cpus": os.cpu_count(),
        "workers_sweep": list(workers_sweep),
        "scan_speedup_at_4": speedups["scan_low_sel"].get(4),
        "join_speedup_at_4": speedups["join_probe"].get(4),
        "scan_speedup_at_max": speedups["scan_low_sel"].get(top),
        "join_speedup_at_max": speedups["join_probe"].get(top),
    }

    headers = ["scenario", "workers", "rows", "morsels", "time",
               "speedup vs 1 worker"]
    table_rows = []
    for name, cells in grid.items():
        for width, cell in sorted(cells.items()):
            speedup = speedups[name].get(width)
            table_rows.append([
                name, width, cell["rows"], cell["morsels_total"],
                f"{cell['seconds'] * 1e3:.3f} ms",
                f"{speedup:.2f}x" if speedup else "-",
            ])
    tables = [format_table(headers, table_rows,
                           title=f"Morsel-parallel scaling ({rows} rows, "
                                 f"{morsel_rows} rows/morsel, best of "
                                 f"{repeats}, {os.cpu_count()} cpus)")]

    summary = dict(headline, num_rows=rows, morsel_rows=morsel_rows)
    outcome = ExperimentResult(
        name="bench_morsels",
        artifact=PAPER_ARTIFACT,
        params={"scale": scale, "num_rows": num_rows, "repeats": repeats,
                "workers_sweep": list(workers_sweep), "seed": seed},
        data={"grid": grid, "speedups": speedups, "headline": headline},
        workloads={},
        summary=summary,
        tables=tables,
    )
    if verbose:
        print(outcome.render())
    return outcome
