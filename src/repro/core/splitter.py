"""The QuerySplit driver loop (Figure 5 of the paper).

The :class:`QuerySplitExecutor` implements the full algorithm:

1. run the Query Splitting Algorithm to obtain a covering subquery set;
2. at every iteration ask the optimizer for the estimated cost ``C(q)`` and
   output cardinality ``S(q)`` of every remaining subquery, and select the
   one minimizing the configured cost function Phi;
3. execute it; if it overlaps with remaining subqueries, materialize the
   result as a temporary table (optionally collecting statistics) and
   substitute it into the overlapping subqueries; otherwise push the result
   to the result set;
4. repeat until the subquery set is empty, then merge the result set by
   Cartesian product and apply the query's final projection / aggregation.

Non-SPJ queries are handled via :mod:`repro.core.nonspj`: QuerySplit runs on
each SPJ block and the non-SPJ operators consume the materialized results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.catalog.analyze import analyze_columns
from repro.catalog.statistics import TableStats
from repro.core.nonspj import execute_query_tree
from repro.core.qsa import QSAStrategy, generate_subqueries
from repro.core.ssa import CostFunction, SubqueryEstimate, select_subquery
from repro.executor.executor import (
    ExecutionError,
    Executor,
    _scalar_aggregate,
    group_aggregate,
)
from repro.executor.joins import JoinOverflowError
from repro.executor.morsels import MorselCancelled
from repro.optimizer.optimizer import Optimizer
from repro.plan.expressions import ColumnRef
from repro.plan.logical import Query, RelationRef, SPJQuery
from repro.plan.physical import PhysicalPlan
from repro.report import ExecutionReport, IterationRecord
from repro.storage.database import Database
from repro.storage.table import DataTable


class QueryTimeout(Exception):
    """Raised internally when a query exceeds its execution-time budget."""


@dataclass
class QuerySplitConfig:
    """Configuration of the QuerySplit algorithm."""

    qsa_strategy: QSAStrategy = QSAStrategy.FK_CENTER
    cost_function: CostFunction = CostFunction.PHI4
    collect_statistics: bool = True
    timeout_seconds: float | None = None


class QuerySplitExecutor:
    """Runs queries with the QuerySplit re-optimization algorithm."""

    name = "QuerySplit"

    def __init__(self, database: Database, optimizer: Optimizer,
                 executor: Executor | None = None,
                 config: QuerySplitConfig | None = None):
        self.database = database
        self.optimizer = optimizer
        self.executor = executor or Executor(database)
        self.config = config or QuerySplitConfig()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, query: Query) -> ExecutionReport:
        """Execute ``query`` and return the execution report."""
        report = ExecutionReport(query_name=query.name, algorithm=self.name,
                                 total_time=0.0)
        self._deadline = (time.perf_counter() + self.config.timeout_seconds
                          if self.config.timeout_seconds is not None else None)
        # Share the cooperative deadline with the executor's morsel
        # fan-out (MorselCancelled unwinds like QueryTimeout below).
        self.executor.deadline = self._deadline
        planner_before = self.optimizer.invocations
        try:
            final = execute_query_tree(
                query.root, lambda spj: self._run_spj(spj, report))
            report.final_table = final
            report.final_rows = final.num_rows
        except (QueryTimeout, MorselCancelled, JoinOverflowError,
                ExecutionError):
            # Exceeding the join-size cap or the time budget is the Python
            # engine's analogue of the paper's 1000 s query timeout.
            report.timed_out = True
            if self.config.timeout_seconds is not None:
                report.total_time = max(report.total_time, self.config.timeout_seconds)
        finally:
            self.executor.deadline = None
            report.planner_invocations = self.optimizer.invocations - planner_before
            self.database.drop_temp_tables()
        return report

    # ------------------------------------------------------------------
    # SPJ execution (the QuerySplit loop proper)
    # ------------------------------------------------------------------
    def _run_spj(self, spj: SPJQuery, report: ExecutionReport) -> DataTable:
        subqueries = generate_subqueries(spj, self.database.schema,
                                         self.config.qsa_strategy)
        global_plan = None
        if self.config.cost_function is CostFunction.GLOBAL_DEEP:
            global_plan = self.optimizer.plan(spj)

        remaining = list(subqueries)
        result_tables: list[DataTable] = []
        consumed: set[str] = set()
        iteration = len(report.iterations)

        while remaining:
            self._check_timeout(report)
            estimates = [
                SubqueryEstimate(sq, *self.optimizer.estimate(sq))
                for sq in remaining
            ]
            idx = select_subquery(estimates, self.config.cost_function,
                                  global_plan, frozenset(consumed))
            subquery = remaining.pop(idx)

            extra = self._columns_to_retain(subquery, remaining, spj)
            plan = self.optimizer.plan(subquery)
            result = self.executor.execute(plan, extra_columns=extra)
            report.total_time += result.wall_time

            overlapping = [
                q for q in remaining
                if q.covered_aliases() & subquery.covered_aliases()
            ]
            materialized = bool(overlapping)
            stats_collected = False
            analyze_time = 0.0
            if overlapping:
                stats, analyze_time, stats_collected = self._collect_stats(result.table)
                report.total_time += analyze_time
                if stats_collected:
                    report.stats_collections += 1
                temp_name = self.database.register_temp(
                    result.table, stats, subquery.covered_aliases())
                temp_ref = RelationRef.temp(temp_name, subquery.covered_aliases())
                remaining = self._substitute(remaining, temp_ref)
                if not remaining:
                    # Every other subquery became redundant after substitution:
                    # the temporary we just built carries the final data.
                    result_tables.append(result.table)
            else:
                result_tables.append(result.table)

            consumed.update(subquery.covered_aliases())
            report.iterations.append(IterationRecord(
                index=iteration,
                description=subquery.name,
                aliases=subquery.covered_aliases(),
                result_rows=result.table.num_rows,
                wall_time=result.wall_time + analyze_time,
                memory_bytes=result.table.memory_bytes,
                materialized=materialized,
                replanned=True,
                stats_collected=stats_collected,
            ))
            iteration += 1

        finalize_start = time.perf_counter()
        final = self._finalize(result_tables, spj)
        report.total_time += time.perf_counter() - finalize_start
        return final

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_timeout(self, report: ExecutionReport) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise QueryTimeout()

    def _collect_stats(self, table: DataTable) -> tuple[TableStats, float, bool]:
        start = time.perf_counter()
        if self.config.collect_statistics:
            stats = analyze_columns(dict(table.columns), num_rows=table.num_rows)
            return stats, time.perf_counter() - start, True
        return (TableStats.row_count_only(table.num_rows),
                time.perf_counter() - start, False)

    @staticmethod
    def _substitute(remaining: list[SPJQuery], temp: RelationRef) -> list[SPJQuery]:
        substituted = []
        for q in remaining:
            if q.covered_aliases() & temp.covered_aliases:
                q = q.substitute(temp)
            # Drop subqueries reduced to a bare re-scan of the temporary.
            if (len(q.relations) == 1 and q.relations[0].is_temp
                    and not q.filters and not q.join_predicates):
                continue
            substituted.append(q)
        return substituted

    @staticmethod
    def _columns_to_retain(subquery: SPJQuery, remaining: list[SPJQuery],
                           spj: SPJQuery) -> tuple[ColumnRef, ...]:
        """Columns of ``subquery`` that later iterations or the output need."""
        covered = subquery.covered_aliases()
        needed: list[ColumnRef] = []
        for ref in spj.output_columns():
            if ref.alias in covered:
                needed.append(ref)
        for other in remaining:
            for pred in other.join_predicates:
                for ref in (pred.left, pred.right):
                    if ref.alias in covered:
                        needed.append(ref)
            for pred in other.filters:
                for ref in pred.column_refs():
                    if ref.alias in covered:
                        needed.append(ref)
        return tuple(dict.fromkeys(needed))

    def _finalize(self, result_tables: list[DataTable], spj: SPJQuery) -> DataTable:
        """Cartesian-merge the result set and apply the final projection."""
        if not result_tables:
            return DataTable(name=spj.name, columns={})
        columns = dict(result_tables[0].columns)
        rows = result_tables[0].num_rows
        for table in result_tables[1:]:
            other_rows = table.num_rows
            columns = {
                name: np.repeat(arr, other_rows) for name, arr in columns.items()}
            for name, arr in table.columns.items():
                columns[name] = np.tile(arr, rows)
            rows = rows * other_rows
        if spj.aggregates:
            return (_scalar_aggregate(columns, spj.aggregates)
                    if not spj.projections
                    else group_aggregate(columns, spj.projections, spj.aggregates))
        if spj.projections:
            wanted = {ref.qualified for ref in spj.projections}
            columns = {name: arr for name, arr in columns.items() if name in wanted}
        return DataTable(name=spj.name, columns=columns)
