"""Directed join graphs (Section 4.1, Figure 8 of the paper).

Every relation referenced by the query becomes a vertex; every equi-join
predicate becomes an edge.  Edges derived from primary/foreign-key joins are
directed from the referencing side (the *R-relation*, i.e. "relationship" /
fact table) to the referenced side (the *E-relation*, i.e. "entity" /
dimension table); joins between relations of the same kind -- or joins that
are not PK-FK joins at all -- are bidirectional.

Redundant join predicates that close cycles in the graph (typically equality
predicates implied by transitivity, such as the ``ci.movie_id = mk.movie_id``
edge of JOB query 6d) are removed, preferring to drop bidirectional edges,
exactly as described in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.catalog.schema import Schema
from repro.plan.expressions import JoinPredicate
from repro.plan.logical import SPJQuery


@dataclass(frozen=True)
class JoinEdge:
    """One edge of the directed join graph."""

    source: str
    target: str
    predicate: JoinPredicate
    bidirectional: bool = False
    kind: str = "other"

    def endpoints(self) -> frozenset[str]:
        """The two vertices the edge connects."""
        return frozenset((self.source, self.target))


@dataclass
class JoinGraph:
    """The directed join graph of an SPJ query."""

    vertices: tuple[str, ...]
    edges: list[JoinEdge] = field(default_factory=list)
    removed_edges: list[JoinEdge] = field(default_factory=list)

    def outgoing(self, vertex: str) -> list[JoinEdge]:
        """Edges leaving ``vertex`` (bidirectional edges leave both endpoints)."""
        result = []
        for edge in self.edges:
            if edge.source == vertex:
                result.append(edge)
            elif edge.bidirectional and edge.target == vertex:
                result.append(edge)
        return result

    def incoming(self, vertex: str) -> list[JoinEdge]:
        """Edges entering ``vertex`` (bidirectional edges enter both endpoints)."""
        result = []
        for edge in self.edges:
            if edge.target == vertex:
                result.append(edge)
            elif edge.bidirectional and edge.source == vertex:
                result.append(edge)
        return result

    def neighbors_out(self, vertex: str) -> list[str]:
        """Vertices reachable over outgoing edges of ``vertex``."""
        targets = []
        for edge in self.outgoing(vertex):
            other = edge.target if edge.source == vertex else edge.source
            if other not in targets:
                targets.append(other)
        return targets

    def centers(self) -> list[str]:
        """Vertices with at least one outgoing edge (subquery centers)."""
        return [v for v in self.vertices if self.outgoing(v)]

    def isolated(self) -> list[str]:
        """Vertices with no edge at all (cross-product relations)."""
        connected = set()
        for edge in self.edges:
            connected.add(edge.source)
            connected.add(edge.target)
        return [v for v in self.vertices if v not in connected]

    def reversed(self) -> "JoinGraph":
        """The graph with all directed edges reversed (PK-Center strategy)."""
        return JoinGraph(
            vertices=self.vertices,
            edges=[
                JoinEdge(source=e.target, target=e.source, predicate=e.predicate,
                         bidirectional=e.bidirectional, kind=e.kind)
                for e in self.edges
            ],
            removed_edges=list(self.removed_edges),
        )


def build_join_graph(query: SPJQuery, schema: Schema,
                     remove_redundant: bool = True) -> JoinGraph:
    """Build the directed join graph of ``query`` using PK/FK metadata."""
    vertices = tuple(r.alias for r in query.relations)
    table_of = {r.alias: r.table_name for r in query.relations}
    edges: list[JoinEdge] = []
    for pred in query.join_predicates:
        left_alias, right_alias = pred.left.alias, pred.right.alias
        left_table = table_of.get(left_alias, left_alias)
        right_table = table_of.get(right_alias, right_alias)
        kind = schema.join_kind(left_table, pred.left.column,
                                right_table, pred.right.column)
        if kind == "pk-fk":
            if schema.is_fk_reference(left_table, pred.left.column,
                                      right_table, pred.right.column):
                source, target = left_alias, right_alias
            else:
                source, target = right_alias, left_alias
            edges.append(JoinEdge(source=source, target=target, predicate=pred,
                                  bidirectional=False, kind=kind))
        else:
            edges.append(JoinEdge(source=left_alias, target=right_alias,
                                  predicate=pred, bidirectional=True, kind=kind))

    graph = JoinGraph(vertices=vertices, edges=edges)
    if remove_redundant:
        _remove_redundant_edges(graph)
    return graph


def _remove_redundant_edges(graph: JoinGraph) -> None:
    """Break cycles in the (undirected view of the) join graph.

    Edges are removed one at a time until the graph is acyclic, preferring
    bidirectional (non-PK-FK) edges, exactly as the paper prescribes for
    join cycles like ``mk -- t -- ci -- mk`` in JOB query 6d.
    """
    undirected = nx.MultiGraph()
    undirected.add_nodes_from(graph.vertices)
    for i, edge in enumerate(graph.edges):
        undirected.add_edge(edge.source, edge.target, key=i)

    while True:
        try:
            cycle = nx.find_cycle(undirected)
        except nx.NetworkXNoCycle:
            break
        # Choose the edge of the cycle to remove: bidirectional edges first.
        cycle_keys = [key for (_, _, key) in cycle]
        cycle_edges = [(key, graph.edges[key]) for key in cycle_keys]
        bidirectional = [item for item in cycle_edges if item[1].bidirectional]
        key, edge = (bidirectional or cycle_edges)[0]
        undirected.remove_edge(edge.source, edge.target, key=key)
        graph.removed_edges.append(edge)

    kept_keys = {key for (_, _, key) in undirected.edges(keys=True)}
    graph.edges[:] = [edge for i, edge in enumerate(graph.edges) if i in kept_keys]
