"""Subquery covering checks (Definition 1 of the paper).

A set of subqueries Q *covers* an SPJ query q when

1. the union of the subqueries' relations equals q's relations, and
2. the union of the subqueries' predicates logically implies q's predicates.

Covering is the property that makes the QuerySplit loop produce the same
result as executing q directly (Theorem 1); the QSA strategies all guarantee
it by construction, and the checks here are used both as runtime assertions
and as the target of the property-based tests.
"""

from __future__ import annotations

from repro.plan.logical import SPJQuery


def covers(subqueries: list[SPJQuery], query: SPJQuery) -> bool:
    """True if ``subqueries`` covers ``query`` per Definition 1."""
    return not coverage_gaps(subqueries, query)


def coverage_gaps(subqueries: list[SPJQuery], query: SPJQuery) -> list[str]:
    """Human-readable descriptions of every violated covering condition."""
    problems: list[str] = []

    covered_aliases: set[str] = set()
    for sub in subqueries:
        covered_aliases.update(sub.covered_aliases())
    missing_aliases = set(query.covered_aliases()) - covered_aliases
    extra_aliases = covered_aliases - set(query.covered_aliases())
    if missing_aliases:
        problems.append(f"relations not covered: {sorted(missing_aliases)}")
    if extra_aliases:
        problems.append(f"subqueries reference unknown relations: {sorted(extra_aliases)}")

    covered_filters = {pred for sub in subqueries for pred in sub.filters}
    for pred in query.filters:
        if pred not in covered_filters:
            problems.append(f"filter not covered: {pred}")

    covered_joins = {_canonical_join(pred) for sub in subqueries
                     for pred in sub.join_predicates}
    implied = _equivalence_closure(covered_joins)
    for pred in query.join_predicates:
        if _canonical_join(pred) not in implied:
            problems.append(f"join predicate not covered/implied: {pred}")
    return problems


def assert_covers(subqueries: list[SPJQuery], query: SPJQuery) -> None:
    """Raise ``AssertionError`` listing every covering violation, if any."""
    problems = coverage_gaps(subqueries, query)
    if problems:
        raise AssertionError(
            f"subquery set does not cover query {query.name!r}: " + "; ".join(problems))


def _canonical_join(pred) -> frozenset:
    """Order-insensitive representation of an equi-join predicate."""
    return frozenset(((pred.left.alias, pred.left.column),
                      (pred.right.alias, pred.right.column)))


def _equivalence_closure(joins: set[frozenset]) -> set[frozenset]:
    """Close a set of equality predicates under transitivity.

    ``a = b`` and ``b = c`` imply ``a = c``; the closure is what "logically
    implies" means for the equi-join predicates handled here.
    """
    # Union-find over the columns appearing in the predicates.
    parent: dict[tuple[str, str], tuple[str, str]] = {}

    def find(x):
        parent.setdefault(x, x)
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for pred in joins:
        cols = list(pred)
        if len(cols) == 2:
            union(cols[0], cols[1])

    closure: set[frozenset] = set(joins)
    groups: dict[tuple[str, str], list[tuple[str, str]]] = {}
    for col in parent:
        groups.setdefault(find(col), []).append(col)
    for members in groups.values():
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                closure.add(frozenset((a, b)))
    return closure
