"""Subquery Selection Algorithm (SSA) cost functions (Section 4.2, Table 2).

At every QuerySplit iteration the SSA ranks the remaining subqueries by a
cost function Phi of the optimizer's estimated execution cost ``C(q)`` and
estimated output cardinality ``S(q)`` and executes the subquery with the
smallest value:

=========  ==========================
Phi1       C(q)
Phi2       C(q) * log(S(q))
Phi3       C(q) * sqrt(S(q))
Phi4       C(q) * S(q)        (the paper's default)
Phi5       S(q)
=========  ==========================

``global_deep`` is the baseline ordering policy evaluated in Table 3: it
follows the global physical plan, selecting the subquery whose relation set
contains the relations of the deepest not-yet-consumed join of that plan.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.plan.logical import SPJQuery
from repro.plan.physical import PhysicalPlan


class CostFunction(enum.Enum):
    """Selectable SSA ranking policies."""

    PHI1 = "phi1"
    PHI2 = "phi2"
    PHI3 = "phi3"
    PHI4 = "phi4"
    PHI5 = "phi5"
    GLOBAL_DEEP = "global_deep"


def phi1(cost: float, rows: float) -> float:
    """Phi1 = C(q)."""
    return cost


def phi2(cost: float, rows: float) -> float:
    """Phi2 = C(q) * log(S(q))."""
    return cost * math.log(max(rows, 2.0))


def phi3(cost: float, rows: float) -> float:
    """Phi3 = C(q) * sqrt(S(q))."""
    return cost * math.sqrt(max(rows, 1.0))


def phi4(cost: float, rows: float) -> float:
    """Phi4 = C(q) * S(q) (the paper's default)."""
    return cost * max(rows, 1.0)


def phi5(cost: float, rows: float) -> float:
    """Phi5 = S(q)."""
    return rows


#: Mapping from the enum to the scoring callables (GLOBAL_DEEP is handled
#: separately because it needs the global physical plan, not C/S estimates).
SSA_FUNCTIONS = {
    CostFunction.PHI1: phi1,
    CostFunction.PHI2: phi2,
    CostFunction.PHI3: phi3,
    CostFunction.PHI4: phi4,
    CostFunction.PHI5: phi5,
}


@dataclass(frozen=True)
class SubqueryEstimate:
    """The optimizer's estimates for one candidate subquery."""

    subquery: SPJQuery
    cost: float
    rows: float


def select_subquery(estimates: list[SubqueryEstimate],
                    cost_function: CostFunction,
                    global_plan: PhysicalPlan | None = None,
                    consumed_aliases: frozenset[str] = frozenset()) -> int:
    """Index of the subquery to execute next.

    Parameters
    ----------
    estimates:
        Estimated cost / cardinality of every remaining subquery.
    cost_function:
        Which ranking policy to apply.
    global_plan:
        The global physical plan (required by ``GLOBAL_DEEP``).
    consumed_aliases:
        Aliases already executed in previous iterations; ``GLOBAL_DEEP`` skips
        plan joins that are already fully consumed.
    """
    if not estimates:
        raise ValueError("no subqueries to select from")
    if cost_function is CostFunction.GLOBAL_DEEP:
        return _select_global_deep(estimates, global_plan, consumed_aliases)
    scorer = SSA_FUNCTIONS[cost_function]
    scores = [scorer(est.cost, est.rows) for est in estimates]
    return min(range(len(estimates)), key=scores.__getitem__)


def _select_global_deep(estimates: list[SubqueryEstimate],
                        global_plan: PhysicalPlan | None,
                        consumed_aliases: frozenset[str]) -> int:
    if global_plan is None:
        raise ValueError("GLOBAL_DEEP selection requires the global physical plan")
    # Walk the plan's joins from the deepest up and find the first whose
    # relations are not yet fully consumed; pick a subquery covering them.
    for join in global_plan.join_nodes():
        relations = join.covered_aliases()
        if relations <= consumed_aliases:
            continue
        for i, est in enumerate(estimates):
            if relations <= est.subquery.covered_aliases():
                return i
        # No subquery is a superset of this join: fall back to the subquery
        # with the largest overlap with it.
        overlaps = [
            len(relations & est.subquery.covered_aliases()) for est in estimates
        ]
        if max(overlaps) > 0:
            return max(range(len(estimates)), key=overlaps.__getitem__)
    # Every join is consumed (or the plan has none): default to Phi4 ordering.
    scores = [phi4(est.cost, est.rows) for est in estimates]
    return min(range(len(estimates)), key=scores.__getitem__)
