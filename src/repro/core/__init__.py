"""QuerySplit: the paper's primary contribution.

* :mod:`repro.core.join_graph` -- the directed join graph built from
  primary/foreign-key relationships (Section 4.1, Figure 8);
* :mod:`repro.core.qsa` -- the Query Splitting Algorithm with the FK-Center,
  PK-Center, and MinSubquery strategies;
* :mod:`repro.core.ssa` -- the Subquery Selection Algorithm with the cost
  functions Phi1..Phi5 (Table 2) and the ``global_deep`` baseline policy;
* :mod:`repro.core.splitter` -- the QuerySplit driver loop of Figure 5
  (execute, materialize, substitute, re-optimize);
* :mod:`repro.core.subquery` -- subquery covering checks (Definition 1);
* :mod:`repro.core.nonspj` -- the non-SPJ extension of Section 3.3.
"""

from repro.core.join_graph import JoinGraph, build_join_graph
from repro.core.qsa import QSAStrategy, generate_subqueries
from repro.core.ssa import CostFunction, SSA_FUNCTIONS, select_subquery
from repro.core.subquery import covers, assert_covers
from repro.core.splitter import QuerySplitConfig, QuerySplitExecutor

__all__ = [
    "JoinGraph",
    "build_join_graph",
    "QSAStrategy",
    "generate_subqueries",
    "CostFunction",
    "SSA_FUNCTIONS",
    "select_subquery",
    "covers",
    "assert_covers",
    "QuerySplitConfig",
    "QuerySplitExecutor",
]
