"""Non-SPJ query support (Section 3.3).

Non-SPJ queries are trees of aggregation / union operators whose leaves are
SPJ blocks.  The paper's extension segments the plan at the non-SPJ operators
and runs QuerySplit (or any baseline) on each SPJ block bottom-up,
materializing each operator's output before the parent consumes it.

:func:`execute_query_tree` implements that segmentation generically: it takes
a callback that knows how to execute one SPJ block (this is what
differentiates QuerySplit from the baselines) and applies the non-SPJ
operators on the materialized block outputs.
"""

from __future__ import annotations

from typing import Callable

from repro.executor.executor import group_aggregate, union_all
from repro.plan.logical import (
    AggregateNode,
    QueryPlanNode,
    SPJNode,
    SPJQuery,
    UnionNode,
)
from repro.storage.table import DataTable

#: Signature of the per-SPJ-block execution callback.
SPJRunner = Callable[[SPJQuery], DataTable]


def execute_query_tree(root: QueryPlanNode, run_spj: SPJRunner) -> DataTable:
    """Execute a (possibly non-SPJ) query tree bottom-up.

    Parameters
    ----------
    root:
        The query tree.
    run_spj:
        Callback executing one SPJ block and returning its result table with
        qualified column names.
    """
    if isinstance(root, SPJNode):
        return run_spj(root.query)
    if isinstance(root, AggregateNode):
        child_node = root.child
        if isinstance(child_node, SPJNode):
            # Make sure the SPJ block keeps the columns the aggregation needs.
            child = run_spj(_with_aggregation_columns(child_node.query, root))
        else:
            child = execute_query_tree(child_node, run_spj)
        return group_aggregate(dict(child.columns), root.group_by, root.aggregates)
    if isinstance(root, UnionNode):
        tables = [execute_query_tree(child, run_spj) for child in root.inputs]
        return union_all(tables)
    raise TypeError(f"unsupported query tree node {type(root).__name__}")


def _with_aggregation_columns(spj: SPJQuery, node: AggregateNode) -> SPJQuery:
    """Extend an SPJ block's projection with its parent aggregation's inputs."""
    if spj.aggregates:
        return spj
    needed = tuple(node.group_by) + tuple(
        spec.column for spec in node.aggregates if spec.column is not None)
    combined = tuple(dict.fromkeys(spj.projections + needed))
    if combined == spj.projections:
        return spj
    return spj.with_projections(combined)


def count_spj_blocks(root: QueryPlanNode) -> int:
    """Number of SPJ blocks in a query tree."""
    return len(root.spj_leaves())
