"""Query Splitting Algorithm (QSA) strategies (Section 4.1).

Three strategies are implemented, matching the paper's evaluation:

* **FK-Center** (the paper's default, also called "RCenter"): every relation
  with at least one outgoing edge in the directed join graph -- i.e. every
  R-relation holding foreign keys -- becomes the center of one subquery
  together with all relations it points to.  This keeps as many
  non-expanding PK-FK joins inside each subquery as possible.
* **PK-Center** ("ECenter"): the dual strategy on the reversed graph, used as
  an ablation baseline.
* **MinSubquery**: one two-relation subquery per join predicate -- the finest
  possible granularity.

All strategies guarantee the covering property of Definition 1; a repair step
adds minimal subqueries for any join predicate whose endpoints never co-occur
(which can happen after redundant-edge removal on unusual join graphs).
"""

from __future__ import annotations

import enum

from repro.catalog.schema import Schema
from repro.core.join_graph import JoinGraph, build_join_graph
from repro.core.subquery import assert_covers, coverage_gaps
from repro.plan.logical import RelationRef, SPJQuery


class QSAStrategy(enum.Enum):
    """Available subquery-generation strategies."""

    FK_CENTER = "fk_center"
    PK_CENTER = "pk_center"
    MIN_SUBQUERY = "min_subquery"


def generate_subqueries(query: SPJQuery, schema: Schema,
                        strategy: QSAStrategy = QSAStrategy.FK_CENTER,
                        validate: bool = True) -> list[SPJQuery]:
    """Split ``query`` into a covering set of subqueries."""
    if len(query.relations) <= 2:
        subqueries = [_make_subquery(query, list(query.relations), 0)]
    elif strategy is QSAStrategy.MIN_SUBQUERY:
        subqueries = _min_subqueries(query)
    else:
        graph = build_join_graph(query, schema)
        if strategy is QSAStrategy.PK_CENTER:
            graph = graph.reversed()
        subqueries = _center_subqueries(query, graph)
    subqueries = _repair_coverage(query, subqueries)
    if validate:
        assert_covers(subqueries, query)
    return subqueries


# ----------------------------------------------------------------------
# Center-based strategies (FK-Center / PK-Center)
# ----------------------------------------------------------------------
def _center_subqueries(query: SPJQuery, graph: JoinGraph) -> list[SPJQuery]:
    subqueries: list[SPJQuery] = []
    counter = 0
    seen_alias_sets: set[frozenset[str]] = set()
    for center in graph.centers():
        members = [center] + graph.neighbors_out(center)
        alias_set = frozenset(members)
        if alias_set in seen_alias_sets:
            continue
        seen_alias_sets.add(alias_set)
        relations = [query.relation(alias) for alias in members]
        subqueries.append(_make_subquery(query, relations, counter))
        counter += 1
    covered = {alias for sub in subqueries for alias in sub.covered_aliases()}
    for alias in query.relation_aliases:
        if alias not in covered:
            subqueries.append(_make_subquery(query, [query.relation(alias)], counter))
            counter += 1
    return subqueries


# ----------------------------------------------------------------------
# MinSubquery strategy
# ----------------------------------------------------------------------
def _min_subqueries(query: SPJQuery) -> list[SPJQuery]:
    subqueries: list[SPJQuery] = []
    counter = 0
    seen_pairs: set[frozenset[str]] = set()
    for pred in query.join_predicates:
        pair = pred.aliases()
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        relations = [query.relation_covering(alias) for alias in sorted(pair)]
        subqueries.append(_make_subquery(query, relations, counter))
        counter += 1
    covered = {alias for sub in subqueries for alias in sub.covered_aliases()}
    for alias in query.relation_aliases:
        if alias not in covered:
            subqueries.append(_make_subquery(query, [query.relation(alias)], counter))
            counter += 1
    return subqueries


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _make_subquery(query: SPJQuery, relations: list[RelationRef],
                   counter: int) -> SPJQuery:
    """Build a subquery over ``relations`` with every internal predicate."""
    covered: set[str] = set()
    for rel in relations:
        covered.update(rel.covered_aliases)
    filters = tuple(
        pred for pred in query.filters
        if all(alias in covered for alias in pred.aliases()))
    joins = tuple(
        pred for pred in query.join_predicates
        if all(alias in covered for alias in pred.aliases()))
    return SPJQuery(
        name=f"{query.name}/S{counter}",
        relations=tuple(relations),
        filters=filters,
        join_predicates=joins,
    )


def _repair_coverage(query: SPJQuery, subqueries: list[SPJQuery]) -> list[SPJQuery]:
    """Add minimal subqueries for any join predicate left uncovered."""
    problems = coverage_gaps(subqueries, query)
    if not problems:
        return subqueries
    covered_joins = {pred for sub in subqueries for pred in sub.join_predicates}
    counter = len(subqueries)
    for pred in query.join_predicates:
        if pred in covered_joins:
            continue
        # Is the predicate inside some subquery's relation set already?  If it
        # is, _make_subquery would have included it, so build a fresh pair.
        relations = [query.relation_covering(alias) for alias in sorted(pred.aliases())]
        subqueries = subqueries + [_make_subquery(query, relations, counter)]
        counter += 1
        covered_joins.update(subqueries[-1].join_predicates)
    return subqueries
