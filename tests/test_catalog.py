"""Unit tests for the catalog subsystem: types, schema, statistics, ANALYZE."""

import numpy as np
import pytest

from repro.catalog.analyze import analyze_columns, analyze_table
from repro.catalog.schema import Column, ForeignKey, Schema, TableSchema
from repro.catalog.statistics import (
    ColumnStats,
    DEFAULT_EQ_SELECTIVITY,
    Histogram,
    TableStats,
)
from repro.catalog.types import DataType, coerce_array, type_of_value
from repro.storage.table import DataTable


class TestDataType:
    def test_numpy_dtypes(self):
        assert DataType.INT.numpy_dtype == np.dtype(np.int64)
        assert DataType.FLOAT.numpy_dtype == np.dtype(np.float64)
        assert DataType.STRING.numpy_dtype == np.dtype(object)

    def test_is_numeric(self):
        assert DataType.INT.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric

    def test_from_numpy(self):
        assert DataType.from_numpy(np.dtype(np.int32)) is DataType.INT
        assert DataType.from_numpy(np.dtype(np.float32)) is DataType.FLOAT
        assert DataType.from_numpy(np.dtype(object)) is DataType.STRING

    def test_coerce_array_int(self):
        arr = coerce_array([1, 2, 3], DataType.INT)
        assert arr.dtype == np.int64

    def test_coerce_array_string(self):
        arr = coerce_array(["a", "b"], DataType.STRING)
        assert arr.dtype == object

    def test_type_of_value(self):
        assert type_of_value(3) is DataType.INT
        assert type_of_value(3.5) is DataType.FLOAT
        assert type_of_value("x") is DataType.STRING

    def test_type_of_value_rejects_bool(self):
        with pytest.raises(TypeError):
            type_of_value(True)


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("x", [Column("a", DataType.INT), Column("a", DataType.INT)])

    def test_primary_key_must_exist(self):
        with pytest.raises(ValueError):
            TableSchema("x", [Column("a", DataType.INT)], primary_key="b")

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(ValueError):
            TableSchema("x", [Column("a", DataType.INT)],
                        foreign_keys=[ForeignKey("b", "y", "id")])

    def test_column_lookup(self, tiny_schema):
        assert tiny_schema.table("t").column("year").dtype is DataType.INT
        assert tiny_schema.table("t").has_column("id")
        assert not tiny_schema.table("t").has_column("missing")

    def test_missing_table_raises(self, tiny_schema):
        with pytest.raises(KeyError):
            tiny_schema.table("nope")

    def test_duplicate_table_rejected(self, tiny_schema):
        with pytest.raises(ValueError):
            tiny_schema.add_table(TableSchema("t", [Column("id", DataType.INT)]))

    def test_referenced_and_referencing(self, tiny_schema):
        assert "t" in tiny_schema.referenced_tables()
        assert "mk" in tiny_schema.referencing_tables()
        assert "mk" not in tiny_schema.referenced_tables()

    def test_is_fk_reference(self, tiny_schema):
        assert tiny_schema.is_fk_reference("mk", "movie_id", "t", "id")
        assert not tiny_schema.is_fk_reference("t", "id", "mk", "movie_id")

    def test_join_kind_pk_fk(self, tiny_schema):
        assert tiny_schema.join_kind("mk", "movie_id", "t", "id") == "pk-fk"
        assert tiny_schema.join_kind("t", "id", "mk", "movie_id") == "pk-fk"

    def test_join_kind_fk_fk(self, tiny_schema):
        assert tiny_schema.join_kind("mk", "movie_id", "ci", "movie_id") == "fk-fk"

    def test_join_kind_other(self, tiny_schema):
        assert tiny_schema.join_kind("t", "year", "k", "id") == "other"

    def test_foreign_key_columns(self, tiny_schema):
        assert tiny_schema.table("ci").foreign_key_columns() == {"movie_id", "person_id"}


class TestHistogram:
    def test_from_values_and_bounds(self):
        values = np.arange(1000, dtype=float)
        hist = Histogram.from_values(values, num_buckets=10)
        assert hist.num_buckets == 10
        assert hist.bounds[0] == 0.0
        assert hist.bounds[-1] == 999.0

    def test_single_value_column_gives_none(self):
        assert Histogram.from_values(np.full(10, 5.0)) is None

    def test_empty_gives_none(self):
        assert Histogram.from_values(np.array([], dtype=float)) is None

    def test_selectivity_le_monotone(self):
        hist = Histogram.from_values(np.arange(1000, dtype=float), num_buckets=20)
        sels = [hist.selectivity_le(v) for v in (0, 100, 500, 999, 2000)]
        assert sels == sorted(sels)
        assert sels[0] <= 0.01
        assert sels[-1] == 1.0

    def test_range_selectivity_roughly_uniform(self):
        hist = Histogram.from_values(np.arange(1000, dtype=float), num_buckets=20)
        sel = hist.selectivity_range(250, 750)
        assert 0.4 < sel < 0.6

    def test_range_selectivity_clamped(self):
        hist = Histogram.from_values(np.arange(100, dtype=float))
        assert hist.selectivity_range(200, 300) == 0.0
        assert hist.selectivity_range(None, None) == 1.0


class TestColumnStats:
    def test_unanalyzed_defaults(self):
        stats = ColumnStats(dtype=DataType.INT, num_rows=1000)
        assert not stats.analyzed
        assert stats.equality_selectivity(5) == DEFAULT_EQ_SELECTIVITY
        assert stats.effective_ndv() <= 200

    def test_mcv_equality_selectivity(self):
        stats = ColumnStats(dtype=DataType.STRING, num_rows=100, ndv=10,
                            mcv_values=["a", "b"], mcv_fractions=[0.5, 0.2])
        assert stats.equality_selectivity("a") == 0.5
        assert stats.equality_selectivity("z") == pytest.approx(0.3 / 8)

    def test_zero_rows(self):
        stats = ColumnStats(dtype=DataType.INT, num_rows=0, ndv=0)
        assert stats.equality_selectivity(1) == 0.0
        assert stats.range_selectivity(0, 10) == 0.0


class TestAnalyze:
    def test_row_counts_and_ndv(self):
        columns = {
            "id": np.arange(1000),
            "cat": np.array(["a", "b", "c", "d"] * 250, dtype=object),
        }
        stats = analyze_columns(columns)
        assert stats.num_rows == 1000
        assert stats.column("id").ndv == 1000
        assert stats.column("cat").ndv == 4

    def test_mcv_fractions(self):
        values = np.array(["hot"] * 900 + ["cold"] * 100, dtype=object)
        stats = analyze_columns({"c": values})
        col = stats.column("c")
        assert col.mcv_values[0] == "hot"
        assert col.mcv_fractions[0] == pytest.approx(0.9, abs=0.02)

    def test_numeric_histogram_built(self):
        stats = analyze_columns({"x": np.arange(5000, dtype=np.int64)})
        assert stats.column("x").histogram is not None
        assert stats.column("x").min_value == 0
        assert stats.column("x").max_value == 4999

    def test_null_fraction_strings(self):
        values = np.array(["a", None, "b", None], dtype=object)
        stats = analyze_columns({"c": values})
        assert stats.column("c").null_fraction == pytest.approx(0.5)

    def test_empty_table(self):
        stats = analyze_columns({"c": np.array([], dtype=np.int64)})
        assert stats.num_rows == 0
        assert stats.column("c").ndv == 0

    def test_sampling_caps_work(self):
        stats = analyze_columns({"x": np.arange(50_000)}, sample_rows=1000)
        # Sampled NDV scaled up: every sampled value distinct => assume unique.
        assert stats.column("x").ndv == 50_000

    def test_analyze_table_wrapper(self, tiny_db):
        table = tiny_db.table("mk")
        stats = analyze_table(table)
        assert stats.num_rows == table.num_rows
        assert set(stats.columns) == set(table.column_names)

    def test_row_count_only(self):
        stats = TableStats.row_count_only(42)
        assert stats.num_rows == 42
        assert not stats.analyzed
        assert stats.column("anything") is None
        fallback = stats.column_or_default("anything")
        assert fallback.num_rows == 42
