"""Unit tests for expressions, the SPJ normal form, physical plans, similarity."""

import numpy as np
import pytest

from repro.plan.expressions import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNotNull,
    JoinPredicate,
    OrPredicate,
    StringContains,
    StringPrefix,
)
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    Query,
    RelationRef,
    SPJNode,
    SPJQuery,
    UnionNode,
)
from repro.plan.physical import JoinMethod, JoinNode, PhysicalPlan, ScanNode
from repro.plan.similarity import plan_similarity, similarity_bucket
from tests.conftest import five_way_query


def _resolver(**columns):
    data = {ColumnRef(*name.split(".")): np.asarray(values)
            for name, values in columns.items()}
    return lambda ref: data[ref]


class TestPredicates:
    def test_comparison_ops(self):
        resolve = _resolver(**{"t.x": [1, 2, 3, 4]})
        ref = ColumnRef("t", "x")
        assert list(Comparison(ref, "=", 2).evaluate(resolve)) == [False, True, False, False]
        assert list(Comparison(ref, "!=", 2).evaluate(resolve)) == [True, False, True, True]
        assert list(Comparison(ref, ">", 2).evaluate(resolve)) == [False, False, True, True]
        assert list(Comparison(ref, "<=", 2).evaluate(resolve)) == [True, True, False, False]

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(ColumnRef("t", "x"), "~", 1)

    def test_between_and_inlist(self):
        resolve = _resolver(**{"t.x": [1, 5, 10, 20]})
        ref = ColumnRef("t", "x")
        assert list(Between(ref, 5, 10).evaluate(resolve)) == [False, True, True, False]
        assert list(InList(ref, (1, 20)).evaluate(resolve)) == [True, False, False, True]

    def test_string_predicates(self):
        resolve = _resolver(**{"t.s": np.array(["apple", "banana", None, "grape"],
                                               dtype=object)})
        ref = ColumnRef("t", "s")
        assert list(StringContains(ref, "an").evaluate(resolve)) == [False, True, False, False]
        assert list(StringPrefix(ref, "gr").evaluate(resolve)) == [False, False, False, True]
        assert list(IsNotNull(ref).evaluate(resolve)) == [True, True, False, True]

    def test_or_predicate(self):
        resolve = _resolver(**{"t.x": [1, 2, 3]})
        ref = ColumnRef("t", "x")
        pred = OrPredicate((Comparison(ref, "=", 1), Comparison(ref, "=", 3)))
        assert list(pred.evaluate(resolve)) == [True, False, True]
        assert pred.aliases() == frozenset({"t"})

    def test_or_predicate_single_relation_only(self):
        with pytest.raises(ValueError):
            OrPredicate((Comparison(ColumnRef("a", "x"), "=", 1),
                         Comparison(ColumnRef("b", "x"), "=", 1)))

    def test_join_predicate_helpers(self):
        pred = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert pred.aliases() == frozenset({"a", "b"})
        assert pred.column_for("a") == ColumnRef("a", "x")
        assert pred.other("a") == ColumnRef("b", "y")
        with pytest.raises(KeyError):
            pred.column_for("c")

    def test_join_predicate_rejects_self_join_alias(self):
        with pytest.raises(ValueError):
            JoinPredicate(ColumnRef("a", "x"), ColumnRef("a", "y"))


class TestSPJQuery:
    def test_validation_rejects_unknown_alias(self):
        with pytest.raises(ValueError):
            SPJQuery(name="bad",
                     relations=(RelationRef.base("a", "a"),),
                     filters=(Comparison(ColumnRef("zz", "x"), "=", 1),))

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ValueError):
            SPJQuery(name="bad",
                     relations=(RelationRef.base("a", "t"), RelationRef.base("a", "t")))

    def test_covered_aliases_and_lookup(self):
        spj = five_way_query()
        assert spj.covered_aliases() == {"t", "mk", "k", "ci", "n"}
        assert spj.relation("t").table_name == "t"
        assert spj.relation_covering("ci").alias == "ci"
        with pytest.raises(KeyError):
            spj.relation("zz")

    def test_filters_for_relation(self):
        spj = five_way_query()
        t_filters = spj.filters_for(spj.relation("t"))
        assert len(t_filters) == 1
        assert t_filters[0].column == ColumnRef("t", "year")

    def test_join_predicates_between(self):
        spj = five_way_query()
        preds = spj.join_predicates_between(spj.relation("mk"), spj.relation("t"))
        assert len(preds) == 1

    def test_is_connected(self):
        spj = five_way_query()
        assert spj.is_connected()
        disconnected = SPJQuery(
            name="cross",
            relations=(RelationRef.base("a", "t"), RelationRef.base("b", "k")))
        assert not disconnected.is_connected()

    def test_num_joins_and_referenced_columns(self):
        spj = five_way_query()
        assert spj.num_joins == 4
        refs = spj.referenced_columns()
        assert ColumnRef("t", "year") in refs
        assert ColumnRef("mk", "movie_id") in refs

    def test_substitute_replaces_covered_relations(self):
        spj = five_way_query()
        temp = RelationRef.temp("__temp_1", frozenset({"t", "mk", "k"}))
        rewritten = spj.substitute(temp)
        aliases = {r.alias for r in rewritten.relations}
        assert aliases == {"__temp_1", "ci", "n"}
        # Internal predicates (t-mk, mk-k) were dropped; ci-t and ci-n remain.
        assert len(rewritten.join_predicates) == 2
        # Filters on t and k were already applied inside the temporary.
        assert all("t" not in p.aliases() and "k" not in p.aliases()
                   for p in rewritten.filters)

    def test_substitute_no_overlap_is_noop(self):
        spj = five_way_query()
        temp = RelationRef.temp("__temp_9", frozenset({"zz"}))
        assert spj.substitute(temp) is spj

    def test_aggregate_spec_validation(self):
        with pytest.raises(ValueError):
            AggregateSpec("median", ColumnRef("t", "x"), "m")
        with pytest.raises(ValueError):
            AggregateSpec("min", None, "m")


class TestQueryTree:
    def test_spj_leaves(self):
        spj = five_way_query()
        union = UnionNode((SPJNode(spj), AggregateNode(SPJNode(spj), (), ())))
        assert len(union.spj_leaves()) == 2

    def test_query_wrappers(self):
        query = Query.from_spj(five_way_query(), family=6)
        assert query.is_spj
        assert query.spj.name == "q5way"
        assert query.metadata["family"] == 6
        assert query.num_relations == 5

    def test_non_spj_query_spj_accessor_raises(self):
        spj = five_way_query()
        query = Query(name="agg", root=AggregateNode(SPJNode(spj), (), ()))
        assert not query.is_spj
        with pytest.raises(TypeError):
            _ = query.spj


def _scan(alias, rows=10.0):
    return ScanNode(relation=RelationRef.base(alias, alias), est_rows=rows,
                    est_cost=rows)


def _join(left, right, method=JoinMethod.HASH, rows=10.0):
    return JoinNode(left=left, right=right, predicates=(), method=method,
                    est_rows=rows, est_cost=rows)


class TestPhysicalPlan:
    def test_leaf_relations_and_join_order(self):
        plan = PhysicalPlan("q", _join(_join(_scan("a"), _scan("b")), _scan("c")))
        assert [r.alias for r in plan.leaf_relations()] == ["a", "b", "c"]
        joins = plan.join_nodes()
        assert joins[0].covered_aliases() == {"a", "b"}
        assert joins[-1] is plan.root

    def test_pipeline_breaker_flag(self):
        hash_join = _join(_scan("a"), _scan("b"), JoinMethod.HASH)
        nl_join = _join(_scan("a"), _scan("b"), JoinMethod.INDEX_NL)
        assert hash_join.is_pipeline_breaker
        assert not nl_join.is_pipeline_breaker

    def test_intermediate_relation_sets_excludes_root(self):
        plan = PhysicalPlan("q", _join(_join(_scan("a"), _scan("b")), _scan("c")))
        assert plan.intermediate_relation_sets() == {frozenset({"a", "b"})}

    def test_explain_renders_every_node(self):
        plan = PhysicalPlan("q", _join(_scan("a"), _scan("b")))
        text = plan.explain()
        assert "Join" in text and "Scan(a" in text and "Scan(b" in text


class TestSimilarity:
    def _plan(self, *levels):
        """Build a left-deep plan joining the given aliases in order."""
        node = _scan(levels[0])
        for alias in levels[1:]:
            node = _join(node, _scan(alias))
        return PhysicalPlan("q", node)

    def test_identical_plans_similarity_full_prefix(self):
        a = self._plan("r1", "r2", "r3")
        b = self._plan("r1", "r2", "r4")
        assert plan_similarity(a, b) == 2

    def test_shared_leaf_only(self):
        a = self._plan("r1", "r2", "r3")
        b = self._plan("r1", "r3", "r2")
        assert plan_similarity(a, b) == 1

    def test_disjoint_first_joins(self):
        a = self._plan("r1", "r2", "r3", "r4")
        b = self._plan("r3", "r4", "r1", "r2")
        # First joins {r1,r2} vs {r3,r4} share nothing.
        assert plan_similarity(a, b) == 0

    def test_single_relation_plans(self):
        a = PhysicalPlan("q", _scan("x"))
        assert plan_similarity(a, a) == 1

    def test_bucket_labels(self):
        assert similarity_bucket(0) == "0"
        assert similarity_bucket(2) == "2"
        assert similarity_bucket(5) == ">2"
