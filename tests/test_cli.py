"""Registry + CLI runner tests: completeness, artifacts, resume, parallelism."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.bench import artifacts
from repro.experiments import registry
from repro.report import ExecutionReport, WorkloadResult

EXPECTED_EXPERIMENTS = {
    "table1_similarity", "table3_policies", "figure10_robustness",
    "figure11_job", "table4_materialization", "figure12_tpch",
    "figure13_dsb_spj", "figure14_dsb_nonspj", "figure15_statistics",
    "table5_existing_costfn", "table6_categories", "figure_sqlgen_scaling",
    "bench_scan_pruning", "bench_compiled_scan", "bench_serving",
    "bench_stale_stats", "bench_morsels",
}


def test_registry_is_complete():
    specs = registry.load_all()
    assert set(specs) == EXPECTED_EXPERIMENTS
    for name, spec in specs.items():
        assert spec.name == name
        assert spec.artifact, f"{name} has no paper-artifact label"
        assert spec.module == f"repro.experiments.{name}"
        assert callable(spec.runner)


def test_every_module_docstring_states_its_artifact():
    import importlib
    for name, spec in registry.load_all().items():
        module = importlib.import_module(spec.module)
        doc = module.__doc__ or ""
        # "Figure 11 (...)" must be introduced by a docstring mentioning
        # "Figure 11"; the beyond-the-paper module says so explicitly.
        head = " ".join(spec.artifact.split()[:2]).rstrip(":(")
        if spec.artifact.startswith(("Table", "Figure")):
            assert head in doc, f"{name} docstring does not mention {head!r}"
        else:
            assert "beyond the paper" in doc or "paper" in doc


def test_registered_shard_params_exist_in_signatures():
    from inspect import signature
    for name, spec in registry.load_all().items():
        if spec.shard_param is not None:
            params = signature(spec.runner).parameters
            assert spec.shard_param in params, name
            assert spec.shard_universe, f"{name} shards without a universe"


def _fake_result() -> artifacts.ExperimentResult:
    workload = WorkloadResult(algorithm="QuerySplit", reports=[
        ExecutionReport(query_name="q1", algorithm="QuerySplit",
                        total_time=0.25),
        ExecutionReport(query_name="q2", algorithm="QuerySplit",
                        total_time=0.5, timed_out=True),
    ])
    workloads = {"pk/QuerySplit": workload}
    summary = artifacts.base_summary(workloads)
    return artifacts.ExperimentResult(
        name="fake_experiment", artifact="Table 0 (made up)",
        params={"scale": 0.1, "families": [2, 6]},
        data={"anything": True}, workloads=workloads, summary=summary,
        tables=["Table 0\ncol\n---\nval"])


def test_artifact_schema_roundtrip(tmp_path):
    result = _fake_result()
    artifact = artifacts.build_artifact(
        result, started_at=artifacts.utc_now(), finished_at=artifacts.utc_now(),
        wall_clock_seconds=1.5, rev="deadbeef")
    assert artifacts.validate_artifact(artifact) == []

    path = tmp_path / "fake_experiment.json"
    artifacts.write_artifact(path, artifact)
    loaded = artifacts.load_artifact(path)
    assert loaded == json.loads(json.dumps(artifact))  # JSON-stable
    assert artifacts.validate_artifact(loaded) == []
    assert loaded["experiment"] == "fake_experiment"
    assert loaded["git_rev"] == "deadbeef"
    assert loaded["params"] == {"scale": 0.1, "families": [2, 6]}
    assert len(loaded["queries"]) == 2
    record = loaded["queries"][0]
    for field in artifacts.QUERY_RECORD_FIELDS:
        assert field in record
    per_key = loaded["summary"]["per_key"]["pk/QuerySplit"]
    assert per_key["queries"] == 2
    assert per_key["timeouts"] == 1
    assert per_key["total_time"] == pytest.approx(0.75)


def test_validate_artifact_flags_violations():
    assert artifacts.validate_artifact([]) != []
    artifact = artifacts.build_artifact(
        _fake_result(), started_at="t0", finished_at="t1",
        wall_clock_seconds=0.0, rev="r")
    broken = dict(artifact)
    del broken["queries"]
    assert any("queries" in e for e in artifacts.validate_artifact(broken))
    stale = dict(artifact, schema_version=artifacts.SCHEMA_VERSION + 1)
    assert any("schema_version" in e for e in artifacts.validate_artifact(stale))


def test_cli_smoke_run_writes_valid_artifact(tmp_path, capsys):
    results_dir = tmp_path / "results"
    summary = tmp_path / "BENCH_summary.json"
    code = cli.main([
        "run", "table1_similarity", "--scale", "0.1", "--families", "2,6",
        "--results-dir", str(results_dir), "--summary", str(summary)])
    assert code == 0
    artifact = artifacts.load_artifact(results_dir / "table1_similarity.json")
    assert artifacts.validate_artifact(artifact) == []
    assert artifact["experiment"] == "table1_similarity"
    assert artifact["params"]["scale"] == 0.1
    assert artifact["params"]["families"] == [2, 6]
    assert artifact["summary"]["ratios"]
    assert artifact["git_rev"]
    assert artifact["tables"]

    merged = artifacts.load_artifact(summary)
    assert "table1_similarity" in merged["experiments"]
    out = capsys.readouterr().out
    assert "written" in out


def test_resume_skips_completed_artifacts(tmp_path):
    kwargs = dict(results_dir=tmp_path, summary_path=tmp_path / "s.json",
                  overrides={"scale": 0.1, "families": [2, 6]})
    first = cli.run_experiments(["table1_similarity"], **kwargs)
    assert [s.status for s in first] == ["written"]
    second = cli.run_experiments(["table1_similarity"], **kwargs)
    assert [s.status for s in second] == ["skipped"]
    # Changing a pinned knob invalidates the artifact ...
    third = cli.run_experiments(
        ["table1_similarity"], results_dir=tmp_path,
        summary_path=tmp_path / "s.json",
        overrides={"scale": 0.1, "families": [2]})
    assert [s.status for s in third] == ["written"]
    # ... and --force always re-runs.
    fourth = cli.run_experiments(
        ["table1_similarity"], force=True, results_dir=tmp_path,
        summary_path=tmp_path / "s.json",
        overrides={"scale": 0.1, "families": [2]})
    assert [s.status for s in fourth] == ["written"]


def test_parallel_sharded_run_merges_families(tmp_path):
    overrides = {"scale": 0.1, "families": [6, 2],
                 "algorithms": ["QuerySplit", "Default"]}
    statuses = cli.run_experiments(
        ["figure11_job"], jobs=2, results_dir=tmp_path,
        summary_path=tmp_path / "s.json", overrides=overrides)
    assert [s.status for s in statuses] == ["written"]
    assert statuses[0].shards == 2

    artifact = artifacts.load_artifact(tmp_path / "figure11_job.json")
    assert artifacts.validate_artifact(artifact) == []
    assert artifact["params"]["families"] == [2, 6]  # sorted union of shards
    assert artifact["summary"]["sharded"] is True
    keys = {record["key"] for record in artifact["queries"]}
    assert keys == {"pk/QuerySplit", "pk/Default",
                    "pk+fk/QuerySplit", "pk+fk/Default"}
    families_seen = {record["query"][0] for record in artifact["queries"]}
    assert families_seen == {"2", "6"}

    # The same invocation is skipped on resume (order-insensitive families).
    again = cli.run_experiments(
        ["figure11_job"], jobs=2, results_dir=tmp_path,
        summary_path=tmp_path / "s.json", overrides=overrides)
    assert [s.status for s in again] == ["skipped"]


def test_report_merges_existing_artifacts(tmp_path, capsys):
    cli.run_experiments(["table1_similarity"], results_dir=tmp_path,
                        summary_path=None,
                        overrides={"scale": 0.1, "families": [2]})
    code = cli.main(["report", "--results-dir", str(tmp_path),
                     "--summary", str(tmp_path / "BENCH_summary.json")])
    assert code == 0
    summary = artifacts.load_artifact(tmp_path / "BENCH_summary.json")
    assert summary["schema_version"] == artifacts.SCHEMA_VERSION
    entry = summary["experiments"]["table1_similarity"]
    assert entry["artifact"].startswith("Table 1")
    assert "per_key" in entry
