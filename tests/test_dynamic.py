"""Tests for the dynamic-data subsystem (mutations + staleness).

Three families:

* **Storage-layer units** -- dictionary growth (``encode_append``),
  incremental zone maps (``TableZoneMaps.extended`` vs. a full rebuild),
  append/delete semantics on :class:`~repro.storage.table.DataTable`,
  index maintenance, epochs and staleness bookkeeping, subplan-cache
  invalidation, and the mutation fences (session views / serving).
* **Policy units** -- :class:`~repro.dynamic.DriftStream` purity and
  the :class:`~repro.dynamic.StalenessController` policies.
* **Mutation-equivalence property sweep** -- random append/delete
  sequences applied to a table must leave scans *bit-identical* to a
  database rebuilt from scratch on the surviving rows, across every
  hot-path toggle combination (zone-map block size, dictionary
  encoding, fused kernels, semijoin pruning).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic import DriftConfig, DriftStream, StalenessController
from repro.executor.subplan_cache import SubplanCache
from repro.reopt.registry import make_algorithm
from repro.serving import EngineServer, ServingConfig
from repro.storage.database import Database, IndexConfig, MutationError
from repro.storage.dictionary import NULL_CODE, decode_lookup, encode_append
from repro.storage.table import DataTable
from repro.storage.zonemaps import TableZoneMaps
from tests.reference_eval import assert_results_match, canonicalize_table
from tests.test_differential import (
    DIFF_SCHEMA,
    build_differential_database,
    make_stream,
)

SEED = 20260808


# ----------------------------------------------------------------------
# Mutation helpers shared by the unit tests and the property sweep
# ----------------------------------------------------------------------
def random_append_batch(rng: np.random.Generator, db: Database,
                        table_name: str, count: int) -> dict[str, np.ndarray]:
    """``count`` schema-valid rows for ``table_name`` (fresh PKs, in-range
    FKs, a mix of known and novel strings, values beyond the loaded range
    so appended blocks stretch the zone maps)."""
    table = db.table(table_name)
    schema = db.schema.table(table_name)
    fk_pools = {fk.column: db.table(fk.ref_table).column_values(fk.ref_column,
                                                                cache=False)
                for fk in schema.foreign_keys}
    batch: dict[str, np.ndarray] = {}
    for name in table.column_names:
        values = table.column_values(name, cache=False)
        if name == schema.primary_key:
            start = int(values.max()) + 1
            batch[name] = np.arange(start, start + count, dtype=np.int64)
        elif name in fk_pools:
            pool = fk_pools[name]
            batch[name] = pool[rng.integers(0, len(pool), count)]
        elif values.dtype == object:
            known = np.unique(values[:200].astype(object))
            out = known[rng.integers(0, len(known), count)].astype(object)
            novel = rng.random(count) < 0.4
            out[novel] = np.array(
                [f"{name}~new~{rng.integers(0, 10_000)}~{i}"
                 for i in range(int(novel.sum()))], dtype=object)
            batch[name] = out
        elif values.dtype.kind == "f":
            lo, hi = float(values.min()), float(values.max())
            batch[name] = rng.uniform(lo, hi + (hi - lo), count)
        else:
            lo, hi = int(values.min()), int(values.max())
            batch[name] = rng.integers(lo, 2 * hi - lo + 1, count,
                                       dtype=np.int64)
    return batch


def mutate_randomly(db: Database, rng: np.random.Generator,
                    table_name: str, batches: int) -> None:
    """Apply ``batches`` interleaved random append/delete batches."""
    for _ in range(batches):
        db.append_rows(table_name,
                       random_append_batch(rng, db, table_name,
                                           int(rng.integers(30, 120))))
        table = db.table(table_name)
        alive = table.valid_row_ids()
        kill = rng.choice(alive, size=min(len(alive) // 10, 60),
                          replace=False)
        db.delete_rows(table_name, kill)


def rebuild_from_live_rows(db: Database, block_size: int,
                           dict_encode: bool) -> Database:
    """A from-scratch database holding exactly the live rows of ``db``."""
    fresh = Database(DIFF_SCHEMA, index_config=IndexConfig.PK_FK,
                     block_size=block_size, dict_encode=dict_encode)
    for name in sorted(db.base_table_names):
        table = db.table(name)
        alive = table.valid_row_ids()
        fresh.load_table(DataTable(name, {
            column: table.column_values(column, cache=False)[alive]
            for column in table.column_names}))
    return fresh


# ----------------------------------------------------------------------
# Storage-layer units
# ----------------------------------------------------------------------
class TestDictionaryGrowth:
    def test_append_of_known_values_keeps_codes_and_dictionary(self):
        dictionary = np.array(["a", "b", "c"], dtype=object)
        codes = np.array([0, 2, NULL_CODE, 1], dtype=np.int32)
        old, new, merged, remapped = encode_append(
            codes, dictionary, np.array(["c", "a", None], dtype=object))
        assert not remapped
        assert old is codes and merged is dictionary
        assert list(new) == [2, 0, NULL_CODE]

    def test_growth_merges_sorted_and_remaps_monotone(self):
        dictionary = np.array(["b", "d"], dtype=object)
        codes = np.array([1, 0, NULL_CODE], dtype=np.int32)
        values = np.array(["a", "d", "c", None], dtype=object)
        old, new, merged, remapped = encode_append(codes, dictionary, values)
        assert remapped
        assert list(merged) == ["a", "b", "c", "d"]  # stays sorted
        # Old codes decode to the same strings under the merged dictionary.
        lookup = decode_lookup(merged)
        assert list(lookup[old]) == ["d", "b", None]
        assert list(lookup[new]) == ["a", "d", "c", None]

    def test_non_string_append_rejected(self):
        with pytest.raises(TypeError):
            encode_append(np.array([0], dtype=np.int32),
                          np.array(["a"], dtype=object),
                          np.array([3], dtype=object))


class TestIncrementalZoneMaps:
    def test_extended_equals_full_rebuild_after_appends(self):
        db = build_differential_database(block_size=64)
        rng = np.random.default_rng(SEED)
        db.append_rows("cast_info",
                       random_append_batch(rng, db, "cast_info", 333))
        table = db.table("cast_info")
        incremental = table.zone_maps
        rebuilt = TableZoneMaps.build(table.columns, block_size=64)
        assert incremental.num_rows == rebuilt.num_rows
        for name, zones in rebuilt.columns.items():
            np.testing.assert_array_equal(
                incremental.columns[name], zones,
                err_msg=f"zone maps diverged for cast_info.{name}")

    def test_shrinking_is_rejected(self):
        db = build_differential_database(block_size=64)
        table = db.table("movie")
        with pytest.raises(ValueError):
            table.zone_maps.extended(
                {name: values[:10] for name, values in table.columns.items()})


class TestAppendDelete:
    def test_append_validates_columns_and_lengths(self):
        db = build_differential_database()
        table = db.table("keyword")
        with pytest.raises(ValueError):
            table.append_rows({"id": np.array([999])})  # missing "kw"
        with pytest.raises(ValueError):
            table.append_rows({"id": np.array([999]),
                               "kw": np.array(["x", "y"], dtype=object)})

    def test_epochs_count_mutation_batches(self):
        db = build_differential_database()
        assert db.table_epoch("movie") == 0
        rng = np.random.default_rng(SEED)
        db.append_rows("movie", random_append_batch(rng, db, "movie", 10))
        db.delete_rows("movie", np.array([0, 1]))
        assert db.table_epoch("movie") == 2
        assert db.data_epoch == 2
        assert db.stats_staleness("movie") == 2
        db.analyze("movie")
        assert db.stats_staleness("movie") == 0

    def test_deleted_rows_leave_scans_and_stats(self):
        db = build_differential_database()
        table = db.table("movie")
        before = table.num_rows
        dead = db.delete_rows("movie", np.array([0, 3, 5, 3]))
        assert dead == 3  # the repeated id counts once
        assert table.num_rows == before  # physical rows retained
        assert table.num_valid_rows == before - 3
        assert 0 not in set(table.valid_row_ids())
        assert len(list(table.to_rows())) == before - 3
        db.analyze("movie")
        assert db.stats("movie").num_rows == before - 3

    def test_delete_out_of_range_rejected(self):
        db = build_differential_database()
        with pytest.raises(IndexError):
            db.delete_rows("keyword", np.array([10_000_000]))

    def test_indexes_follow_mutations(self):
        db = build_differential_database()
        rng = np.random.default_rng(SEED)
        batch = random_append_batch(rng, db, "movie", 5)
        db.append_rows("movie", batch)
        index = db.index("movie", "id")
        hit = index.lookup(int(batch["id"][0]))
        assert len(hit) == 1
        values = db.table("movie").column_values("id", cache=False)
        assert values[hit[0]] == batch["id"][0]
        db.delete_rows("movie", hit)
        assert len(db.index("movie", "id").lookup(int(batch["id"][0]))) == 0


class TestMutationFences:
    def test_session_views_cannot_mutate(self):
        db = build_differential_database()
        view = db.session_view()
        with pytest.raises(MutationError):
            view.delete_rows("movie", np.array([0]))
        with pytest.raises(MutationError):
            view.analyze("movie")
        # ... but the origin still can, and the view sees the result.
        db.delete_rows("movie", np.array([0]))
        assert view.table("movie").num_valid_rows == db.table("movie").num_valid_rows

    def test_serving_fences_mutations_until_shutdown(self):
        db = build_differential_database()
        server = EngineServer(db, ServingConfig(workers=1))
        server.start()
        try:
            with pytest.raises(MutationError):
                db.delete_rows("movie", np.array([0]))
        finally:
            server.shutdown()
        db.delete_rows("movie", np.array([0]))  # fence released
        server.shutdown()  # idempotent: no unmatched end_serving()

    def test_unmatched_end_serving_rejected(self):
        db = build_differential_database()
        with pytest.raises(RuntimeError):
            db.end_serving()


class TestSubplanCacheInvalidation:
    def test_mutation_invalidates_entries_of_touched_tables(self):
        db = build_differential_database()
        cache = SubplanCache()
        runner = make_algorithm("Default", db, subplan_cache=cache)
        query = make_stream(db).query_at(3)
        runner.run(query)
        runner.run(query)
        assert cache.hits > 0
        rng = np.random.default_rng(SEED)
        mutate_randomly(db, rng, "cast_info", batches=1)
        after = canonicalize_table(runner.run(query).final_table)
        assert cache.invalidated > 0
        # The post-mutation answer is recomputed, not served stale: it must
        # match a cache-free runner over the mutated database.
        fresh = make_algorithm("Default", db).run(query)
        assert_results_match(canonicalize_table(fresh.final_table), after,
                             context="post-mutation cache answer")


# ----------------------------------------------------------------------
# Drift + staleness policy units
# ----------------------------------------------------------------------
class TestDriftStream:
    def _stream(self, db, seed=SEED):
        return DriftStream(
            db, DriftConfig(fact_table="cast_info", append_rows=200,
                            delete_fraction=0.05), seed=seed)

    def test_batches_are_pure_in_seed_and_step(self):
        a = self._stream(build_differential_database())
        b = self._stream(build_differential_database())
        for step in (0, 1, 5):
            ba, bb = a.batch_at(step), b.batch_at(step)
            np.testing.assert_array_equal(ba.delete_ids, bb.delete_ids)
            for name in ba.appends:
                np.testing.assert_array_equal(ba.appends[name],
                                              bb.appends[name])

    def test_apply_grows_the_table_and_bumps_epochs(self):
        db = build_differential_database()
        before = db.table("cast_info").num_rows
        self._stream(db).run(3)
        table = db.table("cast_info")
        assert table.num_rows == before + 3 * 200
        assert table.num_valid_rows < table.num_rows  # deletes landed
        assert db.table_epoch("cast_info") == 6  # 3 appends + 3 deletes

    def test_views_are_rejected(self):
        db = build_differential_database()
        with pytest.raises(ValueError):
            self._stream(db.session_view())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftConfig(fact_table="t", delete_fraction=1.0)
        with pytest.raises(ValueError):
            DriftConfig(fact_table="t", append_rows=-1)


class TestStalenessController:
    def test_policy_validation(self):
        db = build_differential_database()
        with pytest.raises(ValueError):
            StalenessController(db, policy="sometimes")
        with pytest.raises(ValueError):
            StalenessController(db, period=0)
        with pytest.raises(ValueError):
            StalenessController(db, q_error_threshold=0.5)

    def test_periodic_reanalyzes_every_n_batches(self):
        db = build_differential_database()
        controller = StalenessController(db, policy="periodic", period=2)
        rng = np.random.default_rng(SEED)
        mutate_randomly(db, rng, "cast_info", batches=3)  # 6 mutation batches
        assert controller.reanalyze_count == 3
        assert db.stats_staleness("cast_info") == 0
        controller.close()

    def test_never_policy_leaves_stats_alone(self):
        db = build_differential_database()
        controller = StalenessController(db, policy="never")
        mutate_randomly(db, np.random.default_rng(SEED), "cast_info", 2)
        assert controller.reanalyze_count == 0
        assert db.stats_staleness("cast_info") == 4
        controller.close()

    def test_triggered_reanalyzes_on_observed_qerror(self):
        db = build_differential_database()
        controller = StalenessController(db, policy="triggered",
                                         q_error_threshold=2.0)
        mutate_randomly(db, np.random.default_rng(SEED), "cast_info", 2)
        query = make_stream(db).query_at(1)
        runner = make_algorithm("Default", db)
        report = runner.run(query)
        actual = (report.iterations[-1].result_rows if report.iterations
                  else report.final_rows)
        # Force a huge observed error: the stale tables must be re-ANALYZEd.
        observed = controller.observe(query, actual_rows=actual * 1000 + 1000)
        assert observed.q_error > 2.0
        assert "cast_info" in observed.reanalyzed
        assert db.stats_staleness("cast_info") == 0
        assert controller.reanalyze_count >= 1
        # A second perfect observation re-analyzes nothing further.
        count = controller.reanalyze_count
        good = controller.observe(query, actual_rows=observed.estimated_rows)
        assert good.reanalyzed == () and controller.reanalyze_count == count
        assert controller.mean_q_error >= 1.0
        assert controller.p95_q_error >= 1.0
        controller.close()

    def test_close_detaches_the_listener(self):
        db = build_differential_database()
        controller = StalenessController(db, policy="periodic", period=1)
        controller.close()
        mutate_randomly(db, np.random.default_rng(SEED), "cast_info", 1)
        assert controller.reanalyze_count == 0


# ----------------------------------------------------------------------
# Property sweep: mutated table == from-scratch rebuild, all toggles
# ----------------------------------------------------------------------
TOGGLE_COMBOS = [
    # (block_size, dict_encode, fused_kernels, semijoin_pruning)
    (64, True, True, True),
    (0, True, True, True),      # zone maps off
    (64, False, True, True),    # dictionary encoding off
    (64, True, False, True),    # fused kernels off
    (64, True, True, False),    # semijoin pruning off
    (0, False, False, False),   # everything off
]


class TestMutationEquivalence:
    @pytest.mark.parametrize("block_size,dict_encode,fused,semijoin",
                             TOGGLE_COMBOS)
    def test_mutated_scans_match_from_scratch_rebuild(self, block_size,
                                                      dict_encode, fused,
                                                      semijoin):
        """Random append/delete sequences, then every query must return
        bit-identical results on the mutated database and on a database
        rebuilt from scratch over exactly the surviving rows (fresh zone
        maps, fresh dictionaries, fresh indexes, fresh statistics)."""
        mutated = build_differential_database(block_size=block_size,
                                              dict_encode=dict_encode)
        rng = np.random.default_rng(SEED + block_size + dict_encode)
        mutate_randomly(mutated, rng, "cast_info", batches=3)
        mutate_randomly(mutated, rng, "movie_kw", batches=2)
        rebuilt = rebuild_from_live_rows(mutated, block_size, dict_encode)

        queries = make_stream(rebuilt, seed=SEED).generate(12)
        runner_m = make_algorithm("Default", mutated,
                                  fused_kernels=fused,
                                  semijoin_pruning=semijoin)
        runner_r = make_algorithm("Default", rebuilt,
                                  fused_kernels=fused,
                                  semijoin_pruning=semijoin)
        for index, query in enumerate(queries):
            expected = canonicalize_table(runner_r.run(query).final_table)
            actual = canonicalize_table(runner_m.run(query).final_table)
            assert_results_match(
                expected, actual,
                context=f"mutated vs rebuilt (block={block_size}, "
                        f"dict={dict_encode}, fused={fused}, "
                        f"semijoin={semijoin}, index={index})")
