"""Unit tests for the storage subsystem: tables, indexes, database."""

import numpy as np
import pytest

from repro.catalog.statistics import TableStats
from repro.storage.database import Database, IndexConfig
from repro.storage.index import SortedIndex
from repro.storage.table import DataTable


class TestDataTable:
    def test_num_rows_and_columns(self):
        table = DataTable("x", {"a": np.arange(5), "b": np.arange(5) * 2})
        assert table.num_rows == 5
        assert table.column_names == ["a", "b"]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DataTable("x", {"a": np.arange(5), "b": np.arange(3)})

    def test_empty_table(self):
        table = DataTable("x", {})
        assert table.num_rows == 0

    def test_zero_column_table_rejects_nonempty_selection(self):
        """A zero-column table has no rows, so selecting rows from it is a
        bug upstream -- it must fail loudly instead of silently yielding a
        0-row result (the num_rows == 0 property would otherwise hide the
        dangling selection downstream of Scan/Aggregate)."""
        table = DataTable("x", {})
        with pytest.raises(ValueError):
            table.take(np.array([0, 1]))
        with pytest.raises(ValueError):
            table.filter(np.array([True]))
        # Empty selections stay legal: they describe the table faithfully.
        assert table.take(np.array([], dtype=np.int64)).num_rows == 0
        assert table.filter(np.array([], dtype=bool)).num_rows == 0

    def test_take_and_filter(self):
        table = DataTable("x", {"a": np.arange(10)})
        taken = table.take(np.array([1, 3, 5]))
        assert list(taken.column("a")) == [1, 3, 5]
        filtered = table.filter(table.column("a") % 2 == 0)
        assert list(filtered.column("a")) == [0, 2, 4, 6, 8]

    def test_project_and_rename(self):
        table = DataTable("x", {"a": np.arange(3), "b": np.arange(3)})
        assert table.project(["b"]).column_names == ["b"]
        renamed = table.rename_columns({"a": "z"})
        assert set(renamed.column_names) == {"z", "b"}

    def test_from_rows_round_trip(self):
        table = DataTable.from_rows("x", ["a", "s"], [(1, "p"), (2, "q")])
        assert table.column("a").dtype == np.int64
        assert table.column("s").dtype == object
        assert table.to_rows() == [(1, "p"), (2, "q")]

    def test_from_rows_empty(self):
        table = DataTable.from_rows("x", ["a"], [])
        assert table.num_rows == 0

    def test_missing_column_raises(self):
        table = DataTable("x", {"a": np.arange(3)})
        with pytest.raises(KeyError):
            table.column("zz")

    def test_memory_accounting_counts_strings(self):
        ints = DataTable("x", {"a": np.arange(100)})
        strings = DataTable("y", {"s": np.array(["abc"] * 100, dtype=object)})
        assert ints.memory_bytes == 800
        assert strings.memory_bytes > 800


class TestSortedIndex:
    def test_lookup_single(self):
        values = np.array([5, 3, 5, 1, 5])
        index = SortedIndex("t", "c", values)
        assert sorted(index.lookup(5)) == [0, 2, 4]
        assert list(index.lookup(99)) == []

    def test_lookup_batch_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 50, 500)
        index = SortedIndex("t", "c", values)
        probes = rng.integers(0, 60, 80)
        probe_pos, row_ids = index.lookup_batch(probes)
        expected = sum(int((values == p).sum()) for p in probes)
        assert len(row_ids) == expected
        assert np.all(values[row_ids] == probes[probe_pos])

    def test_lookup_batch_empty(self):
        index = SortedIndex("t", "c", np.array([1, 2, 3]))
        probe_pos, row_ids = index.lookup_batch(np.array([9, 10]))
        assert len(probe_pos) == 0 and len(row_ids) == 0

    def test_range_lookup(self):
        values = np.arange(100)
        index = SortedIndex("t", "c", values)
        assert len(index.range_lookup(10, 19)) == 10
        assert len(index.range_lookup(None, 9)) == 10
        assert len(index.range_lookup(90, None)) == 10


class TestDatabase:
    def test_load_requires_schema_table(self, tiny_schema):
        db = Database(tiny_schema)
        with pytest.raises(KeyError):
            db.load_table(DataTable("unknown", {"a": np.arange(3)}))

    def test_pk_fk_indexes_built(self, tiny_db):
        assert tiny_db.has_index("t", "id")
        assert tiny_db.has_index("mk", "movie_id")
        assert tiny_db.has_index("mk", "keyword_id")
        assert not tiny_db.has_index("t", "year")

    def test_pk_only_config(self, tiny_schema):
        from tests.conftest import build_tiny_database

        db = build_tiny_database(tiny_schema, index_config=IndexConfig.PK_ONLY)
        assert db.has_index("t", "id")
        assert not db.has_index("mk", "movie_id")

    def test_with_index_config_clones(self, tiny_db):
        clone = tiny_db.with_index_config(IndexConfig.PK_ONLY)
        assert not clone.has_index("mk", "movie_id")
        assert tiny_db.has_index("mk", "movie_id")
        assert clone.table("t") is tiny_db.table("t")

    def test_stats_available_after_load(self, tiny_db):
        stats = tiny_db.stats("ci")
        assert stats.num_rows == tiny_db.table("ci").num_rows
        assert stats.analyzed

    def test_temp_table_lifecycle(self, tiny_schema):
        from tests.conftest import build_tiny_database

        db = build_tiny_database(tiny_schema)
        table = DataTable("temp", {"t.id": np.arange(10)})
        name = db.register_temp(table, TableStats.row_count_only(10),
                                frozenset({"t"}))
        assert db.has_table(name)
        assert db.is_temp(name)
        assert db.stats(name).num_rows == 10
        assert db.temp_entry(name).covered_aliases == frozenset({"t"})
        assert db.temp_memory_bytes() > 0
        db.drop_temp_tables()
        assert not db.has_table(name)
        assert db.temp_table_names == []

    def test_unknown_table_raises(self, tiny_db):
        with pytest.raises(KeyError):
            tiny_db.table("missing")
        with pytest.raises(KeyError):
            tiny_db.stats("missing")


class TestBlockPartitioning:
    def test_loaded_tables_get_zone_maps(self, tiny_db):
        zone_maps = tiny_db.table("ci").zone_maps
        assert zone_maps is not None
        assert zone_maps.block_size == tiny_db.block_size
        expected = -(-tiny_db.table("ci").num_rows // zone_maps.block_size)
        assert zone_maps.num_blocks == expected
        assert set(zone_maps.columns) == set(tiny_db.table("ci").column_names)

    def test_block_size_zero_disables_partitioning(self, tiny_schema):
        from tests.conftest import build_tiny_database

        db = build_tiny_database(tiny_schema)
        for name in db.base_table_names:
            db.table(name).build_zone_maps(0)
            assert db.table(name).zone_maps is None

    def test_temp_tables_are_not_partitioned(self, tiny_schema):
        from tests.conftest import build_tiny_database

        db = build_tiny_database(tiny_schema)
        name = db.register_temp(DataTable("temp", {"t.id": np.arange(10)}),
                                TableStats.row_count_only(10), frozenset({"t"}))
        assert db.table(name).zone_maps is None

    def test_zone_bounds_cover_the_data(self, tiny_db):
        table = tiny_db.table("mk")
        zones = table.zone_maps.columns["movie_id"]
        values = table.column("movie_id")
        for block, zone in enumerate(zones):
            start, stop = table.zone_maps.block_bounds(block)
            assert zone.min_value == values[start:stop].min()
            assert zone.max_value == values[start:stop].max()
            assert zone.num_rows == stop - start
            assert zone.null_count == 0
