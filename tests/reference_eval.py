"""A tiny row-at-a-time reference evaluator for differential testing.

This is the *oracle* side of ``tests/test_differential.py``: a deliberately
naive, per-row Python implementation of the query semantics the vectorized
engine is supposed to have.  It shares **no code** with the executor --
predicates are re-implemented with plain Python comparisons, joins are
hash-assisted nested loops over row dicts, and aggregates are computed with
``len``/``min``/``max``/``math.fsum`` -- so a bug in the numpy kernels
(selection vectors, zone-map pruning, reduceat segment aggregation, join
matching) cannot cancel out on both sides.

The entry point is :func:`reference_execute`, which evaluates a
:class:`~repro.plan.logical.Query` (an SPJ tree, optionally wrapped in one
GROUP BY aggregate node -- the shapes ``sqlgen`` generates) against a
:class:`~repro.storage.database.Database` and returns
``{group_key_tuple: {output_name: value}}``.  :func:`canonicalize_table`
puts an executor result table in the same form, and
:func:`assert_results_match` compares the two with exact equality for
counts/keys/min/max and a tight relative tolerance for float sums and
averages (different join orders legitimately re-associate float additions).
"""

from __future__ import annotations

import math

from repro.plan.expressions import (
    Between,
    Comparison,
    InList,
    IsNotNull,
    OrPredicate,
    StringContains,
    StringPrefix,
)
from repro.plan.logical import AggregateNode, Query, SPJNode, SPJQuery


# ----------------------------------------------------------------------
# Row-at-a-time predicate semantics
# ----------------------------------------------------------------------
def _is_null(value) -> bool:
    return value is None or (isinstance(value, float) and math.isnan(value))


def predicate_matches(predicate, value_of) -> bool:
    """Evaluate one filter predicate against a single row.

    ``value_of(ref)`` returns the row's Python value for a column reference.
    Null semantics mirror the vectorized kernels: nulls fail every shape
    except ``!=`` (NaN != x and None != x are both True element-wise).
    """
    if isinstance(predicate, OrPredicate):
        return any(predicate_matches(child, value_of)
                   for child in predicate.children)
    if isinstance(predicate, IsNotNull):
        return not _is_null(value_of(predicate.column))
    value = value_of(predicate.column)
    if isinstance(predicate, Comparison):
        if _is_null(value):
            return predicate.op == "!="
        ops = {"=": lambda a, b: a == b, "!=": lambda a, b: a != b,
               "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
               ">": lambda a, b: a > b, ">=": lambda a, b: a >= b}
        return bool(ops[predicate.op](value, predicate.value))
    if _is_null(value):
        return False
    if isinstance(predicate, Between):
        return bool(predicate.low <= value <= predicate.high)
    if isinstance(predicate, InList):
        return any(value == v for v in predicate.values)
    if isinstance(predicate, StringPrefix):
        return isinstance(value, str) and value.startswith(predicate.prefix)
    if isinstance(predicate, StringContains):
        return isinstance(value, str) and predicate.needle in value
    raise NotImplementedError(f"reference evaluator: {type(predicate).__name__}")


# ----------------------------------------------------------------------
# Scans and joins over row dicts
# ----------------------------------------------------------------------
def _python_value(value):
    return value.item() if hasattr(value, "item") else value


def _table_rows(database, spj: SPJQuery, relation) -> list[dict]:
    """The filtered rows of one base relation, as per-row column dicts."""
    table = database.table(relation.table_name)
    names = table.column_names
    # column_values decodes dictionary-encoded storage: the reference
    # evaluator always compares real values.
    arrays = [table.column_values(name, cache=False) for name in names]
    filters = spj.filters_for(relation)
    valid = getattr(table, "valid_mask", None)
    rows = []
    for i in range(table.num_rows):
        if valid is not None and not valid[i]:
            continue  # deleted row (dynamic-data valid-row mask)
        row = {name: _python_value(arr[i]) for name, arr in zip(names, arrays)}
        if all(predicate_matches(pred, lambda ref: row[ref.column])
               for pred in filters):
            rows.append(row)
    return rows


def _join_rows(database, spj: SPJQuery) -> list[dict]:
    """Nested-loop join of all relations; returns ``{alias: row}`` tuples."""
    per_alias = {rel.alias: _table_rows(database, spj, rel)
                 for rel in spj.relations}
    remaining = list(spj.join_predicates)
    aliases = list(per_alias)
    joined = {aliases[0]}
    tuples = [{aliases[0]: row} for row in per_alias[aliases[0]]]

    while len(joined) < len(aliases):
        # Pick a predicate that connects the joined set to a new relation.
        pivot = next((p for p in remaining
                      if (p.left.alias in joined) != (p.right.alias in joined)),
                     None)
        if pivot is None:  # disconnected: cross product with the next alias
            alias = next(a for a in aliases if a not in joined)
            tuples = [dict(t, **{alias: row})
                      for t in tuples for row in per_alias[alias]]
            joined.add(alias)
            continue
        inner_ref = (pivot.left if pivot.left.alias not in joined
                     else pivot.right)
        outer_ref = pivot.other(inner_ref.alias)
        remaining.remove(pivot)
        index: dict = {}
        for row in per_alias[inner_ref.alias]:
            index.setdefault(row[inner_ref.column], []).append(row)
        tuples = [dict(t, **{inner_ref.alias: row})
                  for t in tuples
                  for row in index.get(t[outer_ref.alias][outer_ref.column], [])]
        joined.add(inner_ref.alias)
        # Apply any further predicates now internal to the joined set.
        for pred in list(remaining):
            if pred.left.alias in joined and pred.right.alias in joined:
                remaining.remove(pred)
                tuples = [t for t in tuples
                          if t[pred.left.alias][pred.left.column]
                          == t[pred.right.alias][pred.right.column]]
    return tuples


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _aggregate_group(tuples: list[dict], aggregates) -> dict:
    out = {}
    for spec in aggregates:
        if spec.func == "count":
            out[spec.output_name] = len(tuples)
            continue
        values = [t[spec.column.alias][spec.column.column] for t in tuples]
        if not values:
            out[spec.output_name] = None
        elif spec.func == "min":
            out[spec.output_name] = min(values)
        elif spec.func == "max":
            out[spec.output_name] = max(values)
        elif spec.func == "sum":
            out[spec.output_name] = (math.fsum(values)
                                     if any(isinstance(v, float) for v in values)
                                     else sum(values))
        else:  # avg
            out[spec.output_name] = math.fsum(values) / len(values)
    return out


def reference_execute(database, query: Query) -> dict[tuple, dict]:
    """Evaluate ``query`` row at a time: ``{group_key: {name: value}}``.

    Scalar-aggregate queries use the empty tuple as their single group key.
    """
    root = query.root
    if isinstance(root, AggregateNode):
        assert isinstance(root.child, SPJNode), "reference: one GROUP BY level"
        spj = root.child.query
        group_by, aggregates = root.group_by, root.aggregates
    else:
        spj = query.spj
        group_by, aggregates = (), spj.aggregates
    tuples = _join_rows(database, spj)
    if not group_by:
        return {(): _aggregate_group(tuples, aggregates)}
    groups: dict[tuple, list[dict]] = {}
    for t in tuples:
        key = tuple(t[ref.alias][ref.column] for ref in group_by)
        groups.setdefault(key, []).append(t)
    return {key: _aggregate_group(members, aggregates)
            for key, members in groups.items()}


# ----------------------------------------------------------------------
# Comparing against executor result tables
# ----------------------------------------------------------------------
def canonicalize_table(table) -> dict[tuple, dict]:
    """An executor result table in :func:`reference_execute`'s shape.

    Group-by key columns are the qualified (``alias.column``) ones;
    aggregate outputs never contain a dot.
    """
    names = table.column_names
    key_names = [n for n in names if "." in n]
    value_names = [n for n in names if "." not in n]
    result: dict[tuple, dict] = {}
    for i in range(table.num_rows):
        key = tuple(_python_value(table.columns[n][i]) for n in key_names)
        result[key] = {n: _python_value(table.columns[n][i])
                       for n in value_names}
    return result


def _values_match(a, b) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        if a is None or b is None:
            return a is b
        return math.isclose(float(a), float(b), rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def assert_results_match(expected: dict[tuple, dict], actual: dict[tuple, dict],
                         context: str) -> None:
    """Fail with ``context`` on any group/row-count/aggregate mismatch."""
    assert set(expected) == set(actual), (
        f"{context}: group keys differ "
        f"(missing={sorted(set(expected) - set(actual))[:3]}, "
        f"extra={sorted(set(actual) - set(expected))[:3]})")
    for key, values in expected.items():
        got = actual[key]
        assert set(values) == set(got), (
            f"{context}: output columns differ for group {key!r}: "
            f"{sorted(values)} vs {sorted(got)}")
        for name, value in values.items():
            assert _values_match(value, got[name]), (
                f"{context}: group {key!r} aggregate {name!r}: "
                f"expected {value!r}, got {got[name]!r}")
