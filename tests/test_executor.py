"""Unit tests for the vectorized executor and its join primitives."""

import numpy as np
import pytest

from repro.executor.executor import ExecutionError, Executor, group_aggregate, union_all
from repro.executor.joins import (
    JoinOverflowError,
    equi_join_indices,
    join_result_size,
    multi_key_equi_join,
)
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.oracle import OracleCardinalityEstimator
from repro.plan.expressions import ColumnRef, Comparison, JoinPredicate
from repro.plan.logical import AggregateSpec, RelationRef, SPJQuery
from repro.plan.physical import JoinMethod
from repro.storage.table import DataTable
from tests.conftest import five_way_query


class TestJoinPrimitives:
    def test_equi_join_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 20, 200)
        right = rng.integers(0, 20, 300)
        li, ri = equi_join_indices(left, right)
        assert np.all(left[li] == right[ri])
        expected = sum(int((right == v).sum()) for v in left)
        assert len(li) == expected

    def test_equi_join_empty_inputs(self):
        li, ri = equi_join_indices(np.array([]), np.array([1, 2]))
        assert len(li) == 0 and len(ri) == 0

    def test_equi_join_no_matches(self):
        li, ri = equi_join_indices(np.array([1, 2]), np.array([3, 4]))
        assert len(li) == 0

    def test_equi_join_string_keys(self):
        left = np.array(["a", "b", "a"], dtype=object)
        right = np.array(["a", "c"], dtype=object)
        li, ri = equi_join_indices(left, right)
        assert len(li) == 2
        assert all(left[i] == "a" for i in li)

    def test_multi_key_join(self):
        left = [np.array([1, 1, 2]), np.array([10, 20, 10])]
        right = [np.array([1, 2, 1]), np.array([10, 10, 20])]
        li, ri = multi_key_equi_join(left, right)
        pairs = {(int(l), int(r)) for l, r in zip(li, ri)}
        assert pairs == {(0, 0), (1, 2), (2, 1)}

    def test_multi_key_requires_matching_key_counts(self):
        with pytest.raises(ValueError):
            multi_key_equi_join([np.array([1])], [])

    def test_join_result_size_exact(self):
        rng = np.random.default_rng(1)
        left = rng.integers(0, 15, 500)
        right = rng.integers(0, 15, 400)
        li, _ = equi_join_indices(left, right)
        assert join_result_size(left, right) == len(li)

    def test_overflow_guard(self):
        left = np.zeros(10_000, dtype=np.int64)
        right = np.zeros(10_000, dtype=np.int64)
        with pytest.raises(JoinOverflowError):
            equi_join_indices(left, right)


@pytest.fixture()
def executor(tiny_db):
    return Executor(tiny_db)


@pytest.fixture()
def optimizer(tiny_db):
    return Optimizer(tiny_db)


def brute_force_count(db, year_cutoff=2000, kw_prefix="kw_0", gender="f"):
    """Reference implementation of the 5-way query via numpy masks."""
    t, mk, k, ci, n = (db.table(x) for x in ("t", "mk", "k", "ci", "n"))
    t_ok = set(t.column("id")[t.column("year") > year_cutoff].tolist())
    k_ok = set(k.column("id")[[str(v).startswith(kw_prefix)
                               for v in k.column("kw")]].tolist())
    n_ok = set(n.column("id")[n.column("gender") == gender].tolist())
    mk_rows = [(m, kw) for m, kw in zip(mk.column("movie_id"), mk.column("keyword_id"))
               if m in t_ok and kw in k_ok]
    ci_rows = [(m, p) for m, p in zip(ci.column("movie_id"), ci.column("person_id"))
               if m in t_ok and p in n_ok]
    from collections import Counter
    mk_count = Counter(m for m, _ in mk_rows)
    ci_count = Counter(m for m, _ in ci_rows)
    return sum(mk_count[m] * ci_count[m] for m in mk_count if m in ci_count)


class TestExecutor:
    def test_five_way_join_matches_bruteforce(self, tiny_db, executor, optimizer):
        plan = optimizer.plan(five_way_query())
        result = executor.execute(plan)
        count = result.table.to_rows()[0][0]
        assert count == brute_force_count(tiny_db)

    def test_plan_independent_result(self, tiny_db, executor):
        """Default and oracle-driven plans must produce identical results."""
        spj = five_way_query()
        default_plan = Optimizer(tiny_db).plan(spj)
        optimal_plan = Optimizer(tiny_db).with_estimator(
            OracleCardinalityEstimator(tiny_db)).plan(spj)
        a = executor.execute(default_plan).table.to_rows()
        b = executor.execute(optimal_plan).table.to_rows()
        assert a == b

    def test_actual_rows_recorded(self, executor, optimizer):
        plan = optimizer.plan(five_way_query())
        executor.execute(plan)
        for join in plan.join_nodes():
            assert join.actual_rows is not None
            assert join.actual_time is not None

    def test_extra_columns_survive(self, executor, optimizer):
        spj = five_way_query()
        sub = SPJQuery(name="sub",
                       relations=(RelationRef.base("t", "t"),
                                  RelationRef.base("mk", "mk")),
                       join_predicates=(JoinPredicate(ColumnRef("mk", "movie_id"),
                                                      ColumnRef("t", "id")),),
                       filters=spj.filters_for(spj.relation("t")))
        plan = optimizer.plan(sub)
        result = executor.execute(plan, extra_columns=(ColumnRef("mk", "keyword_id"),
                                                       ColumnRef("t", "year")))
        assert "mk.keyword_id" in result.table.column_names
        assert "t.year" in result.table.column_names

    def test_cache_reuses_subtree_results(self, executor, optimizer):
        from repro.plan.physical import PhysicalPlan

        plan = optimizer.plan(five_way_query())
        cache = {}
        first_join = plan.join_nodes()[0]
        sub_plan = PhysicalPlan("sub", first_join,
                                output_columns=tuple(five_way_query().referenced_columns()))
        executor.execute(sub_plan, cache=cache)
        assert id(first_join) in cache
        # Executing the full plan afterwards must not clear or bypass the cache.
        executor.execute(plan, cache=cache)
        assert id(plan.root) in cache

    def test_scalar_aggregates(self, executor, optimizer, tiny_db):
        spj = five_way_query()
        plan = optimizer.plan(spj)
        result = executor.execute(plan)
        row = result.table.to_rows()[0]
        assert row[0] == brute_force_count(tiny_db)
        assert row[1] > 2000  # min year respects the filter

    def test_empty_result_count_zero(self, executor, optimizer, tiny_schema):
        spj = SPJQuery(
            name="empty",
            relations=(RelationRef.base("t", "t"),),
            filters=(Comparison(ColumnRef("t", "year"), ">", 3000),),
            aggregates=(AggregateSpec("count", None, "cnt"),),
        )
        result = executor.execute(Optimizer(executor.database).plan(spj))
        assert result.table.to_rows()[0][0] == 0

    def test_temp_table_scan(self, tiny_db, executor, optimizer):
        """Materialized temporaries can be joined like base relations."""
        from repro.catalog.analyze import analyze_columns

        sub = SPJQuery(name="sub",
                       relations=(RelationRef.base("t", "t"),
                                  RelationRef.base("mk", "mk")),
                       join_predicates=(JoinPredicate(ColumnRef("mk", "movie_id"),
                                                      ColumnRef("t", "id")),))
        result = executor.execute(optimizer.plan(sub),
                                  extra_columns=(ColumnRef("mk", "keyword_id"),))
        stats = analyze_columns(dict(result.table.columns))
        temp_name = tiny_db.register_temp(result.table, stats, frozenset({"t", "mk"}))
        temp_ref = RelationRef.temp(temp_name, frozenset({"t", "mk"}))
        joined = SPJQuery(
            name="over-temp",
            relations=(temp_ref, RelationRef.base("k", "k")),
            join_predicates=(JoinPredicate(ColumnRef("mk", "keyword_id"),
                                           ColumnRef("k", "id")),),
            aggregates=(AggregateSpec("count", None, "cnt"),),
        )
        final = executor.execute(optimizer.plan(joined))
        expected = executor.execute(optimizer.plan(SPJQuery(
            name="direct",
            relations=(RelationRef.base("t", "t"), RelationRef.base("mk", "mk"),
                       RelationRef.base("k", "k")),
            join_predicates=(JoinPredicate(ColumnRef("mk", "movie_id"),
                                           ColumnRef("t", "id")),
                             JoinPredicate(ColumnRef("mk", "keyword_id"),
                                           ColumnRef("k", "id"))),
            aggregates=(AggregateSpec("count", None, "cnt"),),
        )))
        tiny_db.drop_temp_tables()
        assert final.table.to_rows() == expected.table.to_rows()

    def test_index_nl_and_hash_agree(self, tiny_db, optimizer, executor):
        """Forcing hash joins produces the same result as index NL plans."""
        from repro.optimizer.join_enum import EnumeratorConfig
        from repro.optimizer.optimizer import OptimizerConfig

        spj = five_way_query()
        hash_only = Optimizer(tiny_db, config=OptimizerConfig(
            enumerator=EnumeratorConfig(enable_index_nl=False, enable_merge=False)))
        a = executor.execute(hash_only.plan(spj)).table.to_rows()
        b = executor.execute(optimizer.plan(spj)).table.to_rows()
        assert a == b


class TestAggregationHelpers:
    def test_group_aggregate(self):
        columns = {
            "g.key": np.array(["a", "b", "a", "a"], dtype=object),
            "v.x": np.array([1, 2, 3, 4]),
        }
        out = group_aggregate(columns, (ColumnRef("g", "key"),),
                              (AggregateSpec("sum", ColumnRef("v", "x"), "total"),
                               AggregateSpec("count", None, "cnt")))
        rows = {tuple(r) for r in out.to_rows()}
        assert rows == {("a", 8, 3), ("b", 2, 1)}

    def test_group_aggregate_without_groups_is_scalar(self):
        columns = {"v.x": np.array([1.0, 2.0, 3.0])}
        out = group_aggregate(columns, (),
                              (AggregateSpec("avg", ColumnRef("v", "x"), "mean"),))
        assert out.to_rows()[0][0] == pytest.approx(2.0)

    def test_union_all(self):
        a = DataTable("a", {"x": np.array([1, 2])})
        b = DataTable("b", {"x": np.array([3])})
        merged = union_all([a, b])
        assert list(merged.column("x")) == [1, 2, 3]

    def test_union_all_empty(self):
        assert union_all([]).num_rows == 0
