"""Unit tests for the vectorized executor and its join primitives."""

import numpy as np
import pytest

from repro.executor.executor import ExecutionError, Executor, group_aggregate, union_all
from repro.executor.joins import (
    JoinOverflowError,
    combine_key_pair,
    equi_join_indices,
    join_result_size,
    multi_key_equi_join,
)
from repro.executor.subplan_cache import SubplanCache, subplan_signature
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.oracle import OracleCardinalityEstimator
from repro.plan.expressions import ColumnRef, Comparison, JoinPredicate
from repro.plan.logical import AggregateSpec, RelationRef, SPJQuery
from repro.plan.physical import JoinMethod
from repro.storage.table import DataTable
from tests.conftest import five_way_query


class TestJoinPrimitives:
    def test_equi_join_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        left = rng.integers(0, 20, 200)
        right = rng.integers(0, 20, 300)
        li, ri = equi_join_indices(left, right)
        assert np.all(left[li] == right[ri])
        expected = sum(int((right == v).sum()) for v in left)
        assert len(li) == expected

    def test_equi_join_empty_inputs(self):
        li, ri = equi_join_indices(np.array([]), np.array([1, 2]))
        assert len(li) == 0 and len(ri) == 0

    def test_equi_join_no_matches(self):
        li, ri = equi_join_indices(np.array([1, 2]), np.array([3, 4]))
        assert len(li) == 0

    def test_equi_join_string_keys(self):
        left = np.array(["a", "b", "a"], dtype=object)
        right = np.array(["a", "c"], dtype=object)
        li, ri = equi_join_indices(left, right)
        assert len(li) == 2
        assert all(left[i] == "a" for i in li)

    def test_multi_key_join(self):
        left = [np.array([1, 1, 2]), np.array([10, 20, 10])]
        right = [np.array([1, 2, 1]), np.array([10, 10, 20])]
        li, ri = multi_key_equi_join(left, right)
        pairs = {(int(l), int(r)) for l, r in zip(li, ri)}
        assert pairs == {(0, 0), (1, 2), (2, 1)}

    def test_multi_key_requires_matching_key_counts(self):
        with pytest.raises(ValueError):
            multi_key_equi_join([np.array([1])], [])

    def test_join_result_size_exact(self):
        rng = np.random.default_rng(1)
        left = rng.integers(0, 15, 500)
        right = rng.integers(0, 15, 400)
        li, _ = equi_join_indices(left, right)
        assert join_result_size(left, right) == len(li)

    def test_overflow_guard(self):
        left = np.zeros(10_000, dtype=np.int64)
        right = np.zeros(10_000, dtype=np.int64)
        with pytest.raises(JoinOverflowError):
            equi_join_indices(left, right)

    def test_combine_key_pair_survives_span_overflow(self):
        """Many high-cardinality key columns must not overflow the encoding.

        40 columns with ~100 distinct values each give a naive span product
        of 100**40 -- far past int64 -- so this exercises the re-uniquify
        fallback.  Row 0 matches right row 0 on every column; the decoy rows
        differ in at least one column and must not match.
        """
        rng = np.random.default_rng(7)
        n_cols = 40
        left_keys = [rng.integers(0, 100, 50) for _ in range(n_cols)]
        right_keys = [np.concatenate(([left_keys[i][0]], rng.integers(100, 200, 30)))
                      for i in range(n_cols)]
        li, ri = multi_key_equi_join(left_keys, right_keys)
        pairs = set(zip(li.tolist(), ri.tolist()))
        expected = {
            (i, j)
            for i in range(50) for j in range(31)
            if all(left_keys[c][i] == right_keys[c][j] for c in range(n_cols))
        }
        assert (0, 0) in expected
        assert pairs == expected

    def test_combine_key_pair_codes_stay_in_range(self):
        left_keys = [np.arange(1000, dtype=np.int64) * (k + 1) + k
                     for k in range(30)]
        right_keys = [arr.copy() for arr in left_keys]
        lc, rc = combine_key_pair(left_keys, right_keys)
        assert lc.dtype == np.int64 and rc.dtype == np.int64
        assert lc.min() >= 0 and rc.min() >= 0
        # Every row matches exactly its own counterpart.
        assert np.array_equal(lc, rc)
        assert len(np.unique(lc)) == 1000


@pytest.fixture()
def executor(tiny_db):
    return Executor(tiny_db)


@pytest.fixture()
def optimizer(tiny_db):
    return Optimizer(tiny_db)


def brute_force_count(db, year_cutoff=2000, kw_prefix="kw_0", gender="f"):
    """Reference implementation of the 5-way query via numpy masks."""
    t, mk, k, ci, n = (db.table(x) for x in ("t", "mk", "k", "ci", "n"))
    t_ok = set(t.column("id")[t.column("year") > year_cutoff].tolist())
    k_ok = set(k.column("id")[[str(v).startswith(kw_prefix)
                               for v in k.column_values("kw")]].tolist())
    n_ok = set(n.column("id")[n.column_values("gender") == gender].tolist())
    mk_rows = [(m, kw) for m, kw in zip(mk.column("movie_id"), mk.column("keyword_id"))
               if m in t_ok and kw in k_ok]
    ci_rows = [(m, p) for m, p in zip(ci.column("movie_id"), ci.column("person_id"))
               if m in t_ok and p in n_ok]
    from collections import Counter
    mk_count = Counter(m for m, _ in mk_rows)
    ci_count = Counter(m for m, _ in ci_rows)
    return sum(mk_count[m] * ci_count[m] for m in mk_count if m in ci_count)


class TestExecutor:
    def test_five_way_join_matches_bruteforce(self, tiny_db, executor, optimizer):
        plan = optimizer.plan(five_way_query())
        result = executor.execute(plan)
        count = result.table.to_rows()[0][0]
        assert count == brute_force_count(tiny_db)

    def test_plan_independent_result(self, tiny_db, executor):
        """Default and oracle-driven plans must produce identical results."""
        spj = five_way_query()
        default_plan = Optimizer(tiny_db).plan(spj)
        optimal_plan = Optimizer(tiny_db).with_estimator(
            OracleCardinalityEstimator(tiny_db)).plan(spj)
        a = executor.execute(default_plan).table.to_rows()
        b = executor.execute(optimal_plan).table.to_rows()
        assert a == b

    def test_actual_rows_recorded(self, executor, optimizer):
        plan = optimizer.plan(five_way_query())
        executor.execute(plan)
        for join in plan.join_nodes():
            assert join.actual_rows is not None
            assert join.actual_time is not None

    def test_extra_columns_survive(self, executor, optimizer):
        spj = five_way_query()
        sub = SPJQuery(name="sub",
                       relations=(RelationRef.base("t", "t"),
                                  RelationRef.base("mk", "mk")),
                       join_predicates=(JoinPredicate(ColumnRef("mk", "movie_id"),
                                                      ColumnRef("t", "id")),),
                       filters=spj.filters_for(spj.relation("t")))
        plan = optimizer.plan(sub)
        result = executor.execute(plan, extra_columns=(ColumnRef("mk", "keyword_id"),
                                                       ColumnRef("t", "year")))
        assert "mk.keyword_id" in result.table.column_names
        assert "t.year" in result.table.column_names

    def test_cache_reuses_subtree_results(self, executor, optimizer):
        from repro.plan.physical import PhysicalPlan

        plan = optimizer.plan(five_way_query())
        cache = {}
        first_join = plan.join_nodes()[0]
        sub_plan = PhysicalPlan("sub", first_join,
                                output_columns=tuple(five_way_query().referenced_columns()))
        executor.execute(sub_plan, cache=cache)
        assert id(first_join) in cache
        # Executing the full plan afterwards must not clear or bypass the cache.
        executor.execute(plan, cache=cache)
        assert id(plan.root) in cache

    def test_scalar_aggregates(self, executor, optimizer, tiny_db):
        spj = five_way_query()
        plan = optimizer.plan(spj)
        result = executor.execute(plan)
        row = result.table.to_rows()[0]
        assert row[0] == brute_force_count(tiny_db)
        assert row[1] > 2000  # min year respects the filter

    def test_empty_result_count_zero(self, executor, optimizer, tiny_schema):
        spj = SPJQuery(
            name="empty",
            relations=(RelationRef.base("t", "t"),),
            filters=(Comparison(ColumnRef("t", "year"), ">", 3000),),
            aggregates=(AggregateSpec("count", None, "cnt"),),
        )
        result = executor.execute(Optimizer(executor.database).plan(spj))
        assert result.table.to_rows()[0][0] == 0

    def test_temp_table_scan(self, tiny_db, executor, optimizer):
        """Materialized temporaries can be joined like base relations."""
        from repro.catalog.analyze import analyze_columns

        sub = SPJQuery(name="sub",
                       relations=(RelationRef.base("t", "t"),
                                  RelationRef.base("mk", "mk")),
                       join_predicates=(JoinPredicate(ColumnRef("mk", "movie_id"),
                                                      ColumnRef("t", "id")),))
        result = executor.execute(optimizer.plan(sub),
                                  extra_columns=(ColumnRef("mk", "keyword_id"),))
        stats = analyze_columns(dict(result.table.columns))
        temp_name = tiny_db.register_temp(result.table, stats, frozenset({"t", "mk"}))
        temp_ref = RelationRef.temp(temp_name, frozenset({"t", "mk"}))
        joined = SPJQuery(
            name="over-temp",
            relations=(temp_ref, RelationRef.base("k", "k")),
            join_predicates=(JoinPredicate(ColumnRef("mk", "keyword_id"),
                                           ColumnRef("k", "id")),),
            aggregates=(AggregateSpec("count", None, "cnt"),),
        )
        final = executor.execute(optimizer.plan(joined))
        expected = executor.execute(optimizer.plan(SPJQuery(
            name="direct",
            relations=(RelationRef.base("t", "t"), RelationRef.base("mk", "mk"),
                       RelationRef.base("k", "k")),
            join_predicates=(JoinPredicate(ColumnRef("mk", "movie_id"),
                                           ColumnRef("t", "id")),
                             JoinPredicate(ColumnRef("mk", "keyword_id"),
                                           ColumnRef("k", "id"))),
            aggregates=(AggregateSpec("count", None, "cnt"),),
        )))
        tiny_db.drop_temp_tables()
        assert final.table.to_rows() == expected.table.to_rows()

    def test_index_nl_and_hash_agree(self, tiny_db, optimizer, executor):
        """Forcing hash joins produces the same result as index NL plans."""
        from repro.optimizer.join_enum import EnumeratorConfig
        from repro.optimizer.optimizer import OptimizerConfig

        spj = five_way_query()
        hash_only = Optimizer(tiny_db, config=OptimizerConfig(
            enumerator=EnumeratorConfig(enable_index_nl=False, enable_merge=False)))
        a = executor.execute(hash_only.plan(spj)).table.to_rows()
        b = executor.execute(optimizer.plan(spj)).table.to_rows()
        assert a == b

    def test_index_nl_residual_filter(self, tiny_db, executor):
        """INDEX_NL applies the inner scan's filters *after* the index probe."""
        from repro.plan.physical import JoinNode, PhysicalPlan, ScanNode

        year_filter = Comparison(ColumnRef("t", "year"), ">", 2000)
        predicate = JoinPredicate(ColumnRef("mk", "movie_id"), ColumnRef("t", "id"))
        outputs = (ColumnRef("mk", "id"), ColumnRef("t", "year"))

        def build(method):
            outer = ScanNode(relation=RelationRef.base("mk", "mk"))
            inner = ScanNode(relation=RelationRef.base("t", "t"),
                             filters=(year_filter,))
            join = JoinNode(left=outer, right=inner, predicates=(predicate,),
                            method=method,
                            index_column=(ColumnRef("t", "id")
                                          if method is JoinMethod.INDEX_NL
                                          else None))
            return PhysicalPlan(query_name="residual", root=join,
                                output_columns=outputs)

        via_index = executor.execute(build(JoinMethod.INDEX_NL))
        via_hash = executor.execute(build(JoinMethod.HASH))
        assert via_index.join_rows == via_hash.join_rows > 0
        assert (sorted(via_index.table.to_rows())
                == sorted(via_hash.table.to_rows()))
        # The residual filter actually removed probe results.
        assert all(row[1] > 2000 for row in via_index.table.to_rows())

    def test_index_nl_missing_index_rejected(self, tiny_db, executor):
        """An INDEX_NL join on an unindexed column is an execution error."""
        from repro.plan.physical import JoinNode, PhysicalPlan, ScanNode

        outer = ScanNode(relation=RelationRef.base("mk", "mk"))
        inner = ScanNode(relation=RelationRef.base("t", "t"))
        join = JoinNode(
            left=outer, right=inner,
            predicates=(JoinPredicate(ColumnRef("mk", "movie_id"),
                                      ColumnRef("t", "year")),),
            method=JoinMethod.INDEX_NL, index_column=ColumnRef("t", "year"))
        plan = PhysicalPlan(query_name="no-index", root=join)
        with pytest.raises(ExecutionError):
            executor.execute(plan)

    def test_operator_times_populated(self, executor, optimizer):
        plan = optimizer.plan(five_way_query())
        result = executor.execute(plan)
        joins = plan.join_nodes()
        # At least one entry per join plus the root aggregation (INDEX_NL
        # joins absorb their inner scan, so the scan count varies by plan).
        assert len(result.operator_times) > len(joins)
        assert "Aggregate" in result.operator_times
        for join in joins:
            label_aliases = "+".join(sorted(join.covered_aliases()))
            matching = [label for label in result.operator_times
                        if label.endswith(f"[{label_aliases}]")]
            assert matching, f"no operator time recorded for {label_aliases}"
            assert result.operator_times[matching[0]] == join.actual_time
        assert result.materialized_bytes > 0


class TestSubplanCache:
    def test_subtree_shared_across_join_orders(self, tiny_db):
        """Two optimizers picking different physical plans share subtrees."""
        from repro.optimizer.join_enum import EnumeratorConfig
        from repro.optimizer.optimizer import OptimizerConfig

        cache = SubplanCache()
        executor = Executor(tiny_db, subplan_cache=cache)
        spj = five_way_query()
        default_plan = Optimizer(tiny_db).plan(spj)
        hash_plan = Optimizer(tiny_db, config=OptimizerConfig(
            enumerator=EnumeratorConfig(enable_index_nl=False,
                                        enable_merge=False))).plan(spj)
        a = executor.execute(default_plan).table.to_rows()
        assert cache.hits == 0 and len(cache) > 0
        b = executor.execute(hash_plan).table.to_rows()
        assert a == b
        # At minimum every filtered scan signature recurs across the plans.
        assert cache.hits > 0

    def test_full_plan_rerun_is_one_hit(self, tiny_db, optimizer):
        cache = SubplanCache()
        executor = Executor(tiny_db, subplan_cache=cache)
        spj = five_way_query()
        first = executor.execute(optimizer.plan(spj)).table.to_rows()
        hits_before = cache.hits
        replan = optimizer.plan(spj)
        second = executor.execute(replan).table.to_rows()
        assert first == second
        # The re-planned root has the same signature: served entirely from
        # the cache (the root hit short-circuits the whole subtree).
        assert cache.hits == hits_before + 1
        assert replan.root.actual_rows is not None

    def test_temp_subtrees_not_cached(self, tiny_db, optimizer):
        from repro.catalog.analyze import analyze_columns

        cache = SubplanCache()
        executor = Executor(tiny_db, subplan_cache=cache)
        sub = SPJQuery(name="sub",
                       relations=(RelationRef.base("t", "t"),
                                  RelationRef.base("mk", "mk")),
                       join_predicates=(JoinPredicate(ColumnRef("mk", "movie_id"),
                                                      ColumnRef("t", "id")),))
        result = executor.execute(optimizer.plan(sub),
                                  extra_columns=(ColumnRef("mk", "keyword_id"),))
        stats = analyze_columns(dict(result.table.columns))
        temp_name = tiny_db.register_temp(result.table, stats,
                                          frozenset({"t", "mk"}))
        temp_ref = RelationRef.temp(temp_name, frozenset({"t", "mk"}))
        over_temp = SPJQuery(
            name="over-temp",
            relations=(temp_ref, RelationRef.base("k", "k")),
            join_predicates=(JoinPredicate(ColumnRef("mk", "keyword_id"),
                                           ColumnRef("k", "id")),),
            aggregates=(AggregateSpec("count", None, "cnt"),),
        )
        rejected_before = cache.rejected
        executor.execute(optimizer.plan(over_temp))
        tiny_db.drop_temp_tables()
        assert cache.rejected > rejected_before
        for (scans, _preds) in list(cache._entries):
            assert not any(scan[3] for scan in scans), "temp subtree was cached"

    def test_signature_matches_logical_description(self, tiny_db, optimizer):
        """A plan subtree's signature equals the logical subplan signature."""
        spj = five_way_query()
        plan = optimizer.plan(spj)
        assert plan.root.signature() == subplan_signature(
            spj.relations, spj.filters, spj.join_predicates)

    def test_lru_eviction(self):
        from repro.executor.chunk import Chunk

        cache = SubplanCache(max_entries=2)
        chunks = Chunk((), 0)
        for i in range(4):
            sig = (frozenset({("scan", f"t{i}", f"t{i}", False, frozenset())}),
                   frozenset())
            cache.put(sig, chunks)
        assert len(cache) == 2

    def test_cache_rejects_second_database(self, tiny_db, tiny_schema):
        """Reusing one cache against a different database fails loudly."""
        from tests.conftest import build_tiny_database

        cache = SubplanCache()
        Executor(tiny_db, subplan_cache=cache)
        other_db = build_tiny_database(tiny_schema, seed=1)
        with pytest.raises(ValueError, match="bound to a different Database"):
            Executor(other_db, subplan_cache=cache)
        # clear() unbinds, allowing deliberate reuse from scratch.
        cache.clear()
        Executor(other_db, subplan_cache=cache)

    def test_total_byte_budget_enforced(self):
        from repro.executor.chunk import Chunk

        # Sourceless chunks cost num_rows * 8 bytes each.
        cache = SubplanCache(max_entries=100, max_rows=10 ** 9,
                             max_bytes=3_000 * 8)
        for i in range(10):
            sig = (frozenset({("scan", f"t{i}", f"t{i}", False, frozenset())}),
                   frozenset())
            cache.put(sig, Chunk((), 1_000))
        assert cache.total_bytes <= cache.max_bytes
        assert len(cache) == 3
        # An entry that alone exceeds the budget is rejected outright.
        big_sig = (frozenset({("scan", "big", "big", False, frozenset())}),
                   frozenset())
        rejected_before = cache.rejected
        cache.put(big_sig, Chunk((), 10_000))
        assert cache.rejected == rejected_before + 1
        assert len(cache) == 3

    def test_unhashable_filter_literal_skips_caching(self, tiny_db):
        """A filter holding an unhashable literal must not break execution."""
        from repro.plan.expressions import InList
        from repro.plan.physical import PhysicalPlan, ScanNode

        cache = SubplanCache()
        executor = Executor(tiny_db, subplan_cache=cache)
        scan = ScanNode(relation=RelationRef.base("t", "t"),
                        filters=(InList(ColumnRef("t", "year"), [2015, 2016]),))
        plan = PhysicalPlan(query_name="unhashable", root=scan,
                            output_columns=(ColumnRef("t", "year"),))
        result = executor.execute(plan)
        assert result.num_rows > 0
        assert set(result.table.column("t.year").tolist()) == {2015, 2016}
        assert len(cache) == 0  # nothing cached, nothing crashed

    def test_oracle_answers_from_subplan_cache(self, tiny_db, optimizer):
        from repro.optimizer.oracle import TrueCardinalityOracle

        cache = SubplanCache()
        executor = Executor(tiny_db, subplan_cache=cache)
        spj = five_way_query()
        plan = optimizer.plan(spj)
        result = executor.execute(plan)
        oracle = TrueCardinalityOracle(tiny_db, subplan_cache=cache)
        rows = oracle.true_rows(spj.relations, spj.filters, spj.join_predicates,
                                query_name=spj.name)
        assert oracle.subplan_hits == 1
        assert oracle.executions == 0
        assert int(rows) == result.join_rows


class TestAggregationHelpers:
    def test_group_aggregate(self):
        columns = {
            "g.key": np.array(["a", "b", "a", "a"], dtype=object),
            "v.x": np.array([1, 2, 3, 4]),
        }
        out = group_aggregate(columns, (ColumnRef("g", "key"),),
                              (AggregateSpec("sum", ColumnRef("v", "x"), "total"),
                               AggregateSpec("count", None, "cnt")))
        rows = {tuple(r) for r in out.to_rows()}
        assert rows == {("a", 8, 3), ("b", 2, 1)}

    def test_group_aggregate_without_groups_is_scalar(self):
        columns = {"v.x": np.array([1.0, 2.0, 3.0])}
        out = group_aggregate(columns, (),
                              (AggregateSpec("avg", ColumnRef("v", "x"), "mean"),))
        assert out.to_rows()[0][0] == pytest.approx(2.0)

    def test_group_aggregate_min_max_avg(self):
        columns = {
            "g.key": np.array([2, 1, 2, 1, 2]),
            "v.x": np.array([5.0, 1.0, 3.0, 7.0, 4.0]),
            "v.s": np.array(["b", "z", "a", "c", "d"], dtype=object),
        }
        out = group_aggregate(
            columns, (ColumnRef("g", "key"),),
            (AggregateSpec("min", ColumnRef("v", "x"), "lo"),
             AggregateSpec("max", ColumnRef("v", "x"), "hi"),
             AggregateSpec("avg", ColumnRef("v", "x"), "mean"),
             AggregateSpec("min", ColumnRef("v", "s"), "first_s")))
        rows = {tuple(r) for r in out.to_rows()}
        assert rows == {(1, 1.0, 7.0, 4.0, "c"), (2, 3.0, 5.0, 4.0, "a")}
        # Object-dtype output contract is preserved.
        for name in ("lo", "hi", "mean", "first_s"):
            assert out.column(name).dtype == object

    def test_group_aggregate_empty_input(self):
        columns = {"g.key": np.array([], dtype=np.int64),
                   "v.x": np.array([], dtype=np.float64)}
        out = group_aggregate(columns, (ColumnRef("g", "key"),),
                              (AggregateSpec("sum", ColumnRef("v", "x"), "total"),
                               AggregateSpec("count", None, "cnt")))
        assert out.num_rows == 0

    def test_group_aggregate_matches_python_reference(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 17, 400)
        vals = rng.normal(size=400)
        columns = {"g.k": keys, "v.x": vals}
        out = group_aggregate(
            columns, (ColumnRef("g", "k"),),
            (AggregateSpec("sum", ColumnRef("v", "x"), "s"),
             AggregateSpec("min", ColumnRef("v", "x"), "lo"),
             AggregateSpec("max", ColumnRef("v", "x"), "hi"),
             AggregateSpec("avg", ColumnRef("v", "x"), "m"),
             AggregateSpec("count", None, "c")))
        by_key = {}
        for k, v in zip(keys.tolist(), vals.tolist()):
            by_key.setdefault(k, []).append(v)
        got = {row[0]: row[1:] for row in out.to_rows()}
        assert set(got) == set(by_key)
        for k, members in by_key.items():
            s, lo, hi, m, c = got[k]
            assert s == pytest.approx(sum(members))
            assert lo == min(members) and hi == max(members)
            assert m == pytest.approx(sum(members) / len(members))
            assert c == len(members)

    def test_group_aggregate_survives_span_overflow(self):
        """Many high-cardinality group-by columns must not overflow int64.

        40 key columns with ~100 distinct values each give a naive span
        product of 100**40 -- far past int64 -- so this exercises the
        re-uniquify fallback (same encoding as combine_key_pair).  Rows with
        identical composites must land in one group, wrapped ids must not
        merge distinct composites.
        """
        rng = np.random.default_rng(11)
        n_rows, n_cols = 60, 40
        keys = [rng.integers(0, 100, n_rows) for _ in range(n_cols)]
        # Duplicate the first ten rows so some groups have exactly 2 members.
        keys = [np.concatenate([arr, arr[:10]]) for arr in keys]
        columns = {f"g.k{i}": arr for i, arr in enumerate(keys)}
        columns["v.x"] = np.ones(n_rows + 10, dtype=np.int64)
        refs = tuple(ColumnRef("g", f"k{i}") for i in range(n_cols))
        out = group_aggregate(columns, refs,
                              (AggregateSpec("count", None, "cnt"),))
        composites = {tuple(arr[i] for arr in keys) for i in range(n_rows + 10)}
        assert out.num_rows == len(composites)
        counts = {int(c) for c in out.column("cnt")}
        assert counts == {1, 2}

    def test_union_all(self):
        a = DataTable("a", {"x": np.array([1, 2])})
        b = DataTable("b", {"x": np.array([3])})
        merged = union_all([a, b])
        assert list(merged.column("x")) == [1, 2, 3]

    def test_union_all_empty(self):
        assert union_all([]).num_rows == 0


class TestEmptyTablePath:
    """The empty-table edge path through Scan and Aggregate (zone maps give
    such tables zero blocks, so the pruned scan must handle them too)."""

    @pytest.fixture()
    def empty_db(self, tiny_schema):
        from repro.storage.database import Database

        db = Database(tiny_schema, block_size=64)
        db.load_table(DataTable("t", {
            "id": np.array([], dtype=np.int64),
            "year": np.array([], dtype=np.int64),
            "kind": np.array([], dtype=object),
        }))
        return db

    def test_scan_and_aggregate_over_empty_table(self, empty_db):
        spj = SPJQuery(
            name="empty",
            relations=(RelationRef.base("t", "t"),),
            filters=(Comparison(ColumnRef("t", "year"), ">", 2000),),
            aggregates=(AggregateSpec("count", None, "row_count"),
                        AggregateSpec("min", ColumnRef("t", "year"), "min_year")),
        )
        plan = Optimizer(empty_db).plan(spj)
        result = Executor(empty_db).execute(plan)
        assert result.join_rows == 0
        rows = result.table.to_rows()
        assert rows == [(0, None)]

    def test_unfiltered_empty_scan(self, empty_db):
        spj = SPJQuery(
            name="empty-unfiltered",
            relations=(RelationRef.base("t", "t"),),
            aggregates=(AggregateSpec("count", None, "row_count"),),
        )
        result = Executor(empty_db).execute(Optimizer(empty_db).plan(spj))
        assert result.table.to_rows() == [(0,)]

    def test_empty_table_has_zero_blocks(self, empty_db):
        zone_maps = empty_db.table("t").zone_maps
        assert zone_maps is not None
        assert zone_maps.num_blocks == 0
