"""Served-mode results must be bit-identical to the sequential harness.

The serving layer changes *when* and *where* queries run — worker
threads, session views, a shared lock-protected subplan cache — but must
never change *what* they return.  This module locks that in with the
strongest check available: a 200-query generated stream (the same
differential database and sqlgen plumbing as ``tests/test_differential``)
is executed once sequentially to produce per-query reference results,
then served concurrently under **every** registered re-optimization
policy plus the Default baseline, with the shared subplan cache both on
and off.  Every served result must match its sequential reference under
:func:`tests.reference_eval.assert_results_match` (exact counts, keys,
and min/max; 1e-9 relative on float sums, since join re-association is
legitimate).

BLOCK admission with no timeout guarantees all 200 queries execute in
every configuration, so a pass is a statement about the full stream, not
a lucky admitted subset.  A mismatch fails with the reproducing
``(policy, cache, seed, index)`` tuple.
"""

from __future__ import annotations

import pytest

from repro.executor.subplan_cache import SubplanCache
from repro.reopt.registry import REOPT_ALGORITHMS
from repro.serving.admission import AdmissionPolicy
from repro.serving.driver import run_served
from repro.serving.schedule import build_arrivals, uniform_users
from repro.serving.server import ServingConfig
from tests.reference_eval import assert_results_match, canonicalize_table
from tests.test_differential import (
    SEED,
    build_differential_database,
    make_stream,
)

N_QUERIES = 200
POLICIES = REOPT_ALGORITHMS + ("Default",)


@pytest.fixture(scope="module")
def diff_db():
    return build_differential_database()


@pytest.fixture(scope="module")
def stream_queries(diff_db):
    return make_stream(diff_db).generate(N_QUERIES)


@pytest.fixture(scope="module")
def sequential_reference(diff_db, stream_queries):
    """Canonicalized per-query results from the plain sequential harness."""
    from repro.bench.harness import HarnessConfig, run_workload
    result = run_workload(diff_db, stream_queries, "Default",
                          HarnessConfig(timeout_seconds=None))
    assert len(result.reports) == N_QUERIES
    return [canonicalize_table(report.final_table)
            for report in result.reports]


@pytest.mark.parametrize("cache_on", [False, True], ids=["nocache", "cache"])
@pytest.mark.parametrize("policy", POLICIES)
def test_served_results_match_sequential(diff_db, stream_queries,
                                         sequential_reference, policy,
                                         cache_on):
    # 8 users at 100 qps each: the whole schedule spans ~0.25 virtual
    # seconds, so the run is execution-bound, not pacing-bound.
    arrivals = build_arrivals(uniform_users(8, 100.0, 25), seed=SEED,
                              max_events=N_QUERIES)
    cache = SubplanCache() if cache_on else None
    config = ServingConfig(
        algorithm=policy, workers=4, queue_capacity=16,
        admission=AdmissionPolicy.BLOCK,  # back-pressure: nothing shed
        timeout_seconds=None,             # nothing clipped
        subplan_cache=cache, keep_results=True)
    result = run_served(diff_db, stream_queries, arrivals, config)

    summary = result.summary
    assert summary["completed"] == N_QUERIES, summary
    assert summary["shed"] == 0 and summary["errors"] == 0, summary
    assert len(result.outcomes) == N_QUERIES

    for outcome in result.outcomes:
        assert outcome.report is not None and not outcome.timed_out
        assert outcome.report.final_table is not None
        served = canonicalize_table(outcome.report.final_table)
        assert_results_match(
            sequential_reference[outcome.index], served,
            context=f"served {policy} "
                    f"(cache={'shared' if cache_on else 'off'}, "
                    f"seed={SEED}, index={outcome.index}) "
                    f"[{outcome.query_name}]")

    if cache_on:
        # The cache must have been exercised by the pool, and its byte
        # ledger must close out consistent after the concurrent traffic.
        assert cache.hits > 0
        assert cache.check_invariants() == []
