"""Tests for the seeded random workload generator (repro.workloads.sqlgen).

Covers the two hard guarantees the subsystem makes:

* **determinism** -- the stream is a pure function of (database, seed,
  configs): regenerating, slicing, and extending all reproduce identical
  queries;
* **validity** -- every generated query references only loaded tables and
  existing columns, is connected, and plans + executes without error on the
  seed databases under every registered policy.
"""

import pytest

from repro.bench.harness import HarnessConfig, run_generated
from repro.executor.subplan_cache import SubplanCache
from repro.plan.expressions import Between, Comparison, InList, StringPrefix
from repro.reopt.registry import ALGORITHM_NAMES, make_algorithm
from repro.workloads.sqlgen import (
    AggregateSamplerConfig,
    JoinSamplerConfig,
    PredicateSamplerConfig,
    RandomQueryGenerator,
    join_edges,
)
from repro.workloads.tpch import build_tpch_database


@pytest.fixture(scope="module")
def tpch_db():
    return build_tpch_database(scale=0.1)


def make_generator(db, seed=1, **overrides):
    kwargs = dict(
        join_config=JoinSamplerConfig(max_joins=3, min_joins=1),
        predicate_config=PredicateSamplerConfig(max_predicates=3),
        aggregate_config=AggregateSamplerConfig(),
    )
    kwargs.update(overrides)
    return RandomQueryGenerator(db, seed=seed, **kwargs)


class TestJoinEdges:
    def test_pk_fk_edges_cover_all_declared_fks(self, tpch_db):
        edges = join_edges(tpch_db, fk_only=True)
        assert all(e.kind == "pk-fk" for e in edges)
        # One edge per declared FK between loaded tables (TPC-H has 9).
        assert len(edges) == 9

    def test_fk_fk_edges_added_when_requested(self, tpch_db):
        edges = join_edges(tpch_db, fk_only=False)
        fk_fk = [e for e in edges if e.kind == "fk-fk"]
        assert fk_fk, "TPC-H has shared dimensions, fk-fk edges expected"
        # lineitem and partsupp both reference part and supplier.
        pairs = {frozenset((e.left_table, e.right_table)) for e in fk_fk}
        assert frozenset(("lineitem", "partsupp")) in pairs

    def test_edges_are_deterministically_ordered(self, tpch_db):
        assert join_edges(tpch_db, fk_only=False) == join_edges(tpch_db, fk_only=False)


class TestConfigValidation:
    def test_invalid_configs_rejected_at_construction(self):
        with pytest.raises(ValueError):
            JoinSamplerConfig(max_joins=1, min_joins=2)
        with pytest.raises(ValueError):
            PredicateSamplerConfig(selectivity=(0.5, 0.1))
        with pytest.raises(ValueError):
            PredicateSamplerConfig(max_in_values=1)
        with pytest.raises(ValueError):
            AggregateSamplerConfig(functions=("median",))
        with pytest.raises(ValueError):
            AggregateSamplerConfig(group_by_probability=1.5)


class TestDeterminism:
    def test_same_seed_reproduces_identical_stream(self, tpch_db):
        a = make_generator(tpch_db, seed=42).generate(30)
        b = make_generator(tpch_db, seed=42).generate(30)
        assert a == b

    def test_stream_is_sliceable(self, tpch_db):
        generator = make_generator(tpch_db, seed=42)
        full = generator.generate(20)
        assert generator.generate(5, start=10) == full[10:15]
        assert generator.query_at(7) == full[7]

    def test_iterator_matches_generate(self, tpch_db):
        generator = make_generator(tpch_db, seed=3)
        from_iter = [query for _, query in zip(range(8), iter(generator))]
        assert from_iter == generator.generate(8)

    def test_different_seeds_differ(self, tpch_db):
        a = make_generator(tpch_db, seed=1).generate(20)
        b = make_generator(tpch_db, seed=2).generate(20)
        assert a != b

    def test_rebuilt_database_reproduces_stream(self):
        """The stream depends only on (schema + statistics, seed, configs)."""
        a = make_generator(build_tpch_database(scale=0.1), seed=5).generate(10)
        b = make_generator(build_tpch_database(scale=0.1), seed=5).generate(10)
        assert a == b


class TestPointDropKnob:
    def _equality_filters(self, queries):
        return [pred for query in queries
                for leaf in query.root.spj_leaves()
                for pred in leaf.filters
                if isinstance(pred, Comparison) and pred.op == "="]

    def test_validation(self):
        with pytest.raises(ValueError):
            PredicateSamplerConfig(point_drop_rate=1.5)
        with pytest.raises(ValueError):
            PredicateSamplerConfig(point_drop_rate=-0.1)
        with pytest.raises(ValueError):
            PredicateSamplerConfig(point_drop_rows=-1.0)

    def test_rate_zero_keeps_default_streams_byte_identical(self, tpch_db):
        """The knob must not perturb existing seeded streams when off (no
        extra rng draw happens unless the rate is positive)."""
        base = make_generator(tpch_db, seed=9).generate(40)
        explicit = make_generator(
            tpch_db, seed=9,
            predicate_config=PredicateSamplerConfig(
                max_predicates=3, point_drop_rate=0.0)).generate(40)
        assert base == explicit

    def test_full_rate_with_huge_threshold_drops_every_point_filter(self,
                                                                    tpch_db):
        """rate=1.0 with an unbounded row threshold: no equality predicate
        can survive the point branch (only the point shape emits ``=``)."""
        queries = make_generator(
            tpch_db, seed=9,
            predicate_config=PredicateSamplerConfig(
                max_predicates=3, point_drop_rate=1.0,
                point_drop_rows=1e18)).generate(80)
        assert self._equality_filters(queries) == []

    def test_default_threshold_only_drops_near_single_row_lookups(self,
                                                                  tpch_db):
        """With the default 2-row threshold the knob thins, not removes,
        the equality predicates: surviving ones are estimated to match
        more than ``point_drop_rows`` rows."""
        config = PredicateSamplerConfig(max_predicates=3,
                                        point_drop_rate=1.0)
        queries = make_generator(
            tpch_db, seed=9, predicate_config=config).generate(80)
        survivors = self._equality_filters(queries)
        baseline = self._equality_filters(
            make_generator(tpch_db, seed=9).generate(80))
        assert len(survivors) < len(baseline)
        table_of = {}
        for query in queries:
            for leaf in query.root.spj_leaves():
                table_of.update({r.alias: r.table_name
                                 for r in leaf.relations})
        for pred in survivors:
            stats = tpch_db.stats(table_of[pred.column.alias])
            column = stats.column(pred.column.column)
            expected = column.equality_selectivity(pred.value) * column.num_rows
            assert expected > config.point_drop_rows, (pred, expected)


class TestValidity:
    def test_queries_reference_schema_and_are_connected(self, tpch_db):
        generator = make_generator(
            tpch_db, seed=11,
            join_config=JoinSamplerConfig(max_joins=5, fk_only=False),
            aggregate_config=AggregateSamplerConfig(group_by_probability=0.3))
        for query in generator.generate(40):
            for spj in query.root.spj_leaves():
                assert spj.is_connected(), query.name
                table_of = {r.alias: r.table_name for r in spj.relations}
                for ref in spj.referenced_columns():
                    table = tpch_db.schema.table(table_of[ref.alias])
                    assert table.has_column(ref.column), (query.name, ref)

    def test_filters_use_supported_shapes(self, tpch_db):
        generator = make_generator(tpch_db, seed=11)
        shapes = set()
        for query in generator.generate(60):
            for pred in query.root.spj_leaves()[0].filters:
                shapes.add(type(pred))
                assert isinstance(pred, (Between, Comparison, InList, StringPrefix))
        # The stream exercises more than one predicate shape.
        assert len(shapes) >= 2

    def test_range_filters_target_selectivity(self, tpch_db):
        """Sampled BETWEEN bounds actually select rows from the real data."""
        generator = make_generator(
            tpch_db, seed=4,
            predicate_config=PredicateSamplerConfig(
                max_predicates=3, selectivity=(0.2, 0.4),
                range_weight=1.0, point_weight=0.0, in_weight=0.0,
                prefix_weight=0.0))
        checked = 0
        for query in generator.generate(40):
            spj = query.root.spj_leaves()[0]
            table_of = {r.alias: r.table_name for r in spj.relations}
            for pred in spj.filters:
                if not isinstance(pred, Between):
                    continue
                column = tpch_db.table(table_of[pred.column.alias]).column(
                    pred.column.column)
                fraction = ((column >= pred.low) & (column <= pred.high)).mean()
                assert 0.0 < fraction < 0.95, (query.name, pred, fraction)
                checked += 1
        assert checked >= 10

    def test_group_by_queries_are_nonspj_with_bounded_keys(self, tpch_db):
        generator = make_generator(
            tpch_db, seed=9,
            aggregate_config=AggregateSamplerConfig(group_by_probability=1.0,
                                                    max_group_ndv=30))
        grouped = [q for q in generator.generate(20) if not q.is_spj]
        assert grouped, "group_by_probability=1.0 must produce GROUP BY queries"
        for query in grouped:
            report = make_algorithm("Default", tpch_db).run(query)
            assert not report.timed_out
            assert report.final_table.num_rows <= 30

    def test_zero_join_queries_execute(self, tpch_db):
        generator = make_generator(
            tpch_db, seed=2,
            join_config=JoinSamplerConfig(max_joins=0, min_joins=0))
        for query in generator.generate(5):
            assert query.root.spj_leaves()[0].num_joins == 0
            report = make_algorithm("QuerySplit", tpch_db).run(query)
            assert not report.timed_out

    def test_fk_only_streams_make_nonexpanding_joins(self, tpch_db):
        generator = make_generator(tpch_db, seed=6)
        for query in generator.generate(20):
            spj = query.root.spj_leaves()[0]
            table_of = {r.alias: r.table_name for r in spj.relations}
            for pred in spj.join_predicates:
                kind = tpch_db.schema.join_kind(
                    table_of[pred.left.alias], pred.left.column,
                    table_of[pred.right.alias], pred.right.column)
                assert kind == "pk-fk", (query.name, pred)


class TestGeneratedStreamHarness:
    def test_acceptance_50_queries_under_every_policy(self, tpch_db):
        """Acceptance: a seeded 50-query TPC-H stream executes under every
        registered policy with zero execution errors, and re-running with the
        same seed reproduces the identical stream."""
        generator = make_generator(tpch_db, seed=7)
        cache = SubplanCache()
        config = HarnessConfig(timeout_seconds=60.0, subplan_cache=cache)
        for algorithm in ALGORITHM_NAMES:
            result = run_generated(generator, 50, algorithm, config)
            assert len(result.reports) == 50
            assert result.timeouts == 0, algorithm
            assert all(r.final_table is not None for r in result.reports), algorithm
        assert make_generator(tpch_db, seed=7).generate(50) == generator.generate(50)
        assert cache.hits > 0

    def test_run_generated_matches_manual_run(self, tpch_db):
        generator = make_generator(tpch_db, seed=1)
        via_harness = run_generated(generator, 3, "Default",
                                    HarnessConfig(timeout_seconds=30.0))
        for report, query in zip(via_harness.reports, generator.generate(3)):
            direct = make_algorithm("Default", tpch_db).run(query)
            assert report.final_table.to_rows() == direct.final_table.to_rows()
