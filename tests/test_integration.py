"""Integration tests: all algorithms agree on real workload queries end-to-end."""

import pytest

from repro.bench.harness import HarnessConfig, run_query, run_workload
from repro.bench.reporting import format_seconds, format_table, relative_slowdown, \
    summarize_workloads
from repro.report import WorkloadResult
from repro.reopt import make_algorithm

#: Algorithms cheap enough to run on every sampled JOB query in CI.
FAST_ALGORITHMS = ("Default", "QuerySplit", "Reopt", "Pop", "IEF", "Perron19",
                   "USE", "Pessi.", "FS", "OptRange")


class TestJOBAgreement:
    @pytest.mark.parametrize("algorithm", FAST_ALGORITHMS)
    def test_algorithms_agree_with_default(self, imdb_db, job_sample, algorithm):
        for query in job_sample:
            expected = make_algorithm("Default", imdb_db).run(query)
            report = make_algorithm(algorithm, imdb_db).run(query)
            assert not report.timed_out, (algorithm, query.name)
            assert report.final_table.to_rows() == expected.final_table.to_rows(), (
                algorithm, query.name)

    def test_oracle_backed_algorithms_agree(self, imdb_db, job_sample):
        query = job_sample[2]
        expected = make_algorithm("Default", imdb_db).run(query)
        for algorithm in ("Optimal", "NeuroCard"):
            report = make_algorithm(algorithm, imdb_db).run(query)
            assert report.final_table.to_rows() == expected.final_table.to_rows()

    def test_index_configuration_does_not_change_results(self, imdb_db, job_sample):
        from repro.storage.database import IndexConfig

        pk_only = imdb_db.with_index_config(IndexConfig.PK_ONLY)
        query = job_sample[0]
        a = make_algorithm("QuerySplit", imdb_db).run(query)
        b = make_algorithm("QuerySplit", pk_only).run(query)
        assert a.final_table.to_rows() == b.final_table.to_rows()


class TestHarness:
    def test_run_query_and_workload(self, imdb_db, job_sample):
        config = HarnessConfig(timeout_seconds=30)
        report = run_query(imdb_db, job_sample[0], "QuerySplit", config)
        assert report.algorithm == "QuerySplit"
        result = run_workload(imdb_db, job_sample[:3], "QuerySplit", config)
        assert len(result.reports) == 3
        assert result.total_time > 0

    def test_estimator_factory_hook(self, imdb_db, job_sample):
        from repro.optimizer.cardinality import DefaultCardinalityEstimator
        from repro.optimizer.injection import NoisyCardinalityEstimator

        config = HarnessConfig(
            timeout_seconds=30,
            estimator_factory=lambda db: NoisyCardinalityEstimator(
                DefaultCardinalityEstimator(db), sigma=1.0, seed=3))
        report = run_query(imdb_db, job_sample[0], "QuerySplit", config)
        baseline = run_query(imdb_db, job_sample[0], "QuerySplit",
                             HarnessConfig(timeout_seconds=30))
        assert report.final_table.to_rows() == baseline.final_table.to_rows()

    def test_reporting_helpers(self, imdb_db, job_sample):
        config = HarnessConfig(timeout_seconds=30)
        results = {
            name: run_workload(imdb_db, job_sample[:2], name, config)
            for name in ("Default", "QuerySplit")
        }
        rows = summarize_workloads(results)
        assert len(rows) == 2
        table = format_table(["alg", "time", "to", "mats"], rows, title="x")
        assert "QuerySplit" in table
        slowdown = relative_slowdown(results, reference="QuerySplit")
        assert slowdown["QuerySplit"] == pytest.approx(1.0)
        assert format_seconds(0.5).endswith("ms")
        assert format_seconds(12.3).endswith("s")

    def test_empty_workload(self, imdb_db):
        result = run_workload(imdb_db, [], "Default")
        assert isinstance(result, WorkloadResult)
        assert result.total_time == 0


class TestBehaviouralShape:
    """Coarse 'shape' assertions mirroring the paper's headline claims."""

    @pytest.fixture(scope="class")
    def shape_results(self, imdb_db, job_sample):
        config = HarnessConfig(timeout_seconds=30)
        return {
            name: run_workload(imdb_db, job_sample, name, config)
            for name in ("Default", "QuerySplit", "Pop", "Perron19")
        }

    def test_querysplit_not_slower_than_default(self, shape_results):
        assert (shape_results["QuerySplit"].total_time
                <= shape_results["Default"].total_time * 1.2)

    def test_querysplit_materializes_less_than_perron(self, shape_results):
        qs = sum(r.materializations for r in shape_results["QuerySplit"].reports)
        perron = sum(r.materializations for r in shape_results["Perron19"].reports)
        assert qs <= perron

    def test_no_timeouts_on_sample(self, shape_results):
        assert all(result.timeouts == 0 for result in shape_results.values())
