"""Smoke tests for every experiment module (tiny scale, restricted queries)."""

import pytest

from repro.core.qsa import QSAStrategy
from repro.core.ssa import CostFunction
from repro.experiments import (
    figure10_robustness,
    figure11_job,
    figure12_tpch,
    figure13_dsb_spj,
    figure14_dsb_nonspj,
    figure15_statistics,
    figure_sqlgen_scaling,
    table1_similarity,
    table3_policies,
    table4_materialization,
    table5_existing_costfn,
    table6_categories,
)

SCALE = 0.15
FAMILIES = [2, 6, 9]


def test_table1_similarity_ratios_sum_to_one():
    ratios = table1_similarity.run(scale=SCALE, families=FAMILIES, verbose=False).data
    assert set(ratios) == {"0", "1", "2", ">2"}
    assert sum(ratios.values()) == pytest.approx(1.0)


def test_table3_policy_grid():
    results = table3_policies.run(
        scale=SCALE, families=[6],
        qsa_strategies=(QSAStrategy.FK_CENTER, QSAStrategy.MIN_SUBQUERY),
        cost_functions=(CostFunction.PHI1, CostFunction.PHI4),
        verbose=False).data
    assert len(results) == 4
    assert all(result.total_time >= 0 for result in results.values())
    best = table3_policies.best_combination(results)
    assert best in results


def test_figure10_robustness_sweep():
    results = figure10_robustness.run(
        scale=SCALE, families=[6], sigmas=(0.5, 4.0),
        policies=((QSAStrategy.FK_CENTER, CostFunction.PHI4),),
        verbose=False).data
    assert len(results) == 2


def test_figure11_job_comparison():
    results = figure11_job.run(
        scale=SCALE, families=FAMILIES,
        algorithms=("QuerySplit", "Default", "Pop"),
        verbose=False).data
    assert set(results) == {"pk", "pk+fk"}
    for per_algorithm in results.values():
        assert set(per_algorithm) == {"QuerySplit", "Default", "Pop"}


def test_table4_materialization_metrics():
    metrics = table4_materialization.run(
        scale=SCALE, families=FAMILIES,
        algorithms=("QuerySplit", "Pop"), verbose=False).data
    assert metrics["Pop"]["avg_materializations_per_query"] >= \
        metrics["QuerySplit"]["avg_materializations_per_query"] - 1e-9
    assert metrics["QuerySplit"]["avg_mem_per_subquery_mb"] >= 0


def test_figure12_tpch():
    results = figure12_tpch.run(
        scale=0.1, algorithms=("QuerySplit", "Default"),
        families=[1, 3, 5, 10], verbose=False).data
    for per_algorithm in results.values():
        assert per_algorithm["QuerySplit"].timeouts == 0


def test_figure13_and_14_dsb():
    spj = figure13_dsb_spj.run(scale=0.1, algorithms=("QuerySplit", "Default"),
                               verbose=False).data
    nonspj = figure14_dsb_nonspj.run(scale=0.1, algorithms=("QuerySplit", "Default"),
                                     verbose=False).data
    assert set(spj) == set(nonspj) == {"pk", "pk+fk"}


def test_figure15_statistics_toggle():
    results = figure15_statistics.run(
        scale=SCALE, families=[6], algorithms=("QuerySplit", "Perron19"),
        verbose=False).data
    assert ("QuerySplit", True) in results and ("QuerySplit", False) in results


def test_table5_existing_costfn():
    results = table5_existing_costfn.run(
        scale=SCALE, families=[6], algorithms=("Pop",),
        cost_functions=(CostFunction.PHI4,), verbose=False).data
    assert ("Pop", "original") in results
    assert ("Pop", "phi4") in results


def test_figure_sqlgen_scaling():
    outcome = figure_sqlgen_scaling.run(
        scale=0.1, stream_lengths=(5,), join_depths=(2, 3),
        algorithms=("QuerySplit", "Default"), timeout_seconds=10.0,
        verbose=False).data
    cells, robustness = outcome["cells"], outcome["robustness"]
    assert set(cells) == {(2, 5), (3, 5)}
    for cell in cells.values():
        assert set(cell["results"]) == {"QuerySplit", "Default"}
        assert 0.0 <= cell["cache_hit_rate"] <= 1.0
    assert set(robustness) == {"QuerySplit", "Default"}
    # Robustness is the worst per-cell slowdown vs. that cell's best policy.
    for algorithm in ("QuerySplit", "Default"):
        expected = max(
            cell["results"][algorithm].total_time
            / min(r.total_time for r in cell["results"].values())
            for cell in cells.values())
        assert robustness[algorithm] == pytest.approx(max(1.0, expected))


def test_table6_categories():
    outcome = table6_categories.run(scale=SCALE, families=FAMILIES,
                                    alternatives=("Pop", "Perron19"),
                                    verbose=False).data
    freq = outcome.frequency()
    assert sum(freq.values()) == len(outcome.categories)
    assert set(freq) == set(table6_categories.CATEGORIES)
    effects = outcome.average_effect()
    assert set(effects) == set(table6_categories.CATEGORIES)
    # Timelines exist for every classified query and algorithm.
    for query, timelines in outcome.timelines.items():
        assert "QuerySplit" in timelines
