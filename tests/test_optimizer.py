"""Unit tests for cardinality estimation, the cost model, and plan enumeration."""

import pytest

from repro.optimizer.cardinality import DefaultCardinalityEstimator
from repro.optimizer.cost import CostModel, CostParameters
from repro.optimizer.injection import NoisyCardinalityEstimator
from repro.optimizer.join_enum import EnumeratorConfig, JoinEnumerator
from repro.optimizer.learned import LearnedCardinalityEstimator
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.optimizer.oracle import OracleCardinalityEstimator, TrueCardinalityOracle
from repro.optimizer.pessimistic import PessimisticCardinalityEstimator
from repro.optimizer.robust import fs_config, optimality_range, use_config
from repro.plan.expressions import ColumnRef, Comparison, JoinPredicate, StringPrefix
from repro.plan.logical import RelationRef, SPJQuery
from repro.plan.physical import JoinMethod, JoinNode, ScanNode
from tests.conftest import five_way_query


@pytest.fixture(scope="module")
def estimator(tiny_db):
    return DefaultCardinalityEstimator(tiny_db)


@pytest.fixture(scope="module")
def oracle_estimator(tiny_db):
    return OracleCardinalityEstimator(tiny_db)


def _rel(alias):
    return RelationRef.base(alias, alias)


class TestDefaultEstimator:
    def test_scan_without_filters_is_table_size(self, estimator, tiny_db):
        rows = estimator.estimate_rows((_rel("ci"),), (), ())
        assert rows == tiny_db.table("ci").num_rows

    def test_equality_filter_reduces_rows(self, estimator, tiny_db):
        pred = Comparison(ColumnRef("t", "kind"), "=", "tv")
        rows = estimator.estimate_rows((_rel("t",),), (pred,), ())
        assert 0 < rows < tiny_db.table("t").num_rows

    def test_range_filter_uses_histogram(self, estimator, tiny_db):
        pred = Comparison(ColumnRef("t", "year"), ">", 2010)
        rows = estimator.estimate_rows((_rel("t"),), (pred,), ())
        true = int((tiny_db.table("t").column("year") > 2010).sum())
        assert rows == pytest.approx(true, rel=0.5)

    def test_independence_assumption_multiplies(self, estimator):
        p1 = Comparison(ColumnRef("t", "year"), ">", 2010)
        p2 = Comparison(ColumnRef("t", "kind"), "=", "tv")
        single = estimator.estimate_rows((_rel("t"),), (p1,), ())
        both = estimator.estimate_rows((_rel("t"),), (p1, p2), ())
        assert both < single

    def test_pk_fk_join_estimate(self, estimator, tiny_db):
        pred = JoinPredicate(ColumnRef("mk", "movie_id"), ColumnRef("t", "id"))
        rows = estimator.estimate_rows((_rel("mk"), _rel("t")), (), (pred,))
        # PK-FK join output is roughly the FK side size.
        assert rows == pytest.approx(tiny_db.table("mk").num_rows, rel=0.5)

    def test_minimum_one_row(self, estimator):
        pred = Comparison(ColumnRef("k", "kw"), "=", "definitely-not-present")
        assert estimator.estimate_rows((_rel("k"),), (pred,), ()) >= 1.0

    def test_string_pattern_defaults(self, estimator, tiny_db):
        pred = StringPrefix(ColumnRef("k", "kw"), "kw_0")
        rows = estimator.estimate_rows((_rel("k"),), (pred,), ())
        assert rows < tiny_db.table("k").num_rows


class TestOracleEstimator:
    def test_scan_is_exact(self, oracle_estimator, tiny_db):
        pred = Comparison(ColumnRef("t", "year"), ">", 2010)
        rows = oracle_estimator.estimate_rows((_rel("t"),), (pred,), ())
        true = int((tiny_db.table("t").column("year") > 2010).sum())
        assert rows == true

    def test_join_is_exact(self, oracle_estimator, tiny_db):
        pred = JoinPredicate(ColumnRef("mk", "movie_id"), ColumnRef("t", "id"))
        rows = oracle_estimator.estimate_rows((_rel("mk"), _rel("t")), (), (pred,))
        # Every mk row matches exactly one title (FK integrity by construction).
        assert rows == tiny_db.table("mk").num_rows

    def test_count_is_cached(self, tiny_db):
        oracle = TrueCardinalityOracle(tiny_db)
        est = OracleCardinalityEstimator(tiny_db, oracle=oracle)
        pred = JoinPredicate(ColumnRef("ci", "movie_id"), ColumnRef("t", "id"))
        est.estimate_rows((_rel("ci"), _rel("t")), (), (pred,), "q")
        executions = oracle.executions
        est.estimate_rows((_rel("ci"), _rel("t")), (), (pred,), "q")
        assert oracle.executions == executions

    def test_reset_clears_cache(self, tiny_db):
        oracle = TrueCardinalityOracle(tiny_db)
        est = OracleCardinalityEstimator(tiny_db, oracle=oracle)
        pred = JoinPredicate(ColumnRef("ci", "movie_id"), ColumnRef("t", "id"))
        est.estimate_rows((_rel("ci"), _rel("t")), (), (pred,), "q")
        oracle.reset()
        assert oracle._count_cache == {}

    def test_three_way_join_matches_bruteforce(self, tiny_db, oracle_estimator):
        import numpy as np

        preds = (JoinPredicate(ColumnRef("mk", "movie_id"), ColumnRef("t", "id")),
                 JoinPredicate(ColumnRef("mk", "keyword_id"), ColumnRef("k", "id")))
        filt = (Comparison(ColumnRef("t", "year"), ">", 2015),)
        rows = oracle_estimator.estimate_rows(
            (_rel("t"), _rel("mk"), _rel("k")), filt, preds, "q3")
        t = tiny_db.table("t")
        mk = tiny_db.table("mk")
        selected = set(t.column("id")[t.column("year") > 2015].tolist())
        expected = int(np.isin(mk.column("movie_id"),
                               np.array(sorted(selected))).sum())
        assert rows == expected


class TestNoiseInjection:
    def test_noise_is_deterministic_per_subset(self, estimator):
        noisy = NoisyCardinalityEstimator(estimator, mu=0.0, sigma=2.0, seed=7)
        pred = JoinPredicate(ColumnRef("mk", "movie_id"), ColumnRef("t", "id"))
        args = ((_rel("mk"), _rel("t")), (), (pred,), "q")
        assert noisy.estimate_rows(*args) == noisy.estimate_rows(*args)

    def test_noise_changes_with_seed(self, estimator):
        pred = JoinPredicate(ColumnRef("mk", "movie_id"), ColumnRef("t", "id"))
        args = ((_rel("mk"), _rel("t")), (), (pred,), "q")
        a = NoisyCardinalityEstimator(estimator, sigma=2.0, seed=1).estimate_rows(*args)
        b = NoisyCardinalityEstimator(estimator, sigma=2.0, seed=2).estimate_rows(*args)
        assert a != b

    def test_base_scans_unperturbed(self, estimator):
        noisy = NoisyCardinalityEstimator(estimator, sigma=3.0, seed=1)
        args = ((_rel("t"),), (), (), "q")
        assert noisy.estimate_rows(*args) == estimator.estimate_rows(*args)

    def test_zero_sigma_is_identity(self, estimator):
        noisy = NoisyCardinalityEstimator(estimator, mu=0.0, sigma=0.0)
        pred = JoinPredicate(ColumnRef("mk", "movie_id"), ColumnRef("t", "id"))
        args = ((_rel("mk"), _rel("t")), (), (pred,), "q")
        assert noisy.estimate_rows(*args) == pytest.approx(
            estimator.estimate_rows(*args))


class TestLearnedAndPessimistic:
    def test_learned_falls_back_on_strings(self, tiny_db):
        learned = LearnedCardinalityEstimator(tiny_db, model="neurocard")
        default = DefaultCardinalityEstimator(tiny_db)
        pred = Comparison(ColumnRef("t", "kind"), "=", "tv")
        args = ((_rel("t"),), (pred,), (), "q")
        assert learned.estimate_rows(*args) == default.estimate_rows(*args)

    def test_learned_accurate_on_numeric(self, tiny_db):
        learned = LearnedCardinalityEstimator(tiny_db, model="neurocard")
        pred = JoinPredicate(ColumnRef("mk", "movie_id"), ColumnRef("t", "id"))
        filt = (Comparison(ColumnRef("t", "year"), ">", 2015),)
        rows = learned.estimate_rows((_rel("mk"), _rel("t")), filt, (pred,), "q")
        oracle_rows = OracleCardinalityEstimator(tiny_db).estimate_rows(
            (_rel("mk"), _rel("t")), filt, (pred,), "q")
        assert rows == pytest.approx(oracle_rows, rel=3.0)

    def test_unknown_model_rejected(self, tiny_db):
        with pytest.raises(ValueError):
            LearnedCardinalityEstimator(tiny_db, model="gpt")

    def test_pessimistic_never_below_default_on_joins(self, tiny_db):
        default = DefaultCardinalityEstimator(tiny_db)
        pessimistic = PessimisticCardinalityEstimator(tiny_db)
        pred = JoinPredicate(ColumnRef("ci", "movie_id"), ColumnRef("mk", "movie_id"))
        args = ((_rel("ci"), _rel("mk")), (), (pred,), "q")
        assert pessimistic.estimate_rows(*args) >= default.estimate_rows(*args)


class TestCostModel:
    def test_scan_cost_grows_with_rows(self):
        model = CostModel()
        assert model.scan_cost(10_000, 10_000) > model.scan_cost(100, 100)

    def test_zone_map_aware_scan_cost(self):
        model = CostModel()
        base = model.scan_cost(100_000, 100, num_filters=2)
        pruned = model.scan_cost(100_000, 100, num_filters=2,
                                 pruned_fraction=0.9)
        assert pruned < base
        # Smaller blocks mean more zone checks for the same pruned fraction.
        fine = model.scan_cost(100_000, 100, num_filters=2,
                               pruned_fraction=0.9, block_rows=64)
        coarse = model.scan_cost(100_000, 100, num_filters=2,
                                 pruned_fraction=0.9, block_rows=8192)
        assert fine > coarse
        # pruned_fraction=0 must reproduce the classic formula exactly.
        assert model.scan_cost(100_000, 100, 2, pruned_fraction=0.0) == base

    def test_zone_map_scan_cost_opt_in_via_enumerator(self, tiny_db):
        """With the opt-in flag, a clustered selective filter lowers the
        estimated scan cost; without it, estimates are unchanged."""
        from repro.optimizer.join_enum import EnumeratorConfig, JoinEnumerator
        from repro.optimizer.cardinality import DefaultCardinalityEstimator
        from repro.plan.logical import SPJQuery
        from repro.plan.expressions import Comparison

        spj = SPJQuery(
            name="prune-cost",
            relations=(_rel("ci"),),
            filters=(Comparison(ColumnRef("ci", "id"), "<=", 100),),
        )
        tiny_db.table("ci").build_zone_maps(256)
        try:
            estimator = DefaultCardinalityEstimator(tiny_db)
            off = JoinEnumerator(tiny_db, estimator, CostModel()).plan(spj)
            on = JoinEnumerator(
                tiny_db, estimator, CostModel(),
                EnumeratorConfig(zone_map_scan_cost=True)).plan(spj)
            assert on.est_cost < off.est_cost
        finally:
            tiny_db.table("ci").build_zone_maps(tiny_db.block_size)

    def test_index_nl_cheap_for_small_outer(self):
        model = CostModel()
        hash_cost = model.join_cost(JoinMethod.HASH, 10, 100_000, 50)
        index_cost = model.join_cost(JoinMethod.INDEX_NL, 10, 100_000, 50,
                                     inner_indexed=True)
        assert index_cost < hash_cost

    def test_index_nl_expensive_for_large_outer(self):
        model = CostModel()
        hash_cost = model.join_cost(JoinMethod.HASH, 1_000_000, 1_000, 1_000_000)
        index_cost = model.join_cost(JoinMethod.INDEX_NL, 1_000_000, 1_000,
                                     1_000_000, inner_indexed=True)
        assert hash_cost < index_cost

    def test_nested_loop_is_quadratic(self):
        model = CostModel()
        assert (model.join_cost(JoinMethod.NL, 1000, 1000, 10)
                > model.join_cost(JoinMethod.HASH, 1000, 1000, 10))

    def test_index_nl_requires_index(self):
        with pytest.raises(ValueError):
            CostModel().join_cost(JoinMethod.INDEX_NL, 10, 10, 10, inner_indexed=False)

    def test_materialize_and_analyze_costs(self):
        model = CostModel(CostParameters())
        assert model.materialize_cost(1000) > 0
        assert model.analyze_cost(1000) > 0


class TestJoinEnumeration:
    def test_plan_covers_all_relations(self, tiny_db):
        plan = Optimizer(tiny_db).plan(five_way_query())
        assert {r.alias for r in plan.leaf_relations()} == {"t", "mk", "k", "ci", "n"}
        assert len(plan.join_nodes()) == 4

    def test_single_relation_plan_is_scan(self, tiny_db):
        spj = SPJQuery(name="s", relations=(_rel("t"),),
                       filters=(Comparison(ColumnRef("t", "year"), ">", 2000),))
        plan = Optimizer(tiny_db).plan(spj)
        assert isinstance(plan.root, ScanNode)

    def test_greedy_used_beyond_dp_limit(self, tiny_db):
        config = OptimizerConfig(enumerator=EnumeratorConfig(dp_relation_limit=3))
        plan = Optimizer(tiny_db, config=config).plan(five_way_query())
        assert {r.alias for r in plan.leaf_relations()} == {"t", "mk", "k", "ci", "n"}

    def test_cross_product_handled(self, tiny_db):
        spj = SPJQuery(name="cross",
                       relations=(_rel("t"), _rel("k")))
        plan = Optimizer(tiny_db).plan(spj)
        assert len(plan.leaf_relations()) == 2
        assert plan.root.predicates == ()

    def test_index_nl_disabled_without_indexes(self, tiny_schema):
        from repro.storage.database import IndexConfig
        from tests.conftest import build_tiny_database

        db = build_tiny_database(tiny_schema, index_config=IndexConfig.NONE)
        plan = Optimizer(db).plan(five_way_query())
        assert all(j.method is not JoinMethod.INDEX_NL for j in plan.join_nodes())

    def test_use_config_bans_nested_loops(self, tiny_db):
        config = OptimizerConfig(enumerator=use_config())
        plan = Optimizer(tiny_db, config=config).plan(five_way_query())
        assert all(j.method in (JoinMethod.HASH, JoinMethod.MERGE)
                   for j in plan.join_nodes())

    def test_estimate_returns_cost_and_rows(self, tiny_db):
        cost, rows = Optimizer(tiny_db).estimate(five_way_query())
        assert cost > 0 and rows >= 1

    def test_invocation_counter(self, tiny_db):
        optimizer = Optimizer(tiny_db)
        optimizer.plan(five_way_query())
        optimizer.plan(five_way_query())
        assert optimizer.invocations == 2

    def test_oracle_plan_not_worse_than_default(self, tiny_db):
        """The oracle-driven plan never has higher *true* cost than Default's."""
        from repro.executor.executor import Executor

        spj = five_way_query()
        default_plan = Optimizer(tiny_db).plan(spj)
        optimal_plan = Optimizer(tiny_db).with_estimator(
            OracleCardinalityEstimator(tiny_db)).plan(spj)
        executor = Executor(tiny_db)
        default_rows = sum(j.actual_rows or 0 for j in default_plan.join_nodes())
        executor.execute(default_plan)
        executor.execute(optimal_plan)
        default_rows = sum(j.actual_rows for j in default_plan.join_nodes())
        optimal_rows = sum(j.actual_rows for j in optimal_plan.join_nodes())
        assert optimal_rows <= default_rows * 1.5


class TestRobustHelpers:
    def test_fs_config_sets_robustness(self):
        config = fs_config()
        assert config.robustness_weight > 0
        assert config.robustness_blowup > 1

    def test_optimality_range_contains(self):
        window = optimality_range(100.0)
        assert window.contains(100)
        assert window.contains(30)
        assert not window.contains(1000)
        assert window.low == pytest.approx(25.0)
        assert window.high == pytest.approx(400.0)
