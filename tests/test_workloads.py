"""Tests for the synthetic workload generators and the query catalogues."""

import numpy as np
import pytest

from repro.core.qsa import QSAStrategy, generate_subqueries
from repro.core.subquery import covers
from repro.storage.database import IndexConfig
from repro.workloads.datagen import (
    categorical,
    correlated_ints,
    sequential_ids,
    skewed_fanout_choice,
    string_pool,
    zipf_choice,
)
from repro.workloads.dsb import DSB_SCHEMA, build_dsb_database, dsb_queries, \
    dsb_nonspj_queries, dsb_spj_queries
from repro.workloads.imdb import BASE_SIZES, IMDB_SCHEMA, build_imdb_database
from repro.workloads.job_queries import job_queries, query_by_name
from repro.workloads.spec import build_spj, col, eq, gt, isin, like
from repro.workloads.tpch import TPCH_SCHEMA, build_tpch_database, tpch_queries


class TestDatagen:
    def test_zipf_choice_skews_to_small_ranks(self):
        rng = np.random.default_rng(0)
        draws = zipf_choice(rng, 100, 10_000, skew=1.5)
        counts = np.bincount(draws, minlength=100)
        assert counts[0] > counts[50] > 0 or counts[50] == 0
        assert counts[0] > 10_000 / 100

    def test_skewed_fanout_bounded(self):
        rng = np.random.default_rng(0)
        draws = skewed_fanout_choice(rng, 1000, 100_000, sigma=1.5, cap_factor=20)
        counts = np.bincount(draws, minlength=1000)
        assert counts.max() <= 20 * counts.mean() * 1.5
        assert counts[0] >= counts[-1]

    def test_correlated_ints_monotone_at_full_correlation(self):
        rng = np.random.default_rng(0)
        base = np.arange(1000, dtype=float)
        values = correlated_ints(rng, base, 0, 100, correlation=1.0)
        assert values[0] <= values[-1]
        assert np.corrcoef(base, values)[0, 1] > 0.95

    def test_categorical_respects_probabilities(self):
        rng = np.random.default_rng(0)
        values = categorical(rng, ["a", "b"], [0.9, 0.1], 10_000)
        assert (values == "a").mean() > 0.8

    def test_string_pool_and_ids(self):
        pool = string_pool("x", 5)
        assert list(pool) == [f"x_{i:05d}" for i in range(5)]
        assert list(sequential_ids(3, start=7)) == [7, 8, 9]


class TestSpecBuilders:
    def test_col_parsing(self):
        ref = col("t.production_year")
        assert ref.alias == "t" and ref.column == "production_year"
        with pytest.raises(ValueError):
            col("unqualified")

    def test_predicate_shorthands(self):
        assert eq("t.x", 5).op == "="
        assert gt("t.x", 5).op == ">"
        assert like("t.s", "abc").needle == "abc"
        assert isin("t.x", [1, 2]).values == (1, 2)

    def test_build_spj_outputs(self):
        spj = build_spj(name="q", relations={"a": "t", "b": "mk"},
                        joins=[("b.movie_id", "a.id")],
                        min_outputs=["a.title"])
        assert spj.num_joins == 1
        names = [agg.output_name for agg in spj.aggregates]
        assert "row_count" in names and "min_a_title" in names


class TestIMDBWorkload:
    def test_all_tables_loaded_with_expected_scale(self, imdb_db):
        for table_name, base_size in BASE_SIZES.items():
            table = imdb_db.table(table_name)
            expected = max(int(round(base_size * 0.25)), 4)
            assert table.num_rows == expected

    def test_deterministic_generation(self):
        a = build_imdb_database(scale=0.05, seed=42)
        b = build_imdb_database(scale=0.05, seed=42)
        assert np.array_equal(a.table("cast_info").column("movie_id"),
                              b.table("cast_info").column("movie_id"))

    def test_foreign_keys_reference_existing_rows(self, imdb_db):
        titles = set(imdb_db.table("title").column("id").tolist())
        assert set(imdb_db.table("movie_keyword").column("movie_id").tolist()) <= titles
        assert set(imdb_db.table("cast_info").column("movie_id").tolist()) <= titles

    def test_fanout_skew_present(self, imdb_db):
        movie_ids = imdb_db.table("cast_info").column("movie_id")
        counts = np.bincount(movie_ids)
        counts = counts[counts > 0]
        assert counts.max() > 5 * counts.mean()

    def test_year_correlated_with_popularity(self, imdb_db):
        """Popular (high fan-out) titles skew recent."""
        ci = imdb_db.table("cast_info").column("movie_id")
        title = imdb_db.table("title")
        years = dict(zip(title.column("id").tolist(),
                         title.column("production_year").tolist()))
        counts = np.bincount(ci, minlength=int(title.column("id").max()) + 1)
        hot = np.argsort(counts)[-50:]
        cold = [i for i in title.column("id") if counts[i] == 1][:50]
        hot_years = np.mean([years[i] for i in hot if i in years])
        cold_years = np.mean([years[i] for i in cold if i in years])
        assert hot_years > cold_years

    def test_index_configuration(self):
        pk_only = build_imdb_database(scale=0.05, index_config=IndexConfig.PK_ONLY)
        assert pk_only.has_index("title", "id")
        assert not pk_only.has_index("movie_keyword", "movie_id")


class TestJOBQueries:
    def test_91_queries(self):
        assert len(job_queries()) == 91

    def test_unique_names_and_families(self):
        queries = job_queries()
        names = [q.name for q in queries]
        assert len(names) == len(set(names))
        families = {q.metadata["family"] for q in queries}
        assert families == set(range(1, 32))

    def test_queries_are_spj_with_min_outputs(self):
        for query in job_queries():
            assert query.is_spj
            assert query.spj.aggregates
            assert query.spj.is_connected()

    def test_query_relations_exist_in_schema(self):
        for query in job_queries():
            for relation in query.spj.relations:
                assert IMDB_SCHEMA.has_table(relation.table_name), query.name

    def test_query_columns_exist_in_schema(self):
        for query in job_queries():
            table_of = {r.alias: r.table_name for r in query.spj.relations}
            for ref in query.spj.referenced_columns():
                table = IMDB_SCHEMA.table(table_of[ref.alias])
                assert table.has_column(ref.column), (query.name, ref)

    def test_family_filter_and_lookup(self):
        subset = job_queries(families=[6])
        assert all(q.metadata["family"] == 6 for q in subset)
        assert query_by_name("6a").name == "6a"
        with pytest.raises(KeyError):
            query_by_name("99z")

    def test_join_sizes_span_paper_range(self):
        sizes = {len(q.spj.relations) for q in job_queries()}
        assert min(sizes) == 3
        assert max(sizes) >= 9

    def test_most_queries_return_rows(self, imdb_db):
        """The large majority of the catalogue must be non-empty on the data."""
        from repro.reopt import make_algorithm

        sample = job_queries(families=[1, 2, 3, 4, 6, 8, 14])
        non_empty = 0
        for query in sample:
            report = make_algorithm("Default", imdb_db).run(query)
            count = report.final_table.to_rows()[0][0]
            if count > 0:
                non_empty += 1
        assert non_empty >= len(sample) * 0.6


class TestTPCHWorkload:
    def test_schema_and_sizes(self):
        db = build_tpch_database(scale=0.1)
        assert db.table("region").num_rows == 5
        assert db.table("nation").num_rows == 25
        assert db.table("lineitem").num_rows == 6000

    def test_22_queries_all_nonspj(self):
        queries = tpch_queries()
        assert len(queries) == 22
        assert all(not q.is_spj for q in queries)

    def test_star_schema_joins_are_pk_fk(self):
        for query in tpch_queries():
            for spj in query.root.spj_leaves():
                table_of = {r.alias: r.table_name for r in spj.relations}
                for pred in spj.join_predicates:
                    kind = TPCH_SCHEMA.join_kind(
                        table_of[pred.left.alias], pred.left.column,
                        table_of[pred.right.alias], pred.right.column)
                    assert kind in ("pk-fk", "fk-fk"), (query.name, pred)

    def test_tpch_query_executes(self):
        from repro.reopt import make_algorithm

        db = build_tpch_database(scale=0.1)
        report = make_algorithm("QuerySplit", db).run(tpch_queries()[2])  # Q3
        assert not report.timed_out
        assert report.final_rows > 0


class TestDSBWorkload:
    def test_sizes_and_schema(self):
        db = build_dsb_database(scale=0.1)
        assert db.table("store_sales").num_rows == 5000
        assert DSB_SCHEMA.has_table("catalog_sales")

    def test_query_counts(self):
        assert len(dsb_spj_queries()) == 15
        assert len(dsb_nonspj_queries()) == 10
        assert len(dsb_queries()) == 25

    def test_spj_queries_cover_fact_fact_patterns(self):
        multi_fact = [
            q for q in dsb_spj_queries()
            if sum(1 for r in q.spj.relations
                   if r.table_name in ("store_sales", "catalog_sales", "web_sales",
                                       "store_returns")) >= 2
        ]
        assert len(multi_fact) >= 3

    def test_dsb_query_executes_consistently(self):
        from repro.reopt import make_algorithm

        db = build_dsb_database(scale=0.15)
        query = dsb_spj_queries()[0]
        results = {
            name: make_algorithm(name, db).run(query).final_table.to_rows()
            for name in ("Default", "QuerySplit", "Pop")
        }
        assert results["Default"] == results["QuerySplit"] == results["Pop"]

    def test_fkcenter_covers_dsb_queries(self):
        for query in dsb_spj_queries():
            subqueries = generate_subqueries(query.spj, DSB_SCHEMA,
                                             QSAStrategy.FK_CENTER)
            assert covers(subqueries, query.spj), query.name
