"""Deterministic serving-layer tests: schedules, admission, timeouts.

Three property families from the serving PR's acceptance list:

* **Schedule purity** -- the merged arrival event stream is a pure
  function of ``(users, seed)``: rebuilding it yields the identical
  tuple, and the global ordering/tie-breaks are reproducible.
* **Virtual-clock semantics** -- :func:`~repro.serving.driver.simulate_served`
  replays admission control, the worker pool, and per-query timeouts as a
  discrete-event model with **no threads and no wall-clock sleeps**, so
  admission order, shed decisions, and timeout firings can be asserted
  exactly and must be bit-identical across replays.
* **Real pool smoke** -- one small wall-clock run through
  :class:`~repro.serving.server.EngineServer` checks conservation
  (offered == completed + shed + errors), session-view temp isolation,
  and the reporter's aggregate shape.
"""

from __future__ import annotations

import threading

import pytest

from repro.executor.subplan_cache import SubplanCache
from repro.serving.admission import AdmissionPolicy, AdmissionQueue
from repro.serving.driver import run_served, simulate_served
from repro.serving.reporter import latency_summary, percentile
from repro.serving.schedule import (
    MAX_EVENTS_PER_USER,
    Arrival,
    Once,
    Repeat,
    UserSpec,
    build_arrivals,
    uniform_users,
)
from repro.serving.server import ServingConfig
from tests.test_differential import build_differential_database, make_stream

SEED = 20260731


class TestSchedulePurity:
    def test_same_seed_same_stream(self):
        users = uniform_users(num_users=4, rate_per_user=5.0,
                              queries_per_user=10)
        first = build_arrivals(users, seed=SEED)
        second = build_arrivals(users, seed=SEED)
        assert first == second  # frozen dataclasses: field-exact equality

    def test_different_seed_different_times(self):
        users = uniform_users(4, 5.0, 10)
        a = build_arrivals(users, seed=SEED)
        b = build_arrivals(users, seed=SEED + 1)
        assert [e.time for e in a] != [e.time for e in b]

    def test_global_order_and_index_assignment(self):
        arrivals = build_arrivals(uniform_users(4, 5.0, 10), seed=SEED)
        assert len(arrivals) == 40
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert [a.index for a in arrivals] == list(range(40))
        for uid in range(4):
            seqs = [a.user_seq for a in arrivals if a.user_id == uid]
            assert seqs == sorted(seqs)  # per-user order survives the merge

    def test_simultaneous_arrivals_tie_break_on_user_id(self):
        users = tuple(UserSpec(uid, Once(at=0.0)) for uid in (3, 1, 2, 0))
        arrivals = build_arrivals(users, seed=SEED)
        assert [a.user_id for a in arrivals] == [0, 1, 2, 3]

    def test_metronome_gaps_are_exact(self):
        arrivals = build_arrivals(
            (UserSpec(0, Repeat(rate=2.0, count=4, jitter="none")),),
            seed=SEED)
        assert [a.time for a in arrivals] == pytest.approx([0.5, 1.0, 1.5, 2.0])

    def test_max_events_truncates_after_the_merge(self):
        users = uniform_users(4, 5.0, 10)
        full = build_arrivals(users, seed=SEED)
        cut = build_arrivals(users, seed=SEED, max_events=7)
        assert len(cut) == 7
        assert [(a.time, a.user_id, a.user_seq) for a in cut] == \
            [(a.time, a.user_id, a.user_seq) for a in full[:7]]

    def test_validation(self):
        with pytest.raises(ValueError):
            Repeat(rate=0.0, count=1)
        with pytest.raises(ValueError):
            Repeat(rate=1.0, count=-1)
        with pytest.raises(ValueError):
            Repeat(rate=1.0, count=1, jitter="gaussian")
        with pytest.raises(ValueError):
            build_arrivals((UserSpec(0, Once()), UserSpec(0, Once())),
                           seed=SEED)

    def test_unbounded_schedule_hits_the_event_cap(self):
        huge = Repeat(rate=1.0, count=MAX_EVENTS_PER_USER * 2)
        arrivals = build_arrivals((UserSpec(0, huge),), seed=SEED,
                                  max_events=5)
        assert len(arrivals) == 5


def metronome(n: int, gap: float) -> tuple[Arrival, ...]:
    """n single-user arrivals with exact ``gap`` spacing starting at gap."""
    return build_arrivals(
        (UserSpec(0, Repeat(rate=1.0 / gap, count=n, jitter="none")),),
        seed=SEED)


class TestVirtualClockSimulation:
    def test_replay_is_bit_identical(self):
        arrivals = build_arrivals(uniform_users(3, 8.0, 12), seed=SEED)
        kwargs = dict(workers=2, queue_capacity=2,
                      policy=AdmissionPolicy.SHED,
                      service_time=lambda a: 0.05 + 0.15 * (a.index % 4),
                      timeout_seconds=0.4)
        first = simulate_served(arrivals, **kwargs)
        second = simulate_served(arrivals, **kwargs)
        assert first == second  # outcomes AND admission order

    def test_shed_decisions_are_exact(self):
        # 10 arrivals every 0.1s, one worker needing 0.35s each, queue of 1:
        # the worker holds a query for 3.5 arrival gaps, so most arrivals
        # find the single waiting slot occupied and are shed.
        arrivals = metronome(10, gap=0.1)
        outcomes, order = simulate_served(
            arrivals, workers=1, queue_capacity=1,
            policy=AdmissionPolicy.SHED, service_time=lambda a: 0.35)
        shed = [o.index for o in outcomes if o.shed]
        done = [o.index for o in outcomes if not o.shed]
        # Admitted: 0 (runs at .1), 1 (waits), then the slot only refills
        # after the worker picks up the waiting query at .45 and .80 --
        # so arrivals at .5 and .8 are admitted and the rest are shed.
        assert done == [0, 1, 4, 7]
        assert shed == [2, 3, 5, 6, 8, 9]
        assert order == done
        assert len(shed) + len(done) == len(arrivals)
        for o in outcomes:
            if not o.shed:
                assert o.finish_time == pytest.approx(o.start_time + 0.35)

    def test_block_never_sheds_and_preserves_arrival_order(self):
        arrivals = metronome(10, gap=0.1)
        outcomes, order = simulate_served(
            arrivals, workers=1, queue_capacity=1,
            policy=AdmissionPolicy.BLOCK, service_time=lambda a: 0.35)
        assert not any(o.shed for o in outcomes)
        assert order == [a.index for a in sorted(arrivals,
                                                 key=lambda a: a.time)]
        # Back-pressure pushes admission past the scheduled arrival time.
        delayed = [o for o in outcomes if o.admit_time > o.arrival_time + 1e-12]
        assert delayed, "BLOCK under overload must delay later arrivals"
        # One worker, FIFO queue: completions are serialized back to back.
        finishes = sorted(o.finish_time for o in outcomes)
        for earlier, later in zip(finishes, finishes[1:]):
            assert later == pytest.approx(earlier + 0.35)

    def test_timeouts_fire_deterministically(self):
        arrivals = metronome(9, gap=1.0)  # unloaded: every arrival admitted
        slow = {2, 5, 8}
        outcomes, _ = simulate_served(
            arrivals, workers=2, queue_capacity=4,
            policy=AdmissionPolicy.SHED,
            service_time=lambda a: 10.0 if a.index in slow else 0.05,
            timeout_seconds=0.5)
        assert {o.index for o in outcomes if o.timed_out} == slow
        for o in outcomes:
            if o.timed_out:
                # The cooperative deadline clips service at the budget.
                assert o.finish_time == pytest.approx(o.start_time + 0.5)

    def test_queue_wait_accounting(self):
        # Two arrivals, one worker: the second starts when the first ends.
        arrivals = metronome(2, gap=0.1)
        outcomes, _ = simulate_served(
            arrivals, workers=1, queue_capacity=4,
            policy=AdmissionPolicy.SHED, service_time=lambda a: 1.0)
        first, second = outcomes
        assert first.start_time == pytest.approx(0.1)
        assert second.start_time == pytest.approx(first.finish_time)
        summary = latency_summary(outcomes)
        assert summary["completed"] == 2
        assert summary["shed"] == 0
        # Open-loop latency: measured from the *scheduled* arrival.
        assert summary["max_latency"] == pytest.approx(
            second.finish_time - second.arrival_time)

    def test_summary_over_simulated_outcomes(self):
        arrivals = metronome(20, gap=0.05)
        outcomes, _ = simulate_served(
            arrivals, workers=2, queue_capacity=2,
            policy=AdmissionPolicy.SHED, service_time=lambda a: 0.2,
            timeout_seconds=5.0)
        summary = latency_summary(outcomes)
        assert summary["offered"] == 20
        assert summary["completed"] + summary["shed"] == 20
        assert summary["timeouts"] == 0
        assert summary["throughput_qps"] > 0
        assert (summary["p50_latency"] <= summary["p95_latency"]
                <= summary["p99_latency"] <= summary["max_latency"])

    def test_percentile_helper(self):
        assert percentile([], 95) == 0.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)


class TestAdmissionQueue:
    def test_shed_on_full_and_counters(self):
        queue = AdmissionQueue(capacity=2, policy=AdmissionPolicy.SHED)
        assert queue.offer("a") and queue.offer("b")
        assert not queue.offer("c")
        assert queue.admitted == 2
        assert queue.shed == 1
        assert queue.max_depth == 2

    def test_close_drains_then_signals_exhaustion(self):
        queue = AdmissionQueue(capacity=4, policy=AdmissionPolicy.SHED)
        queue.offer("a")
        queue.offer("b")
        queue.close()
        assert queue.take() == "a"
        assert queue.take() == "b"
        assert queue.take() is None  # closed + drained
        with pytest.raises(RuntimeError):
            queue.offer("c")

    def test_block_producer_resumes_when_a_slot_frees(self):
        queue = AdmissionQueue(capacity=1, policy=AdmissionPolicy.BLOCK)
        assert queue.offer("a")
        blocked_result = []

        def producer() -> None:
            blocked_result.append(queue.offer("b"))

        thread = threading.Thread(target=producer)
        thread.start()
        assert queue.take() == "a"  # frees the slot the producer waits on
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert blocked_result == [True]
        assert queue.take() == "b"
        assert queue.shed == 0


class TestRealServerSmoke:
    @pytest.fixture(scope="class")
    def db(self):
        return build_differential_database()

    def test_served_run_conserves_and_reports(self, db):
        generator = make_stream(db, seed=SEED)
        queries = generator.generate(16)
        arrivals = build_arrivals(uniform_users(4, 25.0, 4), seed=SEED,
                                  max_events=16)
        cache = SubplanCache()
        config = ServingConfig(workers=3, queue_capacity=8,
                               admission=AdmissionPolicy.BLOCK,
                               timeout_seconds=30.0, subplan_cache=cache)
        result = run_served(db, queries, arrivals, config, time_scale=0.1)
        summary = result.summary
        assert summary["offered"] == 16
        assert summary["completed"] == 16
        assert summary["shed"] == 0
        assert summary["errors"] == 0
        assert [o.index for o in result.outcomes] == list(range(16))
        assert all(o.report is not None for o in result.outcomes)
        assert result.workload_result("QuerySplit").reports
        assert cache.check_invariants() == []
        # keep_results defaults off: served runs must not pin result tables.
        assert all(o.report.final_table is None for o in result.outcomes)

    def test_saturated_admission_plus_morsel_pool_no_deadlock(self, db):
        """Served-under-morsels smoke: a tiny BLOCK admission queue and a
        shared morsel pool saturated at the same time.  Serving workers
        block the producer while their queries fan out into the shared
        scheduler; every arrival must still complete (no deadlock between
        the admission fence and the morsel pool) and the accounting must
        conserve every request."""
        generator = make_stream(db, seed=SEED + 7)
        queries = generator.generate(24)
        # All 24 arrivals land almost immediately: the 2-slot queue and
        # both serving workers saturate from the first moment.
        arrivals = build_arrivals(uniform_users(4, 500.0, 6), seed=SEED + 7,
                                  max_events=24)
        config = ServingConfig(algorithm="Default", workers=2,
                               queue_capacity=2,
                               admission=AdmissionPolicy.BLOCK,
                               timeout_seconds=30.0,
                               morsel_workers=2,
                               # Force a real pool on a small machine, and
                               # tiny morsels so the fixture tables fan out.
                               max_total_threads=4, morsel_rows=64)
        result = run_served(db, queries, arrivals, config, time_scale=0.01)
        summary = result.summary
        assert summary["offered"] == 24
        assert summary["completed"] == 24
        assert summary["shed"] == 0
        assert summary["errors"] == 0
        assert summary["timeouts"] == 0
        assert sorted(o.index for o in result.outcomes) == list(range(24))

    def test_morsel_worker_cap_respects_thread_budget(self, db):
        """workers x morsel_workers may never exceed the thread budget."""
        from repro.serving.server import EngineServer

        server = EngineServer(db, ServingConfig(
            workers=3, morsel_workers=8, max_total_threads=6))
        try:
            assert server.morsel_workers == 2  # 6 // 3
            assert server.morsels is not None
        finally:
            server.shutdown()
        capped = EngineServer(db, ServingConfig(
            workers=4, morsel_workers=8, max_total_threads=4))
        try:
            assert capped.morsel_workers == 1  # no budget left -> inline
            assert capped.morsels is None
        finally:
            capped.shutdown()

    def test_session_views_isolate_temp_tables(self, db):
        view_a = db.session_view()
        view_b = db.session_view()
        assert view_a.base_table_names == db.base_table_names
        generator = make_stream(db, seed=SEED)
        from repro.reopt.registry import make_algorithm
        runner = make_algorithm("QuerySplit", view_a)
        runner.run(generator.query_at(1))
        # QuerySplit materializes temps into its session and drops them on
        # completion; neither phase may leak into siblings or the base.
        assert view_b.temp_table_names == []
        assert db.temp_table_names == []

    def test_bad_arrival_index_rejected(self, db):
        queries = make_stream(db, seed=SEED).generate(2)
        bogus = (Arrival(time=0.0, user_id=0, user_seq=0, index=5),)
        with pytest.raises(IndexError):
            run_served(db, queries, bogus, ServingConfig(workers=1))
