"""Shared test fixtures: a tiny hand-built database and small workload samples."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.schema import Column, ForeignKey, Schema, TableSchema
from repro.catalog.types import DataType
from repro.plan.expressions import ColumnRef, Comparison, JoinPredicate, StringPrefix
from repro.plan.logical import AggregateSpec, Query, RelationRef, SPJQuery
from repro.storage.database import Database, IndexConfig
from repro.storage.table import DataTable
from repro.workloads.imdb import build_imdb_database
from repro.workloads.job_queries import job_queries


def _int(name):
    return Column(name, DataType.INT)


def _str(name):
    return Column(name, DataType.STRING)


@pytest.fixture(scope="session")
def tiny_schema() -> Schema:
    """A 5-table movie-ish schema with PK/FK metadata."""
    return Schema([
        TableSchema("t", [_int("id"), _int("year"), _str("kind")], primary_key="id"),
        TableSchema("k", [_int("id"), _str("kw")], primary_key="id"),
        TableSchema("n", [_int("id"), _str("name"), _str("gender")], primary_key="id"),
        TableSchema("mk", [_int("id"), _int("movie_id"), _int("keyword_id")],
                    primary_key="id",
                    foreign_keys=[ForeignKey("movie_id", "t", "id"),
                                  ForeignKey("keyword_id", "k", "id")]),
        TableSchema("ci", [_int("id"), _int("movie_id"), _int("person_id"),
                           _str("note")],
                    primary_key="id",
                    foreign_keys=[ForeignKey("movie_id", "t", "id"),
                                  ForeignKey("person_id", "n", "id")]),
    ])


def build_tiny_database(schema: Schema,
                        index_config: IndexConfig = IndexConfig.PK_FK,
                        seed: int = 0,
                        dict_encode: bool = True) -> Database:
    """Deterministic small database over the tiny schema."""
    rng = np.random.default_rng(seed)
    n_t, n_k, n_n, n_mk, n_ci = 500, 40, 300, 2500, 4000
    db = Database(schema, index_config=index_config, dict_encode=dict_encode)
    db.load_table(DataTable("t", {
        "id": np.arange(1, n_t + 1),
        "year": rng.integers(1980, 2021, n_t),
        "kind": np.array(["movie" if i % 3 else "tv" for i in range(n_t)],
                         dtype=object),
    }))
    db.load_table(DataTable("k", {
        "id": np.arange(1, n_k + 1),
        "kw": np.array([f"kw_{i:03d}" for i in range(n_k)], dtype=object),
    }))
    db.load_table(DataTable("n", {
        "id": np.arange(1, n_n + 1),
        "name": np.array([f"person_{i:04d}" for i in range(n_n)], dtype=object),
        "gender": np.array([("m", "f")[i % 2] for i in range(n_n)], dtype=object),
    }))
    db.load_table(DataTable("mk", {
        "id": np.arange(1, n_mk + 1),
        "movie_id": rng.integers(1, n_t + 1, n_mk),
        "keyword_id": 1 + (rng.zipf(1.6, n_mk) - 1) % n_k,
    }))
    db.load_table(DataTable("ci", {
        "id": np.arange(1, n_ci + 1),
        "movie_id": 1 + (rng.zipf(1.5, n_ci) - 1) % n_t,
        "person_id": rng.integers(1, n_n + 1, n_ci),
        "note": np.array([("", "(voice)", "(producer)")[i % 3]
                          for i in range(n_ci)], dtype=object),
    }))
    return db


@pytest.fixture(scope="session")
def tiny_db(tiny_schema) -> Database:
    """The tiny database with PK+FK indexes."""
    return build_tiny_database(tiny_schema)


@pytest.fixture(scope="session")
def tiny_query(tiny_schema) -> Query:
    """A 5-way join over the tiny schema (the paper's Figure 8 shape)."""
    return Query.from_spj(five_way_query())


def five_way_query(name: str = "q5way") -> SPJQuery:
    """Build the canonical 5-way SPJ query over the tiny schema."""
    return SPJQuery(
        name=name,
        relations=tuple(RelationRef.base(a, a) for a in ("t", "mk", "k", "ci", "n")),
        filters=(
            Comparison(ColumnRef("t", "year"), ">", 2000),
            StringPrefix(ColumnRef("k", "kw"), "kw_0"),
            Comparison(ColumnRef("n", "gender"), "=", "f"),
        ),
        join_predicates=(
            JoinPredicate(ColumnRef("mk", "movie_id"), ColumnRef("t", "id")),
            JoinPredicate(ColumnRef("mk", "keyword_id"), ColumnRef("k", "id")),
            JoinPredicate(ColumnRef("ci", "movie_id"), ColumnRef("t", "id")),
            JoinPredicate(ColumnRef("ci", "person_id"), ColumnRef("n", "id")),
        ),
        aggregates=(
            AggregateSpec("count", None, "row_count"),
            AggregateSpec("min", ColumnRef("t", "year"), "min_year"),
        ),
    )


@pytest.fixture(scope="session")
def imdb_db() -> Database:
    """A small synthetic IMDB database shared across integration tests."""
    return build_imdb_database(scale=0.25, index_config=IndexConfig.PK_FK)


@pytest.fixture(scope="session")
def job_sample() -> list[Query]:
    """A representative sample of JOB-style queries (one per selected family)."""
    queries = job_queries(families=[1, 2, 6, 9, 11, 15, 17, 21])
    seen = set()
    sample = []
    for query in queries:
        family = query.metadata["family"]
        if family not in seen:
            seen.add(family)
            sample.append(query)
    return sample
